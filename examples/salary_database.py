#!/usr/bin/env python3
"""The Figure-1 scenario: hidden database updates under a snapshot attacker.

The paper opens with a DBMS executing

    UPDATE Sal_table SET Salary += 100000 WHERE name = 'Bob'

and shows that the tiny logical change betrays the hidden table to an
attacker who compares storage snapshots.  This example stores the same
salary table twice — once on a conventional (CleanDisk) file system and
once under the non-volatile StegHide* agent — runs the same stream of
salary updates against both, and lets the update-analysis attacker judge
each snapshot series.

Run:  python examples/salary_database.py
"""

from __future__ import annotations

from repro.attacks.observer import SnapshotObserver
from repro.attacks.update_analysis import UpdateAnalysisAttacker
from repro.core.nonvolatile import NonVolatileAgent
from repro.crypto.keys import FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.sim.builders import build_system
from repro.stegfs.filesystem import StegFsVolume
from repro.storage.device import RawDevice
from repro.storage.disk import RawStorage, StorageGeometry
from repro.storage.latency import ZeroLatencyModel
from repro.workloads.filegen import FileSpec
from repro.workloads.tableupdate import SalaryTable, TableUpdateWorkload

INTERVALS = 8
UPDATES_PER_INTERVAL = 3


def conventional_run() -> tuple[list[set[int]], int]:
    """Salary updates on CleanDisk, observed through snapshots."""
    system = build_system(
        "CleanDisk",
        volume_mib=8,
        file_specs=[FileSpec("/seed", 4096)],
        seed=1,
        latency=ZeroLatencyModel(),
    )
    prng = Sha256Prng("conventional")
    workload = TableUpdateWorkload(system.adapter, SalaryTable.generate(500, prng.spawn("table")))
    observer = SnapshotObserver(system.storage)
    observer.observe()
    for _ in range(INTERVALS):
        workload.run_random_updates(UPDATES_PER_INTERVAL, prng)
        observer.observe()
    return observer.changed_blocks_per_interval(), system.storage.geometry.num_blocks


def steghide_run() -> tuple[list[set[int]], int]:
    """The same update stream through the StegHide* agent with dummy updates."""
    prng = Sha256Prng("steghide")
    storage = RawStorage(
        StorageGeometry(block_size=4096, num_blocks=2048), latency=ZeroLatencyModel()
    )
    storage.fill_random(seed=9)
    volume = StegFsVolume(RawDevice(storage), prng.spawn("volume"))
    agent = NonVolatileAgent(volume, prng.spawn("agent"))
    fak = FileAccessKey.generate(prng.spawn("fak"))
    table = SalaryTable.generate(500, prng.spawn("table"))
    handle = agent.create_file(fak, "/db/sal_table", table.serialise())

    observer = SnapshotObserver(storage)
    observer.observe()
    workload_prng = prng.spawn("updates")
    for _ in range(INTERVALS):
        for _ in range(UPDATES_PER_INTERVAL):
            name, _ = table.rows[workload_prng.randrange(len(table.rows))]
            table.set_salary(name, 30_000 + workload_prng.randrange(200_000))
            serialised = table.serialise()
            offset = table.row_offset(name)
            first = offset // volume.data_field_bytes
            last = (offset + 63) // volume.data_field_bytes
            for logical in range(first, last + 1):
                start = logical * volume.data_field_bytes
                agent.update_block(
                    handle, logical, serialised[start : start + volume.data_field_bytes]
                )
        agent.idle(6)  # dummy updates while "idle"
        observer.observe()
    return observer.changed_blocks_per_interval(), storage.geometry.num_blocks


def report(label: str, changed_sets: list[set[int]], num_blocks: int) -> None:
    attacker = UpdateAnalysisAttacker(num_blocks=num_blocks)
    verdict = attacker.analyse(changed_sets)
    changes = sum(len(s) for s in changed_sets)
    print(f"\n{label}")
    print(f"  blocks changed across {len(changed_sets)} snapshot intervals: {changes}")
    print(f"  fraction of changed blocks that repeat: {verdict.repeated_change_fraction:.2f}")
    print(f"  positional uniformity p-value:          {verdict.uniformity_p_value:.3g}")
    print(
        "  attacker concludes:                    "
        + ("HIDDEN DATA IS BEING UPDATED" if verdict.suspects_hidden_activity else "nothing unusual")
    )


def main() -> None:
    print("Salary-table updates observed by a snapshot-diffing attacker (Figure 1 scenario)")
    changed, blocks = conventional_run()
    report("Conventional file system (CleanDisk)", changed, blocks)
    changed, blocks = steghide_run()
    report("StegHide* (Figure-6 updates + dummy updates)", changed, blocks)


if __name__ == "__main__":
    main()
