#!/usr/bin/env python3
"""The Figure-1 scenario: hidden database updates under a snapshot attacker.

The paper opens with a DBMS executing

    UPDATE Sal_table SET Salary += 100000 WHERE name = 'Bob'

and shows that the tiny logical change betrays the hidden table to an
attacker who compares storage snapshots.  This example stores the same
salary table twice — once on a conventional (CleanDisk) file system,
declared as a :class:`Scenario`, and once behind a
:class:`HiddenVolumeService` session whose byte-granular ``write``
pushes each 64-byte row through the Figure-6 update path (rows may
straddle any number of block boundaries; the session does the
translation) — and lets the update-analysis attacker judge both
snapshot series.

Run:  python examples/salary_database.py
"""

from __future__ import annotations

from repro import (
    FileSpec,
    HiddenVolumeService,
    Scenario,
    TableUpdates,
    ZeroLatencyModel,
    run_experiment,
)
from repro.attacks.observer import SnapshotObserver
from repro.attacks.update_analysis import UpdateAnalysisAttacker
from repro.crypto.prng import Sha256Prng
from repro.workloads.tableupdate import SalaryTable

INTERVALS = 8
UPDATES_PER_INTERVAL = 3


def conventional_run() -> None:
    """Salary updates on CleanDisk, observed through snapshots."""
    result = run_experiment(
        Scenario(
            system="CleanDisk",
            volume_mib=8,
            files=(FileSpec("/seed", 4096),),
            seed=1,
            latency=ZeroLatencyModel(),
            workload=TableUpdates(
                rows=500,
                intervals=INTERVALS,
                updates_per_interval=UPDATES_PER_INTERVAL,
                seed="salary-example",
            ),
            attackers=("update-analysis",),
        )
    )
    report(
        "Conventional file system (CleanDisk)",
        result.verdict("update-analysis"),
        int(result.measurements["blocks-touched"]),
    )


def steghide_run() -> None:
    """The same update stream through a StegHide* service session."""
    service = HiddenVolumeService.create(
        "nonvolatile", volume_mib=8, seed=9, latency=ZeroLatencyModel()
    )
    prng = Sha256Prng("steghide-salary")
    table = SalaryTable.generate(500, prng.spawn("table"))
    dba = service.login(service.new_keyring("dba"))
    dba.create("/db/sal_table", table.serialise())

    observer = SnapshotObserver(service.storage)
    observer.observe()
    workload_prng = prng.spawn("updates")
    changes = 0
    for _ in range(INTERVALS):
        for _ in range(UPDATES_PER_INTERVAL):
            name, _ = table.rows[workload_prng.randrange(len(table.rows))]
            table.set_salary(name, 30_000 + workload_prng.randrange(200_000))
            # One byte-granular row update; the session translates the
            # 64-byte range into Figure-6 block updates, wherever the row
            # falls and however many blocks it straddles.
            dba.write("/db/sal_table", table.row_bytes(name), at=table.row_offset(name))
            changes += 1
        service.idle(6)  # dummy updates while "idle"
        observer.observe()
    attacker = UpdateAnalysisAttacker(num_blocks=service.num_blocks)
    report(
        "StegHide* (Figure-6 updates + dummy updates)",
        attacker.analyse(observer.changed_blocks_per_interval()),
        changes,
    )


def report(label: str, verdict, changes: int) -> None:
    print(f"\n{label}")
    print(f"  logical updates issued across {INTERVALS} snapshot intervals: {changes}")
    print(f"  fraction of changed blocks that repeat: {verdict.repeated_change_fraction:.2f}")
    print(f"  positional uniformity p-value:          {verdict.uniformity_p_value:.3g}")
    print(
        "  attacker concludes:                    "
        + (
            "HIDDEN DATA IS BEING UPDATED"
            if verdict.suspects_hidden_activity
            else "nothing unusual"
        )
    )


def main() -> None:
    print("Salary-table updates observed by a snapshot-diffing attacker (Figure 1 scenario)")
    conventional_run()
    steghide_run()


if __name__ == "__main__":
    main()
