#!/usr/bin/env python3
"""Multiple users sharing a volatile agent (Construction 2, Section 4.2).

Alice and Bob each own hidden files and dummy files on the same shared
volume.  The agent persists no secrets: it learns each user's keys only
at login, widens its dummy-update selection space as users log in, and
forgets everything at logout.  The example also shows what each user
could disclose under coercion.

Run:  python examples/multiuser_agent.py
"""

from __future__ import annotations

from repro import build_steghide_system
from repro.crypto.keys import KeyRing
from repro.stegfs.dummy import create_dummy_file


def enroll_user(system, name: str, secret: bytes, dummy_blocks: int) -> KeyRing:
    """Create one user's hidden file and dummy file, returning their key ring."""
    keyring = KeyRing(owner=name)
    fak = system.new_fak()
    handle = system.agent.create_file(fak, f"/{name}/journal", secret)
    system.agent.close_file(handle)
    keyring.add_hidden(f"/{name}/journal", fak)
    dummy_fak, _ = create_dummy_file(
        system.volume, f"/{name}/backup", dummy_blocks, system.prng.spawn(f"dummy-{name}")
    )
    keyring.add_dummy(f"/{name}/backup", dummy_fak)
    return keyring


def main() -> None:
    system = build_steghide_system(volume_mib=16, seed=99)
    agent = system.agent

    alice = enroll_user(system, "alice", b"alice's diary entry\n" * 300, dummy_blocks=16)
    bob = enroll_user(system, "bob", b"bob's tax spreadsheet\n" * 300, dummy_blocks=16)

    print("agent starts with zero knowledge:", agent.disclosed_block_count(), "known blocks")

    handles_a = agent.login(alice)
    print(f"alice logs in  -> {agent.disclosed_block_count()} disclosed blocks, "
          f"{agent.disclosed_dummy_block_count()} dummy targets")

    handles_b = agent.login(bob)
    print(f"bob logs in    -> {agent.disclosed_block_count()} disclosed blocks, "
          f"{agent.disclosed_dummy_block_count()} dummy targets")

    # Both users work; the agent mixes their updates with dummy updates.
    agent.update_block(handles_a["/alice/journal"], 0, b"alice: new entry about the merger\n")
    agent.update_block(handles_b["/bob/journal"], 0, b"bob: revised deductions\n")
    agent.idle(8)
    print("after updates + idle dummies, expected update overhead "
          f"E = {agent.expected_update_overhead():.2f}")

    print("alice reads back:", agent.read_block(handles_a["/alice/journal"], 0)[:34])
    print("bob reads back:  ", agent.read_block(handles_b["/bob/journal"], 0)[:24])

    # Bob logs out; the agent forgets his keys and shrinks its selection space.
    agent.logout("bob")
    print(f"bob logs out   -> {agent.disclosed_block_count()} disclosed blocks remain; "
          f"logged in: {agent.logged_in_users}")

    # Under coercion, each user can reveal only deniable keys.
    print("\nunder coercion alice could disclose:",
          {path: "claims it is a dummy" for path in alice.deniable_view()})

    # Bob returns later; nothing was lost while the agent knew nothing about him.
    handles_b = agent.login(bob)
    print("\nbob logs back in and reads:", agent.read_block(handles_b["/bob/journal"], 0)[:24])


if __name__ == "__main__":
    main()
