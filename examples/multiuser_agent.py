#!/usr/bin/env python3
"""Multiple users sharing one service (Construction 2, Section 4.2).

Alice and Bob each own hidden files and decoy files on the same shared
volume.  The service's agent persists no secrets: it learns each user's
keys only at login, widens its dummy-update selection space as sessions
open, and forgets everything at logout.  The example also shows what
each user could disclose under coercion.

Run:  python examples/multiuser_agent.py
"""

from __future__ import annotations

from repro import HiddenVolumeService, KeyRing


def enroll_user(service: HiddenVolumeService, name: str, secret: bytes) -> KeyRing:
    """Create one user's hidden file and decoy, then log out, keeping the keys."""
    session = service.login(service.new_keyring(name))
    session.create(f"/{name}/journal", secret)
    session.create_decoy(f"/{name}/backup", size_bytes=len(secret))
    keyring = session.keyring
    session.logout()
    return keyring


def main() -> None:
    service = HiddenVolumeService.create("volatile", volume_mib=16, seed=99)

    alice_keys = enroll_user(service, "alice", b"alice's diary entry\n" * 300)
    bob_keys = enroll_user(service, "bob", b"bob's tax spreadsheet\n" * 300)

    print("agent starts with zero knowledge:", service.disclosed_block_count(), "known blocks")

    alice = service.login(alice_keys)
    print(
        f"alice logs in  -> {service.disclosed_block_count()} disclosed blocks, "
        f"{service.disclosed_dummy_block_count()} dummy targets"
    )

    bob = service.login(bob_keys)
    print(
        f"bob logs in    -> {service.disclosed_block_count()} disclosed blocks, "
        f"{service.disclosed_dummy_block_count()} dummy targets"
    )

    # Both users work; the agent mixes their updates with dummy updates.
    alice.write("/alice/journal", b"alice: new entry about the merger\n", at=0)
    bob.write("/bob/journal", b"bob: revised deductions\n", at=0)
    service.idle(8)
    print(
        "after updates + idle dummies, expected update overhead "
        f"E = {service.expected_update_overhead():.2f}"
    )

    print("alice reads back:", alice.read("/alice/journal", size=34))
    print("bob reads back:  ", bob.read("/bob/journal", size=24))

    # Bob logs out; the agent forgets his keys and shrinks its selection space.
    bob.logout()
    print(
        f"bob logs out   -> {service.disclosed_block_count()} disclosed blocks remain; "
        f"logged in: {service.logged_in_users}"
    )

    # Under coercion, each user can reveal only deniable keys.
    print(
        "\nunder coercion alice could disclose:",
        {path: "claims it is a dummy" for path in alice.deniable_view().all_keys()},
    )

    # Bob returns later; nothing was lost while the agent knew nothing about him.
    bob = service.login(bob_keys)
    print("\nbob logs back in and reads:", bob.read("/bob/journal", size=24))


if __name__ == "__main__":
    main()
