#!/usr/bin/env python3
"""Quickstart: create a StegHide volume, hide a file, update it, deny it.

This walks through the library's public API in five minutes:

1. build a volatile-agent (Construction 2) system on a simulated volume;
2. create a hidden file that only its access key can locate;
3. update it through the Figure-6 algorithm (the update relocates the
   block and is indistinguishable from the agent's dummy updates);
4. show what a snapshot-diffing attacker sees;
5. show the plausible-deniability story: the key ring's deniable view
   opens the files as dummies and never reveals the plaintext.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_steghide_system
from repro.attacks.observer import SnapshotObserver
from repro.attacks.update_analysis import UpdateAnalysisAttacker
from repro.crypto.keys import KeyRing
from repro.stegfs.dummy import create_dummy_file


def main() -> None:
    # 1. A 16 MiB simulated volume managed by a volatile agent.
    system = build_steghide_system(volume_mib=16, seed=2024)
    agent, volume = system.agent, system.volume
    print(f"volume: {volume.num_blocks} blocks of {volume.block_size} bytes")

    # 2. Alice hides a report. The FAK (access key) is all that can find it.
    alice = KeyRing(owner="alice")
    report_fak = system.new_fak()
    report = b"Q3 acquisition plan: do not circulate.\n" * 200
    handle = agent.create_file(report_fak, "/alice/report.txt", report)
    alice.add_hidden("/alice/report.txt", report_fak)
    print(f"hidden file occupies {handle.num_blocks} scattered blocks")

    # Alice also owns a dummy file of similar size for deniability, and the
    # agent uses its blocks as relocation targets and dummy-update fodder.
    dummy_fak, dummy_handle = create_dummy_file(
        volume, "/alice/archive.bak", handle.num_blocks, system.prng
    )
    alice.add_dummy("/alice/archive.bak", dummy_fak)
    agent._register_handle(dummy_handle)

    # 3. Update the report. The agent relocates the block and, when idle,
    #    issues dummy updates, so the write pattern carries no information.
    observer = SnapshotObserver(system.storage)
    observer.observe("before")
    result = agent.update_block(handle, 0, b"Q3 plan (revised): still secret.\n" * 10)
    agent.idle(num_dummy_updates=5)
    observer.observe("after")
    print(
        f"update took {result.iterations} selection round(s); "
        f"block moved {result.moved_from} -> {result.moved_to}"
    )
    print("read back:", agent.read_block(handle, 0)[:33])

    # 4. What the snapshot attacker sees: a handful of changed blocks at
    #    uniformly random positions - indistinguishable from dummy updates.
    attacker = UpdateAnalysisAttacker(num_blocks=volume.num_blocks)
    verdict = attacker.analyse(observer.changed_blocks_per_interval())
    print(
        "attacker verdict:",
        "SUSPICIOUS" if verdict.suspects_hidden_activity else "nothing to see",
        f"(repeated-change fraction {verdict.repeated_change_fraction:.2f})",
    )

    # 5. Coercion: Alice discloses only the deniable view of her keys.
    disclosed = alice.deniable_view()
    print("disclosed keys:", {path: "dummy" for path in disclosed})
    coerced = volume.open_file(
        disclosed["/alice/report.txt"],
        "/alice/report.txt",
        header_key=disclosed["/alice/report.txt"].header_key,
        content_key=disclosed["/alice/report.txt"].header_key,
    )
    leaked = volume.read_file(coerced)
    print("plaintext leaked under coercion?", b"acquisition" in leaked)


if __name__ == "__main__":
    main()
