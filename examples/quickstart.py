#!/usr/bin/env python3
"""Quickstart: serve a hidden volume, hide a file, update it, deny it.

This walks through the library's public API in five minutes:

1. create a :class:`HiddenVolumeService` running the volatile agent
   (Construction 2) on a simulated volume;
2. log in and hide a file that only its session's keys can locate;
3. update it with a byte-granular ``write`` — the service translates
   the byte range into Figure-6 block updates that relocate blocks and
   are indistinguishable from the agent's dummy updates;
4. show what a snapshot-diffing attacker sees;
5. show the plausible-deniability story: the session's deniable key
   ring opens the files as dummies and never reveals the plaintext.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import HiddenVolumeService
from repro.attacks.observer import SnapshotObserver
from repro.attacks.update_analysis import UpdateAnalysisAttacker


def main() -> None:
    # 1. A 16 MiB simulated volume served by a volatile agent.
    service = HiddenVolumeService.create("volatile", volume_mib=16, seed=2024)
    print(f"volume: {service.num_blocks} blocks of {service.volume.block_size} bytes")

    # 2. Alice logs in and hides a report. Her session's key ring is all
    #    that can ever find it again.
    alice = service.login(service.new_keyring("alice"))
    report = b"Q3 acquisition plan: do not circulate.\n" * 200
    stat = alice.create("/alice/report.txt", report)
    print(f"hidden file occupies {stat.num_blocks} scattered blocks")

    # Alice also owns a decoy of similar size for deniability; the agent
    # uses its blocks as relocation targets and dummy-update fodder.
    alice.create_decoy("/alice/archive.bak", size_bytes=len(report))

    # 3. Update the report in place — byte-granular, no block math. The
    #    agent relocates the touched block and, when idle, issues dummy
    #    updates, so the write pattern carries no information.
    observer = SnapshotObserver(service.storage)
    observer.observe("before")
    [result] = alice.write("/alice/report.txt", b"Q3 plan (revised): still secret.\n", at=0)
    service.idle(num_dummy_updates=5)
    observer.observe("after")
    print(
        f"update took {result.iterations} selection round(s); "
        f"block moved {result.moved_from} -> {result.moved_to}"
    )
    print("read back:", alice.read("/alice/report.txt", size=33))

    # 4. What the snapshot attacker sees: a handful of changed blocks at
    #    uniformly random positions - indistinguishable from dummy updates.
    attacker = UpdateAnalysisAttacker(num_blocks=service.num_blocks)
    verdict = attacker.analyse(observer.changed_blocks_per_interval())
    print(
        "attacker verdict:",
        "SUSPICIOUS" if verdict.suspects_hidden_activity else "nothing to see",
        f"(repeated-change fraction {verdict.repeated_change_fraction:.2f})",
    )

    # 5. Coercion: Alice discloses only the deniable view of her keys and
    #    walks away; the coercer logs in with the disclosed ring.
    disclosed = alice.deniable_view()
    alice.logout()
    print("disclosed keys:", {path: "dummy" for path in disclosed.all_keys()})
    coerced = service.login(disclosed)
    leaked = coerced.read("/alice/report.txt")
    print("plaintext leaked under coercion?", b"acquisition" in leaked)


if __name__ == "__main__":
    main()
