#!/usr/bin/env python3
"""Durable volumes: survive a restart, hand the file to the attacker.

The paper's threat model is about a *physical disk*: the owner hides
files on it, adversaries may seize it at any moment, and the owner must
be able to come back later and recover everything from a key ring.
With a file-backed volume this walkthrough makes that literal:

1. format a hidden volume onto a real file on disk;
2. hide a file, keep the key ring, and ``close()`` the service —
   simulating the process dying;
3. "seize the disk": scan the raw volume file like a forensic attacker
   and find nothing but uniform random bytes;
4. reopen the very same file with ``HiddenVolumeService.open`` in a
   fresh service, log in with the saved key ring, and read the hidden
   file back bit-for-bit;
5. show that a wrong key ring recovers nothing.

Run:  python examples/durable_volume.py
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

from repro import HiddenFileNotFoundError, HiddenVolumeService, KeyRing

SECRET = b"wire the funds friday; the account details follow.\n" * 40


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="durable-volume-"))
    volume_path = workdir / "vacation-photos.img"

    # 1. Format a 4 MiB hidden volume onto a real file.  The file gets a
    #    random fill and thereafter only encrypted blocks: no magic
    #    numbers, no superblock, no allocation table.
    service = HiddenVolumeService.create("volatile", volume_mib=4, seed=2026, path=volume_path)
    print(f"volume file: {volume_path} ({volume_path.stat().st_size} bytes)")

    # 2. Alice hides a file and a decoy, then the process "dies".  Her
    #    key ring is the only credential; it must live OFF the volume.
    alice = service.login(service.new_keyring("alice"))
    alice.create("/alice/plan.txt", SECRET)
    alice.create_decoy("/alice/backup.bin", size_bytes=len(SECRET))
    keyring_json = alice.keyring.to_json()  # -> hardware token, vault, ...
    service.close()
    print("service closed: process can now die; only the file remains")

    # 3. The seizure: a forensic attacker scans the raw file.  Every
    #    byte value occurs ~equally often; nothing marks the file as a
    #    hidden volume, let alone says which blocks hold data.
    image = volume_path.read_bytes()
    histogram = Counter(image)
    most, least = max(histogram.values()), min(histogram.values())
    print(
        f"attacker's scan: {len(histogram)} byte values, "
        f"most/least frequent within {most / least:.2f}x of each other"
    )
    assert SECRET[:32] not in image and b"alice" not in image

    # 4. The owner returns: reopen the same file in a fresh service and
    #    log in with the saved ring.  The FAK probe sequences re-locate
    #    every header; the allocation bitmap is rebuilt as files open.
    reopened = HiddenVolumeService.open(
        volume_path, "volatile", seed=2026, session_nonce="back-home"
    )
    session = reopened.login(KeyRing.from_json(keyring_json))
    recovered = session.read("/alice/plan.txt")
    assert recovered == SECRET
    print(f"recovered {len(recovered)} hidden bytes bit-identical after reopen")

    # 5. A coercer with the wrong ring gets nothing.  Mallory's ring
    #    holds perfectly valid keys — for a *different* volume — so its
    #    probe sequences locate no header here.
    decoy_service = HiddenVolumeService.create("volatile", volume_mib=1, seed=1)
    mallory = decoy_service.login(decoy_service.new_keyring("mallory"))
    mallory.create("/alice/plan.txt", b"not the real plan")
    wrong_ring = mallory.keyring
    decoy_service.close()
    try:
        reopened.login(wrong_ring)
    except HiddenFileNotFoundError:
        print("wrong key ring: no header found — the volume denies everything")
    reopened.close()


if __name__ == "__main__":
    main()
