#!/usr/bin/env python3
"""Crash consistency: tear a write mid-device-call, recover old-or-new.

A hidden volume that shreds itself on a power cut is useless, and one
whose recovery leaves forensic traces is worse.  This walkthrough kills
a write at the exact device call where it lands on disk and shows both
guarantees at once:

1. format a durable volume — a ``<name>.img.journal`` sidecar appears
   next to it, the cipher-sealed intent log;
2. wrap the block device in a ``FaultInjectingBackend`` and arm it to
   *tear* a write: the doomed plan dies with half its bytes on disk;
3. reopen the volume: ``open()`` replays the journal, rolls the torn
   plan back to its before-images, and the file reads its exact old
   contents — never a torn mixture;
4. scan both the volume and the journal sidecar like a forensic
   attacker: before the crash, after the crash, and after recovery the
   bytes stay uniformly random with no plaintext anywhere.

Run:  python examples/crash_recovery.py
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

from repro import FaultInjectingBackend, HiddenVolumeService, KeyRing, TornWrite
from repro.errors import InjectedCrashError

LEDGER = b"ledger entry %04d: move 250 units to the reserve account.\n"
OLD = b"".join(LEDGER % index for index in range(64))


def scan(label: str, *paths: Path) -> None:
    """A forensic pass: byte histogram flatness plus plaintext needles."""
    for path in paths:
        image = path.read_bytes()
        histogram = Counter(image)
        most, least = max(histogram.values()), min(histogram.values())
        assert len(histogram) == 256 and most / least < 1.5
        assert LEDGER[:24] not in image and b"ledger" not in image
        print(f"  {label}: {path.name} scans clean ({most / least:.2f}x spread)")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="crash-recovery-"))
    volume_path = workdir / "ledger.img"
    sidecar_path = workdir / "ledger.img.journal"

    # 1. A durable volume brings its intent log with it: every plan's
    #    before-images are sealed into the fixed-size sidecar before a
    #    single device write happens, dummy plans included.
    service = HiddenVolumeService.create("nonvolatile", volume_mib=2, seed=77, path=volume_path)
    session = service.login(service.new_keyring("owner"))
    session.create("/books/ledger", OLD)
    keyring_json = session.keyring.to_json()
    service.flush()
    service.close()
    print(f"volume: {volume_path.name}, intent log: {sidecar_path.name}")
    scan("before crash", volume_path, sidecar_path)

    # 2. Reopen with a fault injector between the service and the device
    #    and arm it to tear the next write: the first device call of the
    #    overwrite is its batched read, the second is the batched write,
    #    and that write stops halfway with the tail bits flipped.
    injector = None

    def wrap(backend):
        nonlocal injector
        injector = FaultInjectingBackend(backend)
        return injector

    doomed_service = HiddenVolumeService.open(
        volume_path, "nonvolatile", seed=77, session_nonce="doomed", wrap_backend=wrap
    )
    doomed = doomed_service.login(KeyRing.from_json(keyring_json))
    injector.arm(crash_at=1, torn=TornWrite())
    try:
        doomed.write("/books/ledger", b"REVISED: move 9999 units offshore", at=128)
        raise AssertionError("the armed injector must kill the write")
    except InjectedCrashError:
        print(f"crash injected at device call {injector.calls}: write torn mid-block")
    doomed_service.storage.close()  # a dead process closes nothing else
    doomed_service.journal.close()
    scan("after crash", volume_path, sidecar_path)

    # 3. Recovery is just open(): the journal scan finds the uncommitted
    #    plan and rewrites its before-images.  The reader sees the exact
    #    old ledger — not the revision, and never half of each.
    recovered_service = HiddenVolumeService.open(
        volume_path, "nonvolatile", seed=77, session_nonce="recovered"
    )
    recovered = recovered_service.login(KeyRing.from_json(keyring_json))
    content = recovered.read("/books/ledger")
    assert content == OLD
    print(f"recovered {len(content)} bytes bit-identical to the pre-crash ledger")

    # 4. And the recovered volume still works — and still scans clean.
    recovered.write("/books/ledger", b"audited", at=0)
    assert recovered.read("/books/ledger", at=0, size=7) == b"audited"
    recovered_service.close()
    scan("after recovery", volume_path, sidecar_path)
    print("old-or-new recovery left no forensic trace")


if __name__ == "__main__":
    main()
