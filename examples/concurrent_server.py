#!/usr/bin/env python3
"""A multi-threaded hidden-volume server (Sections 4.1.3 and 5).

The paper's security argument is about *aggregate* traffic: each user's
accesses hide inside the interleaved stream of many concurrently
logged-in users plus the agent's dummy updates.  This example runs that
deployment shape in miniature: four worker threads serve four users'
mixed read/write traffic through one ``ConcurrentVolumeService``, whose
fair scheduler serializes the single-threaded core, injects two dummy
updates per real operation, and coalesces adjacent block reads from
*different* sessions into single batched device calls.

Run:  python examples/concurrent_server.py
"""

from __future__ import annotations

import threading

from repro import HiddenVolumeService
from repro.crypto.prng import Sha256Prng

USERS = 4
OPS_PER_USER = 40
FILE_BYTES = 24_000


def serve_user(session, errors: list) -> None:
    """One worker thread: a user's session of reads and updates."""
    prng = Sha256Prng(f"traffic:{session.user}")
    path = f"/{session.user}/mailbox"
    try:
        for _ in range(OPS_PER_USER):
            size = 64 + prng.randrange(2048)
            at = prng.randrange(FILE_BYTES - size)
            if prng.random() < 0.75:
                session.read(path, at=at, size=size)
            else:
                session.write(path, prng.random_bytes(size), at=at)
    except BaseException as error:  # pragma: no cover - example robustness
        errors.append(error)


def main() -> None:
    service = HiddenVolumeService.create("nonvolatile", volume_mib=8, seed=2024)
    engine = service.concurrent(dummy_to_real_ratio=2.0, quantum=16)

    print("enrolling users ...")
    sessions = []
    for index in range(USERS):
        user = f"user{index}"
        session = engine.login(service.new_keyring(user))
        session.create(
            f"/{user}/mailbox", Sha256Prng(f"mail:{user}").random_bytes(FILE_BYTES)
        )
        session.create_decoy(f"/{user}/archive", size_bytes=FILE_BYTES)
        sessions.append(session)

    print(f"serving {USERS} users from {USERS} worker threads ...")
    errors: list = []
    workers = [
        threading.Thread(target=serve_user, args=(session, errors)) for session in sessions
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    if errors:
        raise errors[0]
    engine.idle(0)  # barrier: settle the last operations' dummy bursts

    stats = engine.stats
    print(f"  real operations      : {stats.real_ops}")
    print(f"  dummy updates mixed  : {stats.dummy_updates} (ratio 2.0)")
    print(f"  scheduling quanta    : {stats.quanta}")
    print(
        f"  read coalescing      : {stats.batched_read_requests} reads in "
        f"{stats.read_batches} batched device calls "
        f"(widest batch: {stats.largest_read_batch})"
    )

    # What the wire sees: every user's requests interleave with everyone
    # else's and with the dummy stream, attributed per session stream.
    trace = service.storage.trace
    for session in sessions:
        print(f"  trace events for {session.user}: {len(trace.slice_by_stream(session.user))}")
    print(f"  trace events for the dummy stream: {len(trace.slice_by_stream('dummy'))}")

    engine.close()
    print("engine closed; sessions logged out, service closed:", service.closed)


if __name__ == "__main__":
    main()
