#!/usr/bin/env python3
"""Traffic analysis defeated by the oblivious storage (Section 5).

A hidden file is read repeatedly, once directly from the StegFS
partition and once through the hierarchical oblivious store.  A
traffic-analysis attacker watches the I/O requests in both cases and
tries to decide whether real data is being accessed.  The example also
prints the measured per-read overhead against the paper's analytic
model (Table 4 / Figure 12).

Run:  python examples/oblivious_reads.py
"""

from __future__ import annotations

from repro.attacks.observer import TraceObserver
from repro.attacks.traffic_analysis import TrafficAnalysisAttacker
from repro.core.oblivious.cost import ObliviousCostModel
from repro.core.oblivious.reader import ObliviousReader
from repro.core.oblivious.store import ObliviousStore, ObliviousStoreConfig
from repro.crypto.keys import FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.stegfs.filesystem import StegFsVolume
from repro.storage.device import split_volume
from repro.storage.disk import RawStorage, StorageGeometry
from repro.storage.trace import IoTrace
from repro.workloads.filegen import generate_content

FILE_BLOCKS = 64
BUFFER_BLOCKS = 8
LAST_LEVEL_BLOCKS = 256


def main() -> None:
    prng = Sha256Prng("oblivious-example")
    storage = RawStorage(StorageGeometry(block_size=4096, num_blocks=4096))
    storage.fill_random(seed=5)
    steg_part, obli_part = split_volume(storage, 2048)

    volume = StegFsVolume(steg_part, prng.spawn("volume"))
    fak = FileAccessKey.generate(prng.spawn("fak"))
    content = generate_content(volume.data_field_bytes * FILE_BLOCKS, seed=11)
    handle = volume.create_file(fak, "/sensor/readings.bin", content)

    model = ObliviousCostModel(last_level_blocks=LAST_LEVEL_BLOCKS, buffer_blocks=BUFFER_BLOCKS)
    print(f"oblivious store: {model.height} levels, theoretical overhead factor {model.total:.0f}")

    store = ObliviousStore(
        obli_part,
        ObliviousStoreConfig(buffer_blocks=BUFFER_BLOCKS, last_level_blocks=LAST_LEVEL_BLOCKS),
        prng.spawn("store"),
    )
    reader = ObliviousReader(volume, store, prng.spawn("reader"))
    attacker = TrafficAnalysisAttacker(num_blocks=storage.geometry.num_blocks)

    # --- unprotected: repeated direct reads of the hidden file -------------------
    observer = TraceObserver(storage)
    observer.start()
    storage.reset_counters()
    for _ in range(4):
        volume.read_file(handle)
    direct_ms = storage.counters.total_time_ms / (4 * FILE_BLOCKS)
    verdict_direct = attacker.analyse(observer.capture())
    print("\ndirect StegFS reads:")
    print(f"  per-block cost:            {direct_ms:.1f} simulated ms")
    print(f"  sequential-run fraction:   {verdict_direct.sequential_run_fraction:.2f}")
    print(f"  hottest block repeated:    {verdict_direct.max_repeat_count} times")
    print(f"  attacker detects activity: {verdict_direct.suspects_hidden_activity}")

    # --- protected: the same reads through the oblivious store -------------------
    reader.read_file(handle)  # first pass populates the cache
    observer.start()
    storage.reset_counters()
    for _ in range(4):
        reader.read_file(handle)
    oblivious_ms = storage.counters.total_time_ms / (4 * FILE_BLOCKS)
    observed = observer.capture()

    # The attacker knows the scheme, so it compares against dummy traffic.
    observer.start()
    for _ in range(4 * FILE_BLOCKS):
        reader.dummy_oblivious_read()
    reference = observer.capture()

    def probes(trace):
        return IoTrace([e for e in trace.reads() if not e.stream.endswith("-sort")])

    verdict_oblivious = attacker.analyse(probes(observed), probes(reference))
    print("\nreads through the oblivious store:")
    print(f"  per-block cost:            {oblivious_ms:.1f} simulated ms "
          f"({oblivious_ms / direct_ms:.1f}x the direct read)")
    print(f"  sequential-run fraction:   {verdict_oblivious.sequential_run_fraction:.2f}")
    print(f"  advantage vs dummy reads:  {verdict_oblivious.advantage_vs_reference:.3f}")
    print(
        "  attacker detects activity: "
        f"{verdict_oblivious.advantage_vs_reference > attacker.advantage_threshold}"
    )
    print(
        f"\nsorting accounted for {store.stats.sort_io_fraction:.0%} of device operations "
        f"but only {store.stats.sort_time_fraction:.0%} of the time (sequential I/O), "
        "as in Figure 12(b)."
    )


if __name__ == "__main__":
    main()
