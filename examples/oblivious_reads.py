#!/usr/bin/env python3
"""Traffic analysis defeated by the oblivious storage (Section 5).

A hidden file is read repeatedly through a session, once directly from
the StegFS partition and once through the hierarchical oblivious store
(``session.read(..., oblivious=True)``).  A traffic-analysis attacker
watches the I/O requests in both cases and tries to decide whether real
data is being accessed.  The example also prints the measured per-read
overhead against the paper's analytic model (Table 4 / Figure 12).

Run:  python examples/oblivious_reads.py
"""

from __future__ import annotations

from repro import HiddenVolumeService, ObliviousConfig
from repro.attacks.observer import TraceObserver
from repro.attacks.traffic_analysis import TrafficAnalysisAttacker
from repro.core.oblivious.cost import ObliviousCostModel
from repro.storage.trace import IoTrace
from repro.workloads.filegen import generate_content

FILE_SIZE_BYTES = 256 * 1024
BUFFER_BLOCKS = 8
LAST_LEVEL_BLOCKS = 256
REPEATS = 4


def main() -> None:
    service = HiddenVolumeService.create(
        "volatile",
        volume_mib=16,
        seed=5,
        oblivious=ObliviousConfig(
            buffer_blocks=BUFFER_BLOCKS,
            last_level_blocks=LAST_LEVEL_BLOCKS,
            partition_blocks=2048,
        ),
    )
    session = service.login(service.new_keyring("sensor"))
    session.create("/sensor/readings.bin", generate_content(FILE_SIZE_BYTES, seed=11))
    file_blocks = session.stat("/sensor/readings.bin").num_blocks

    model = ObliviousCostModel(last_level_blocks=LAST_LEVEL_BLOCKS, buffer_blocks=BUFFER_BLOCKS)
    print(f"oblivious store: {model.height} levels, theoretical overhead factor {model.total:.0f}")

    storage = service.storage
    attacker = TrafficAnalysisAttacker(num_blocks=storage.geometry.num_blocks)

    # --- unprotected: repeated direct reads of the hidden file -------------------
    observer = TraceObserver(storage)
    observer.start()
    storage.reset_counters()
    for _ in range(REPEATS):
        session.read("/sensor/readings.bin")
    direct_ms = storage.counters.total_time_ms / (REPEATS * file_blocks)
    verdict_direct = attacker.analyse(observer.capture())
    print("\ndirect StegFS reads:")
    print(f"  per-block cost:            {direct_ms:.1f} simulated ms")
    print(f"  sequential-run fraction:   {verdict_direct.sequential_run_fraction:.2f}")
    print(f"  hottest block repeated:    {verdict_direct.max_repeat_count} times")
    print(f"  attacker detects activity: {verdict_direct.suspects_hidden_activity}")

    # --- protected: the same reads through the oblivious store -------------------
    session.read("/sensor/readings.bin", oblivious=True)  # first pass populates the cache
    observer.start()
    storage.reset_counters()
    for _ in range(REPEATS):
        session.read("/sensor/readings.bin", oblivious=True)
    oblivious_ms = storage.counters.total_time_ms / (REPEATS * file_blocks)
    observed = observer.capture()

    # The attacker knows the scheme, so it compares against dummy traffic.
    observer.start()
    for _ in range(REPEATS * file_blocks):
        service.dummy_oblivious_read()
    reference = observer.capture()

    def probes(trace):
        return IoTrace([e for e in trace.reads() if not e.stream.endswith("-sort")])

    verdict_oblivious = attacker.analyse(probes(observed), probes(reference))
    print("\nreads through the oblivious store:")
    print(
        f"  per-block cost:            {oblivious_ms:.1f} simulated ms "
        f"({oblivious_ms / direct_ms:.1f}x the direct read)"
    )
    print(f"  sequential-run fraction:   {verdict_oblivious.sequential_run_fraction:.2f}")
    print(f"  advantage vs dummy reads:  {verdict_oblivious.advantage_vs_reference:.3f}")
    print(
        "  attacker detects activity: "
        f"{verdict_oblivious.advantage_vs_reference > attacker.advantage_threshold}"
    )
    stats = service.oblivious_store.stats
    print(
        f"\nsorting accounted for {stats.sort_io_fraction:.0%} of device operations "
        f"but only {stats.sort_time_fraction:.0%} of the time (sequential I/O), "
        "as in Figure 12(b)."
    )


if __name__ == "__main__":
    main()
