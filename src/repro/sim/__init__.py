"""Multi-user simulation and scenario builders.

* :mod:`repro.sim.engine` — a round-robin scheduler that interleaves
  several clients' block operations on the shared disk, which is what
  turns the baselines' sequential I/O into random I/O as concurrency
  grows (Figures 10(b) and 11(c)).
* :mod:`repro.sim.builders` — constructs each of the five evaluated
  systems (Table 3) at a given volume size and space utilisation, with
  files pre-created, ready for the benchmarks and examples to drive.
"""

from repro.sim.builders import SYSTEM_LABELS, SystemUnderTest, build_system
from repro.sim.engine import ClientJob, RoundRobinSimulator, SimulationResult

__all__ = [
    "SystemUnderTest",
    "build_system",
    "SYSTEM_LABELS",
    "ClientJob",
    "RoundRobinSimulator",
    "SimulationResult",
]
