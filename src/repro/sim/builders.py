"""Scenario builders: construct each evaluated system ready for a workload.

``build_system`` produces a :class:`SystemUnderTest` for any of the five
Table-3 labels at a chosen volume size, space utilisation and file
population, so the benchmarks and the examples share one construction
path.

Notes on the two StegHide variants:

* **StegHide\\*** (non-volatile agent) — space utilisation is raised to
  the target by creating filler *hidden* files through the agent; the
  dummy pool is every remaining block, exactly as in Section 4.1.
* **StegHide** (volatile agent) — a single benchmark user owns all the
  workload and filler files plus dummy files covering the remaining
  space, and is logged in, so the agent's disclosed universe spans the
  volume.  This mirrors the paper's measurement setting, where the
  implemented prototype is exercised by logged-in users and the
  utilisation knob has the same meaning for both constructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.cleandisk import CleanDiskFileSystem
from repro.baselines.fragdisk import FragDiskFileSystem
from repro.baselines.interface import BaselineFile, FileSystemAdapter
from repro.baselines.plainstegfs import PlainStegFsAdapter
from repro.baselines.steghide import StegHideAdapter
from repro.core.agent import StegAgent
from repro.core.nonvolatile import NonVolatileAgent
from repro.core.volatile import VolatileAgent
from repro.crypto.keys import FileAccessKey, KeyRing
from repro.crypto.prng import Sha256Prng
from repro.stegfs.filesystem import StegFsVolume
from repro.storage.device import RawDevice
from repro.storage.disk import MIB, RawStorage, StorageGeometry
from repro.storage.latency import DiskLatencyModel
from repro.workloads.filegen import FileSpec, generate_content

SYSTEM_LABELS = ("StegHide", "StegHide*", "StegFS", "FragDisk", "CleanDisk")

_STEGANOGRAPHIC = {"StegHide", "StegHide*", "StegFS"}


@dataclass
class SystemUnderTest:
    """One fully constructed system plus the files created in it."""

    label: str
    storage: RawStorage
    adapter: FileSystemAdapter
    handles: dict[str, BaselineFile] = field(default_factory=dict)
    agent: StegAgent | None = None
    volume: StegFsVolume | None = None
    prng: Sha256Prng | None = None
    keyring: KeyRing | None = None
    service: "HiddenVolumeService | None" = None

    def handle(self, name: str) -> BaselineFile:
        """The handle of a file created at build time."""
        return self.handles[name]

    def first_handle(self) -> BaselineFile:
        """Any one created file (convenient for single-file experiments)."""
        return next(iter(self.handles.values()))


def _make_storage(
    volume_mib: int, block_size: int, seed: int, latency: DiskLatencyModel | None
) -> RawStorage:
    geometry = StorageGeometry.from_capacity(volume_mib * MIB, block_size)
    storage = RawStorage(geometry, latency=latency)
    storage.fill_random(seed)
    return storage


def _create_files(
    adapter: FileSystemAdapter, specs: list[FileSpec], seed: int
) -> dict[str, BaselineFile]:
    handles = {}
    for index, spec in enumerate(specs):
        content = generate_content(spec.size_bytes, seed + index)
        handles[spec.name] = adapter.create_file(spec.name, content, stream="setup")
    return handles


def _fill_to_utilisation(
    adapter: FileSystemAdapter,
    volume: StegFsVolume,
    target_utilisation: float,
    seed: int,
    filler_blocks_per_file: int = 256,
) -> None:
    """Create filler hidden files until the volume reaches the target utilisation."""
    index = 0
    payload = volume.data_field_bytes
    while volume.utilisation < target_utilisation:
        remaining = int((target_utilisation - volume.utilisation) * volume.num_blocks)
        blocks = max(1, min(filler_blocks_per_file, remaining))
        content = generate_content(blocks * payload, seed + 90_000 + index)
        adapter.create_file(f"/filler/file{index}", content, stream="setup")
        index += 1


def build_system(
    label: str,
    volume_mib: int = 32,
    block_size: int = 4096,
    file_specs: list[FileSpec] | None = None,
    target_utilisation: float | None = None,
    seed: int = 0,
    latency: DiskLatencyModel | None = None,
) -> SystemUnderTest:
    """Construct one of the five evaluated systems with its files created.

    Parameters
    ----------
    label:
        One of ``SYSTEM_LABELS``.
    volume_mib:
        Raw volume size in MiB (the paper uses 1 GiB; benchmarks scale down).
    file_specs:
        Files to create; defaults to a single 4 MiB file.
    target_utilisation:
        For the steganographic systems, the fraction of the volume that
        should hold useful data after filler files are added.  ``None``
        leaves utilisation at whatever the file specs produce.
    """
    if label not in SYSTEM_LABELS:
        raise ValueError(f"unknown system label {label!r}; expected one of {SYSTEM_LABELS}")
    specs = file_specs if file_specs is not None else [FileSpec("/hidden/file0", 4 * MIB)]
    prng = Sha256Prng(f"builder:{label}:{seed}")
    storage = _make_storage(volume_mib, block_size, seed, latency)

    agent: StegAgent | None = None
    volume: StegFsVolume | None = None

    if label == "CleanDisk":
        adapter: FileSystemAdapter = CleanDiskFileSystem(storage)
    elif label == "FragDisk":
        adapter = FragDiskFileSystem(storage, prng.spawn("fragdisk"))
    elif label == "StegFS":
        volume = StegFsVolume(RawDevice(storage), prng.spawn("volume"))
        adapter = PlainStegFsAdapter(storage, volume, prng.spawn("adapter"))
    elif label == "StegHide*":
        volume = StegFsVolume(RawDevice(storage), prng.spawn("volume"))
        agent = NonVolatileAgent(volume, prng.spawn("agent"))
        adapter = StegHideAdapter(storage, agent, prng.spawn("adapter"), label="StegHide*")
    else:  # StegHide (volatile agent)
        volume = StegFsVolume(RawDevice(storage), prng.spawn("volume"))
        agent = VolatileAgent(volume, prng.spawn("agent"))
        adapter = StegHideAdapter(storage, agent, prng.spawn("adapter"), label="StegHide")

    handles = _create_files(adapter, specs, seed)

    if target_utilisation is not None and label in _STEGANOGRAPHIC and volume is not None:
        if volume.utilisation > target_utilisation + 0.02:
            raise ValueError(
                f"the requested files already use {volume.utilisation:.0%} of the volume, "
                f"above the target utilisation of {target_utilisation:.0%}"
            )
        _fill_to_utilisation(adapter, volume, target_utilisation, seed)

    keyring = None
    if label == "StegHide" and isinstance(agent, VolatileAgent) and volume is not None:
        keyring = _disclose_dummy_space(agent, volume, adapter, prng)

    service = None
    if agent is not None and volume is not None:
        # Wrapping existing parts performs no I/O and consumes no PRNG
        # state, so attaching the facade leaves the device trace of the
        # build untouched.
        from repro.service.facade import HiddenVolumeService

        service = HiddenVolumeService(storage, volume, agent, prng)

    return SystemUnderTest(
        label=label,
        storage=storage,
        adapter=adapter,
        handles=handles,
        agent=agent,
        volume=volume,
        prng=prng,
        keyring=keyring,
        service=service,
    )


def _disclose_dummy_space(
    agent: VolatileAgent,
    volume: StegFsVolume,
    adapter: FileSystemAdapter,
    prng: Sha256Prng,
    chunk_blocks: int = 1024,
) -> KeyRing:
    """Give the benchmark user dummy files covering the volume's free space.

    The dummy files are created directly through the agent (their FAKs
    are marked as dummies) and registered in a key ring, modelling a
    logged-in user who has disclosed everything he owns.  Returns the
    user's key ring.
    """
    keyring = KeyRing(owner="benchmark-user")
    if isinstance(adapter, StegHideAdapter):
        for name, fak in adapter.iter_faks():
            if not fak.is_dummy:
                keyring.add_hidden(name, fak)
    index = 0
    # Leave a small reserve (about 4% of the volume) so header placement and
    # chain growth always find room even on heavily filled volumes.
    while volume.allocator.free_blocks > max(64, volume.num_blocks // 25):
        blocks = min(chunk_blocks, volume.allocator.free_blocks - 32)
        if blocks <= 0:
            break
        fak = FileAccessKey.generate(prng.spawn(f"dummy-fak-{index}"), is_dummy=True)
        content = generate_content(blocks * volume.data_field_bytes, 700_000 + index)
        handle = agent.create_file(fak, f"/dummy/space{index}", content, stream="setup")
        handle.owner = keyring.owner
        keyring.add_dummy(f"/dummy/space{index}", fak)
        index += 1
    return keyring
