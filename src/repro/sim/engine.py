"""Round-robin multi-user simulation and the concurrent-serving scenario.

The paper's concurrency experiments run 1–32 users against one disk.
The essential effect is that the disk head services one block request
per user in turn, so each user's logically sequential file is physically
interleaved with everyone else's — random I/O for everybody once the
user count is non-trivial.

Jobs are generators that perform one block operation per ``next()``.
The simulator advances them round-robin and records, per job, the
simulated time between its first and last operation.

:class:`ConcurrencyScenario` is the declarative description of the
*threaded* analogue: real OS worker threads driving the serving engine
(:class:`repro.service.ConcurrentVolumeService`) instead of generator
jobs driving the disk model.  It lives here (not in ``repro.service``)
so that the simulation layer owns every experiment-shape declaration;
``repro.service.run_experiment`` executes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SimulationError
from repro.storage.disk import RawStorage
from repro.storage.latency import DiskLatencyModel


@dataclass
class ClientJob:
    """One simulated client: a name plus a generator of block operations."""

    name: str
    steps: Iterator[None]
    start_ms: float | None = None
    end_ms: float | None = None
    operations: int = 0
    finished: bool = False

    @property
    def elapsed_ms(self) -> float:
        """Simulated time between the job's first and last operation."""
        if self.start_ms is None or self.end_ms is None:
            raise SimulationError(f"job {self.name!r} has not completed")
        return self.end_ms - self.start_ms


@dataclass
class SimulationResult:
    """Outcome of one round-robin run."""

    jobs: list[ClientJob] = field(default_factory=list)
    total_elapsed_ms: float = 0.0

    @property
    def per_job_elapsed_ms(self) -> dict[str, float]:
        return {job.name: job.elapsed_ms for job in self.jobs}

    @property
    def mean_elapsed_ms(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(job.elapsed_ms for job in self.jobs) / len(self.jobs)

    @property
    def max_elapsed_ms(self) -> float:
        if not self.jobs:
            return 0.0
        return max(job.elapsed_ms for job in self.jobs)


@dataclass(frozen=True)
class ConcurrencyScenario:
    """One declaratively specified concurrent-serving experiment.

    Where :class:`repro.service.Scenario` replays the paper's figures on
    the round-robin disk simulator, a ``ConcurrencyScenario`` drives the
    thread-safe serving engine with real worker threads:  ``users``
    sessions are enrolled (one hidden file plus one decoy each),
    ``workers`` threads submit each user's mixed read/write traffic, and
    the engine interleaves the agent's dummy stream at
    ``dummy_to_real_ratio`` dummies per real operation while batching
    adjacent block I/O per scheduling quantum.
    ``repro.service.run_experiment`` accepts it exactly like a
    :class:`~repro.service.Scenario` and reports wall-clock ``ops``,
    ``ops_per_sec`` and ``dummy_updates`` measurements plus any attacker
    verdicts.

    Attributes
    ----------
    construction:
        ``"volatile"`` or ``"nonvolatile"`` (Constructions 2 and 1).
    workers:
        Number of OS threads submitting operations concurrently.
    users:
        Number of enrolled sessions whose traffic the workers carry.
    ops_per_user:
        Real operations issued per user across the whole run.
    file_blocks:
        Size of each user's hidden file (and decoy), in data blocks.
    read_fraction:
        Probability that one operation is a byte-range read; the rest
        are byte-range writes through the Figure-6 path.
    dummy_to_real_ratio:
        The engine's dummy-to-real interleave ratio (Section 4.1.3).
    quantum:
        The engine's scheduling quantum (max requests per drain round).
    fuse_writes:
        Whether writes/appends are planned and fused across sessions
        (the plan-kernel engine); ``False`` is the read-only-coalescing
        baseline.
    gather_timeout_s:
        Engine gather wait override; ``None`` keeps the engine default.
    intervals:
        Number of equal slices the run is cut into; attached attacker
        probes observe after each slice (snapshot intervals).
    attackers:
        Probe names or instances, as in :class:`~repro.service.Scenario`.
    """

    construction: str = "nonvolatile"
    volume_mib: int = 8
    block_size: int = 4096
    seed: int = 0
    workers: int = 4
    users: int = 4
    ops_per_user: int = 32
    file_blocks: int = 16
    read_fraction: float = 0.7
    dummy_to_real_ratio: float = 1.0
    quantum: int = 16
    fuse_writes: bool = True
    gather_timeout_s: float | None = None
    intervals: int = 4
    attackers: tuple = ()
    latency: DiskLatencyModel | None = None

    def __post_init__(self) -> None:
        if self.construction not in ("volatile", "nonvolatile"):
            raise ValueError(
                f"unknown construction {self.construction!r}; "
                "expected 'volatile' or 'nonvolatile'"
            )
        if self.workers < 1 or self.users < 1:
            raise ValueError("workers and users must both be at least 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must lie in [0, 1]")
        if self.intervals < 1:
            raise ValueError("intervals must be at least 1")


@dataclass(frozen=True)
class CrashScenario:
    """One declaratively specified crash-recovery / snapshot-diff experiment.

    A file-backed volume is served over ``intervals`` runs of the owning
    process.  Each run opens the volume, performs ``ops_per_interval``
    deterministic byte-range writes mixed with the agent's dummy stream
    at ``dummy_to_real_ratio``, and exits; runs listed in
    ``crash_intervals`` are instead killed mid-plan by a
    :class:`~repro.storage.backend.FaultInjectingBackend` (optionally
    tearing the doomed write).  A snapshot-diff adversary images the
    volume file after every run and
    ``repro.service.run_experiment`` reports the change-rate series,
    the adversary's best-threshold advantage against its crash
    hypothesis, and whether every crashed run recovered to readable
    old-or-new file contents.

    Attributes
    ----------
    construction:
        ``"volatile"`` or ``"nonvolatile"`` (Constructions 2 and 1).
    intervals:
        Number of process runs (one volume image after each, plus the
        post-format baseline image).
    ops_per_interval:
        Byte-range writes issued per run.
    file_blocks:
        Size of the hidden file the writes target, in data blocks.
    dummy_to_real_ratio:
        Dummy updates accrued per real write (Section 4.1.3).
    crash_intervals:
        Which runs (0-based) are killed mid-plan.
    crash_call_index:
        Device-call index within the final write at which the armed
        injector fires (0 = the write's first device call).
    torn_write:
        Whether the doomed call additionally tears its block
        (:class:`~repro.storage.backend.TornWrite`) instead of dying
        cleanly between calls.
    """

    construction: str = "nonvolatile"
    volume_mib: int = 1
    block_size: int = 512
    seed: int = 0
    intervals: int = 6
    ops_per_interval: int = 4
    file_blocks: int = 8
    dummy_to_real_ratio: float = 1.0
    crash_intervals: tuple = (2, 4)
    crash_call_index: int = 0
    torn_write: bool = True
    latency: DiskLatencyModel | None = None

    def __post_init__(self) -> None:
        if self.construction not in ("volatile", "nonvolatile"):
            raise ValueError(
                f"unknown construction {self.construction!r}; "
                "expected 'volatile' or 'nonvolatile'"
            )
        if self.intervals < 1:
            raise ValueError("intervals must be at least 1")
        if self.ops_per_interval < 1 or self.file_blocks < 1:
            raise ValueError("ops_per_interval and file_blocks must be at least 1")
        if self.dummy_to_real_ratio < 0:
            raise ValueError("dummy_to_real_ratio must be non-negative")
        if self.crash_call_index < 0:
            raise ValueError("crash_call_index must be non-negative")
        for interval in self.crash_intervals:
            if not 0 <= interval < self.intervals:
                raise ValueError(
                    f"crash interval {interval} outside the {self.intervals} runs"
                )


class RoundRobinSimulator:
    """Interleaves client jobs one block operation at a time on a shared disk."""

    def __init__(self, storage: RawStorage):
        self.storage = storage

    def run(self, jobs: list[ClientJob]) -> SimulationResult:
        """Drive all jobs to completion, one step per job per round."""
        if not jobs:
            return SimulationResult(jobs=[], total_elapsed_ms=0.0)
        storage = self.storage
        started = storage.clock_ms
        active = list(jobs)
        while active:
            anyone_finished = False
            for job in active:
                if job.start_ms is None:
                    job.start_ms = storage.clock_ms
                try:
                    next(job.steps)
                    job.operations += 1
                    job.end_ms = storage.clock_ms
                except StopIteration:
                    if job.end_ms is None:
                        job.end_ms = storage.clock_ms
                    job.finished = True
                    anyone_finished = True
            # The round-robin order is stable, so the active list only needs
            # rebuilding on the (rare) rounds where some job completed.
            if anyone_finished:
                active = [job for job in active if not job.finished]
        return SimulationResult(jobs=list(jobs), total_elapsed_ms=storage.clock_ms - started)
