"""Round-robin multi-user simulation.

The paper's concurrency experiments run 1–32 users against one disk.
The essential effect is that the disk head services one block request
per user in turn, so each user's logically sequential file is physically
interleaved with everyone else's — random I/O for everybody once the
user count is non-trivial.

Jobs are generators that perform one block operation per ``next()``.
The simulator advances them round-robin and records, per job, the
simulated time between its first and last operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SimulationError
from repro.storage.disk import RawStorage


@dataclass
class ClientJob:
    """One simulated client: a name plus a generator of block operations."""

    name: str
    steps: Iterator[None]
    start_ms: float | None = None
    end_ms: float | None = None
    operations: int = 0
    finished: bool = False

    @property
    def elapsed_ms(self) -> float:
        """Simulated time between the job's first and last operation."""
        if self.start_ms is None or self.end_ms is None:
            raise SimulationError(f"job {self.name!r} has not completed")
        return self.end_ms - self.start_ms


@dataclass
class SimulationResult:
    """Outcome of one round-robin run."""

    jobs: list[ClientJob] = field(default_factory=list)
    total_elapsed_ms: float = 0.0

    @property
    def per_job_elapsed_ms(self) -> dict[str, float]:
        return {job.name: job.elapsed_ms for job in self.jobs}

    @property
    def mean_elapsed_ms(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(job.elapsed_ms for job in self.jobs) / len(self.jobs)

    @property
    def max_elapsed_ms(self) -> float:
        if not self.jobs:
            return 0.0
        return max(job.elapsed_ms for job in self.jobs)


class RoundRobinSimulator:
    """Interleaves client jobs one block operation at a time on a shared disk."""

    def __init__(self, storage: RawStorage):
        self.storage = storage

    def run(self, jobs: list[ClientJob]) -> SimulationResult:
        """Drive all jobs to completion, one step per job per round."""
        if not jobs:
            return SimulationResult(jobs=[], total_elapsed_ms=0.0)
        storage = self.storage
        started = storage.clock_ms
        active = list(jobs)
        while active:
            anyone_finished = False
            for job in active:
                if job.start_ms is None:
                    job.start_ms = storage.clock_ms
                try:
                    next(job.steps)
                    job.operations += 1
                    job.end_ms = storage.clock_ms
                except StopIteration:
                    if job.end_ms is None:
                        job.end_ms = storage.clock_ms
                    job.finished = True
                    anyone_finished = True
            # The round-robin order is stable, so the active list only needs
            # rebuilding on the (rare) rounds where some job completed.
            if anyone_finished:
                active = [job for job in active if not job.finished]
        return SimulationResult(jobs=list(jobs), total_elapsed_ms=storage.clock_ms - started)
