"""Round-robin multi-user simulation and the concurrent-serving scenario.

The paper's concurrency experiments run 1–32 users against one disk.
The essential effect is that the disk head services one block request
per user in turn, so each user's logically sequential file is physically
interleaved with everyone else's — random I/O for everybody once the
user count is non-trivial.

Jobs are generators that perform one block operation per ``next()``.
The simulator advances them round-robin and records, per job, the
simulated time between its first and last operation.

:class:`ConcurrencyScenario` is the declarative description of the
*threaded* analogue: real OS worker threads driving the serving engine
(:class:`repro.service.ConcurrentVolumeService`) instead of generator
jobs driving the disk model.  It lives here (not in ``repro.service``)
so that the simulation layer owns every experiment-shape declaration;
``repro.service.run_experiment`` executes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SimulationError
from repro.storage.disk import RawStorage
from repro.storage.latency import DiskLatencyModel


@dataclass
class ClientJob:
    """One simulated client: a name plus a generator of block operations."""

    name: str
    steps: Iterator[None]
    start_ms: float | None = None
    end_ms: float | None = None
    operations: int = 0
    finished: bool = False

    @property
    def elapsed_ms(self) -> float:
        """Simulated time between the job's first and last operation."""
        if self.start_ms is None or self.end_ms is None:
            raise SimulationError(f"job {self.name!r} has not completed")
        return self.end_ms - self.start_ms


@dataclass
class SimulationResult:
    """Outcome of one round-robin run."""

    jobs: list[ClientJob] = field(default_factory=list)
    total_elapsed_ms: float = 0.0

    @property
    def per_job_elapsed_ms(self) -> dict[str, float]:
        return {job.name: job.elapsed_ms for job in self.jobs}

    @property
    def mean_elapsed_ms(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(job.elapsed_ms for job in self.jobs) / len(self.jobs)

    @property
    def max_elapsed_ms(self) -> float:
        if not self.jobs:
            return 0.0
        return max(job.elapsed_ms for job in self.jobs)


@dataclass(frozen=True)
class ConcurrencyScenario:
    """One declaratively specified concurrent-serving experiment.

    Where :class:`repro.service.Scenario` replays the paper's figures on
    the round-robin disk simulator, a ``ConcurrencyScenario`` drives the
    thread-safe serving engine with real worker threads:  ``users``
    sessions are enrolled (one hidden file plus one decoy each),
    ``workers`` threads submit each user's mixed read/write traffic, and
    the engine interleaves the agent's dummy stream at
    ``dummy_to_real_ratio`` dummies per real operation while batching
    adjacent block I/O per scheduling quantum.
    ``repro.service.run_experiment`` accepts it exactly like a
    :class:`~repro.service.Scenario` and reports wall-clock ``ops``,
    ``ops_per_sec`` and ``dummy_updates`` measurements plus any attacker
    verdicts.

    Attributes
    ----------
    construction:
        ``"volatile"`` or ``"nonvolatile"`` (Constructions 2 and 1).
    workers:
        Number of OS threads submitting operations concurrently.
    users:
        Number of enrolled sessions whose traffic the workers carry.
    ops_per_user:
        Real operations issued per user across the whole run.
    file_blocks:
        Size of each user's hidden file (and decoy), in data blocks.
    read_fraction:
        Probability that one operation is a byte-range read; the rest
        are byte-range writes through the Figure-6 path.
    dummy_to_real_ratio:
        The engine's dummy-to-real interleave ratio (Section 4.1.3).
    quantum:
        The engine's scheduling quantum (max requests per drain round).
    fuse_writes:
        Whether writes/appends are planned and fused across sessions
        (the plan-kernel engine); ``False`` is the read-only-coalescing
        baseline.
    gather_timeout_s:
        Engine gather wait override; ``None`` keeps the engine default.
    intervals:
        Number of equal slices the run is cut into; attached attacker
        probes observe after each slice (snapshot intervals).
    attackers:
        Probe names or instances, as in :class:`~repro.service.Scenario`.
    """

    construction: str = "nonvolatile"
    volume_mib: int = 8
    block_size: int = 4096
    seed: int = 0
    workers: int = 4
    users: int = 4
    ops_per_user: int = 32
    file_blocks: int = 16
    read_fraction: float = 0.7
    dummy_to_real_ratio: float = 1.0
    quantum: int = 16
    fuse_writes: bool = True
    gather_timeout_s: float | None = None
    intervals: int = 4
    attackers: tuple = ()
    latency: DiskLatencyModel | None = None

    def __post_init__(self) -> None:
        if self.construction not in ("volatile", "nonvolatile"):
            raise ValueError(
                f"unknown construction {self.construction!r}; "
                "expected 'volatile' or 'nonvolatile'"
            )
        if self.workers < 1 or self.users < 1:
            raise ValueError("workers and users must both be at least 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must lie in [0, 1]")
        if self.intervals < 1:
            raise ValueError("intervals must be at least 1")


class RoundRobinSimulator:
    """Interleaves client jobs one block operation at a time on a shared disk."""

    def __init__(self, storage: RawStorage):
        self.storage = storage

    def run(self, jobs: list[ClientJob]) -> SimulationResult:
        """Drive all jobs to completion, one step per job per round."""
        if not jobs:
            return SimulationResult(jobs=[], total_elapsed_ms=0.0)
        storage = self.storage
        started = storage.clock_ms
        active = list(jobs)
        while active:
            anyone_finished = False
            for job in active:
                if job.start_ms is None:
                    job.start_ms = storage.clock_ms
                try:
                    next(job.steps)
                    job.operations += 1
                    job.end_ms = storage.clock_ms
                except StopIteration:
                    if job.end_ms is None:
                        job.end_ms = storage.clock_ms
                    job.finished = True
                    anyone_finished = True
            # The round-robin order is stable, so the active list only needs
            # rebuilding on the (rare) rounds where some job completed.
            if anyone_finished:
                active = [job for job in active if not job.finished]
        return SimulationResult(jobs=list(jobs), total_elapsed_ms=storage.clock_ms - started)
