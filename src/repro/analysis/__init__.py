"""Analysis helpers: analytic models, result series and table formatting.

The benchmark harness produces the same rows and series the paper
reports; this subpackage holds the shared pieces — the paper's analytic
cost models (Sections 4.1.5 and 5.2), containers for swept results, and
plain-text table/series rendering.
"""

from repro.analysis.models import (
    expected_iterations,
    expected_update_overhead,
    update_overhead_curve,
)
from repro.analysis.series import SeriesTable, SweepResult
from repro.analysis.tables import format_markdown_table, format_table

__all__ = [
    "expected_update_overhead",
    "expected_iterations",
    "update_overhead_curve",
    "SweepResult",
    "SeriesTable",
    "format_table",
    "format_markdown_table",
]
