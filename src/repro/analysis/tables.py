"""Plain-text and markdown table rendering for the benchmark harness."""

from __future__ import annotations


def _column_widths(header: list[str], rows: list[list[str]]) -> list[int]:
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    return widths


def format_table(header: list[str], rows: list[list[str]]) -> str:
    """Render an aligned plain-text table."""
    widths = _column_widths(header, rows)
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths, strict=False)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=False)))
    return "\n".join(lines)


def format_markdown_table(header: list[str], rows: list[list[str]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
