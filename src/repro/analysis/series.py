"""Containers for swept benchmark results.

Every figure in the paper is a set of series over a swept parameter
(file size, concurrency, utilisation, buffer size).  ``SweepResult``
holds one such sweep — the x values plus one y-series per system — and
renders itself in the same row/series layout the paper's figures use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.analysis.tables import format_table


@dataclass
class SweepResult:
    """One swept experiment: x values and one series of y values per system."""

    name: str
    x_label: str
    y_label: str
    x_values: list = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    def add_point(self, system: str, y_value: float) -> None:
        """Append one measurement to a system's series."""
        self.series.setdefault(system, []).append(y_value)

    def add_points(self, system: str, y_values: Iterable[float]) -> None:
        """Append a whole batch of measurements to a system's series."""
        self.series.setdefault(system, []).extend(float(y) for y in y_values)

    def series_for(self, system: str) -> list[float]:
        """The full series of one system."""
        return self.series[system]

    def series_array(self, system: str) -> np.ndarray:
        """One system's series as a float array (for vectorized analysis)."""
        return np.asarray(self.series[system], dtype=float)

    def as_rows(self) -> list[list[str]]:
        """Rows of the result table: one row per x value."""
        rows = []
        for index, x in enumerate(self.x_values):
            row = [str(x)]
            for system in self.series:
                values = self.series[system]
                row.append(f"{values[index]:.2f}" if index < len(values) else "-")
            rows.append(row)
        return rows

    def render(self) -> str:
        """Plain-text rendering in the paper's rows/series layout."""
        header = [self.x_label] + list(self.series)
        body = format_table(header, self.as_rows())
        return f"{self.name}  (y = {self.y_label})\n{body}"

    def ratio(self, system_a: str, system_b: str) -> list[float]:
        """Point-wise ratio of two series (who wins, by what factor)."""
        length = min(len(self.series[system_a]), len(self.series[system_b]))
        a = self.series_array(system_a)[:length]
        b = self.series_array(system_b)[:length]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(b == 0, np.inf, a / b)
        return ratios.tolist()


@dataclass
class SeriesTable:
    """A small named table (e.g. Table 4) with fixed columns."""

    name: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Plain-text rendering."""
        rows = [[str(v) for v in row] for row in self.rows]
        return f"{self.name}\n{format_table(self.columns, rows)}"
