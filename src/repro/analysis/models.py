"""Analytic models stated in the paper.

Section 4.1.5 derives the expected I/O overhead of the Figure-6 update
algorithm: with ``N`` blocks of which ``D`` are dummies, the number of
selection iterations is geometric with success probability ``p = D/N``,
so the expected number of iterations — and hence the expected overhead
over a conventional 2-I/O update — is ``E = N / D``.

These helpers exist so the experiments can print model-vs-measured
comparisons (benchmark E11) and so users of the library can size their
volumes: keeping utilisation below 50% bounds the expected overhead at 2.
"""

from __future__ import annotations


def expected_update_overhead(total_blocks: int, dummy_blocks: int) -> float:
    """The paper's E = N / D expected update overhead."""
    if total_blocks <= 0:
        raise ValueError("total_blocks must be positive")
    if dummy_blocks < 0 or dummy_blocks > total_blocks:
        raise ValueError("dummy_blocks must be in [0, total_blocks]")
    if dummy_blocks == 0:
        return float("inf")
    return total_blocks / dummy_blocks


def expected_iterations(utilisation: float) -> float:
    """Expected Figure-6 iterations at a given space utilisation.

    Utilisation ``u`` means a fraction ``1 - u`` of blocks are dummies,
    so the expectation is ``1 / (1 - u)``.
    """
    if not 0.0 <= utilisation < 1.0:
        raise ValueError("utilisation must be in [0, 1)")
    return 1.0 / (1.0 - utilisation)


def update_overhead_curve(utilisations: list[float]) -> list[float]:
    """Expected overhead at each utilisation value (the Figure 11(a) model curve)."""
    return [expected_iterations(u) for u in utilisations]


def conventional_update_ios() -> int:
    """I/O operations of an update in a conventional file system (read + write)."""
    return 2


def steghide_expected_update_ios(utilisation: float) -> float:
    """Expected device operations of one Figure-6 update at a given utilisation."""
    return conventional_update_ios() * expected_iterations(utilisation)
