"""Adapters presenting the StegHide agents through the baseline interface.

``StegHideAdapter`` wraps either construction so the benchmark harness
can sweep StegHide (volatile agent) and StegHide* (non-volatile agent)
alongside the baselines.  The adapter routes updates through the
Figure-6 algorithm and reads through the plain StegFS retrieval path,
matching what the paper measures in Figures 10 and 11.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.interface import BaselineFile, FileSystemAdapter
from repro.core.agent import StegAgent
from repro.crypto.keys import FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.storage.disk import RawStorage


class StegHideAdapter(FileSystemAdapter):
    """StegHide / StegHide* seen through the uniform benchmark interface."""

    def __init__(self, storage: RawStorage, agent: StegAgent, prng: Sha256Prng, label: str):
        super().__init__(storage)
        self.agent = agent
        self._prng = prng
        self.label = label
        self._faks: dict[str, FileAccessKey] = {}

    @property
    def payload_bytes(self) -> int:
        return self.agent.volume.data_field_bytes

    @property
    def utilisation(self) -> float:
        return self.agent.volume.utilisation

    def create_file(self, name: str, content: bytes, stream: str = "default") -> BaselineFile:
        fak = FileAccessKey.generate(self._prng.spawn(f"fak:{name}"))
        self._faks[name] = fak
        handle = self.agent.create_file(fak, name, content, stream)
        return BaselineFile(
            name=name,
            size_bytes=len(content),
            num_blocks=handle.num_blocks,
            native_handle=handle,
        )

    def read_file(self, handle: BaselineFile, stream: str = "default") -> bytes:
        return self.agent.read_file(handle.native_handle, stream)

    def read_block(
        self, handle: BaselineFile, logical_index: int, stream: str = "default"
    ) -> bytes:
        return self.agent.read_block(handle.native_handle, logical_index, stream)

    def update_blocks(
        self,
        handle: BaselineFile,
        start_logical: int,
        payloads: list[bytes],
        stream: str = "default",
    ) -> None:
        self.agent.update_range(handle.native_handle, start_logical, payloads, stream)

    def fak_of(self, name: str) -> FileAccessKey:
        """The FAK generated for a file created through this adapter."""
        return self._faks[name]

    def registered_files(self) -> list[str]:
        """Names of the files created through this adapter, in creation order."""
        return list(self._faks)

    def iter_faks(self) -> Iterator[tuple[str, FileAccessKey]]:
        """(name, FAK) pairs of every file created through this adapter.

        This is the public accessor harness code (e.g. the scenario
        builders assembling a logged-in user's key ring) must use
        instead of touching the private FAK table.
        """
        return iter(self._faks.items())
