"""FragDisk: a well-used, fragmented conventional file system.

Section 6.2: "FragDisk is a well used file system whose storage are
fragmented, and we simulate it by breaking each file into fragments of
8 blocks."  Within a fragment the blocks are contiguous; successive
fragments land at scattered positions, so a full-file read alternates
short sequential bursts with seeks.
"""

from __future__ import annotations

from repro.baselines.interface import BaselineFile, FileSystemAdapter
from repro.crypto.prng import Sha256Prng
from repro.errors import VolumeFullError
from repro.storage.bitmap import Bitmap
from repro.storage.disk import RawStorage

FRAGMENT_BLOCKS = 8


class FragDiskFileSystem(FileSystemAdapter):
    """Conventional file system fragmented into 8-block extents."""

    label = "FragDisk"

    def __init__(
        self, storage: RawStorage, prng: Sha256Prng, fragment_blocks: int = FRAGMENT_BLOCKS
    ):
        super().__init__(storage)
        if fragment_blocks <= 0:
            raise ValueError("fragment_blocks must be positive")
        self._prng = prng
        self._fragment_blocks = fragment_blocks
        self._bitmap = Bitmap(storage.geometry.num_blocks)
        self._files: dict[str, list[int]] = {}

    @property
    def payload_bytes(self) -> int:
        return self.storage.geometry.block_size

    @property
    def utilisation(self) -> float:
        return self._bitmap.set_count / self.storage.geometry.num_blocks

    def _allocate_fragment(self, length: int) -> list[int]:
        """Allocate ``length`` contiguous blocks at a pseudo-random position."""
        num_blocks = self.storage.geometry.num_blocks
        aligned_slots = num_blocks // self._fragment_blocks
        for _ in range(4096):
            start = self._prng.randrange(aligned_slots) * self._fragment_blocks
            candidate = list(range(start, start + length))
            if all(not self._bitmap.get(i) for i in candidate):
                for i in candidate:
                    self._bitmap.set(i)
                return candidate
        # Fall back to a linear scan of fragment-aligned starts.
        for start in range(0, num_blocks - length + 1, self._fragment_blocks):
            candidate = list(range(start, start + length))
            if all(not self._bitmap.get(i) for i in candidate):
                for i in candidate:
                    self._bitmap.set(i)
                return candidate
        raise VolumeFullError("no free fragment large enough")

    def create_file(self, name: str, content: bytes, stream: str = "default") -> BaselineFile:
        payloads = self.split_payloads(content)
        blocks: list[int] = []
        remaining = len(payloads)
        while remaining > 0:
            length = min(self._fragment_blocks, remaining)
            blocks.extend(self._allocate_fragment(length))
            remaining -= length
        for index, payload in zip(blocks, payloads, strict=True):
            padded = payload + b"\x00" * (self.payload_bytes - len(payload))
            self.storage.write_block(index, padded, stream)
        self._files[name] = blocks
        return BaselineFile(
            name=name, size_bytes=len(content), num_blocks=len(blocks), native_handle=blocks
        )

    def registered_files(self) -> list[str]:
        return list(self._files)

    def read_file(self, handle: BaselineFile, stream: str = "default") -> bytes:
        pieces = [self.storage.read_block(index, stream) for index in handle.native_handle]
        return b"".join(pieces)[: handle.size_bytes]

    def read_block(
        self, handle: BaselineFile, logical_index: int, stream: str = "default"
    ) -> bytes:
        return self.storage.read_block(handle.native_handle[logical_index], stream)

    def update_blocks(
        self,
        handle: BaselineFile,
        start_logical: int,
        payloads: list[bytes],
        stream: str = "default",
    ) -> None:
        blocks: list[int] = handle.native_handle
        for offset, payload in enumerate(payloads):
            index = blocks[start_logical + offset]
            self.storage.read_block(index, stream)
            padded = payload + b"\x00" * (self.payload_bytes - len(payload))
            self.storage.write_block(index, padded, stream)
