"""Baseline file systems used in the paper's evaluation (Table 3).

* ``CleanDisk`` — a fresh conventional file system whose files occupy
  contiguous blocks, so single-stream reads and range updates enjoy
  sequential I/O.
* ``FragDisk`` — a well-used conventional file system whose files are
  fragmented; the paper simulates it "by breaking each file into
  fragments of 8 blocks".
* ``StegFS`` — the authors' earlier steganographic file system (ref
  [12]), i.e. :class:`repro.stegfs.StegFsVolume` driven without the
  update-hiding agent: blocks are scattered randomly but updates happen
  in place.

All three implement the same :class:`FileSystemInterface` as the
StegHide agents, so the benchmark harness can sweep over them uniformly.
"""

from repro.baselines.cleandisk import CleanDiskFileSystem
from repro.baselines.fragdisk import FragDiskFileSystem
from repro.baselines.interface import BaselineFile, FileSystemAdapter
from repro.baselines.plainstegfs import PlainStegFsAdapter
from repro.baselines.steghide import StegHideAdapter

__all__ = [
    "BaselineFile",
    "FileSystemAdapter",
    "CleanDiskFileSystem",
    "FragDiskFileSystem",
    "PlainStegFsAdapter",
    "StegHideAdapter",
]
