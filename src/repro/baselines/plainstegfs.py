"""StegFS baseline: the authors' earlier steganographic file system (ref [12]).

Blocks of hidden files are scattered uniformly across the volume — so
retrieval behaves exactly like the StegHide systems — but updates are
performed *in place*, which is precisely the behaviour the paper's
update-analysis attacker exploits.
"""

from __future__ import annotations

from repro.baselines.interface import BaselineFile, FileSystemAdapter
from repro.crypto.keys import FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.stegfs.filesystem import StegFsVolume
from repro.storage.disk import RawStorage


class PlainStegFsAdapter(FileSystemAdapter):
    """The former StegFS of [12], without update or traffic hiding."""

    label = "StegFS"

    def __init__(self, storage: RawStorage, volume: StegFsVolume, prng: Sha256Prng):
        super().__init__(storage)
        self.volume = volume
        self._prng = prng
        self._handles: dict[str, object] = {}

    @property
    def payload_bytes(self) -> int:
        return self.volume.data_field_bytes

    @property
    def utilisation(self) -> float:
        return self.volume.utilisation

    def create_file(self, name: str, content: bytes, stream: str = "default") -> BaselineFile:
        fak = FileAccessKey.generate(self._prng.spawn(f"fak:{name}"))
        handle = self.volume.create_file(fak, name, content, stream=stream)
        self._handles[name] = handle
        return BaselineFile(
            name=name,
            size_bytes=len(content),
            num_blocks=handle.num_blocks,
            native_handle=handle,
        )

    def registered_files(self) -> list[str]:
        return list(self._handles)

    def read_file(self, handle: BaselineFile, stream: str = "default") -> bytes:
        return self.volume.read_file(handle.native_handle, stream)

    def read_block(
        self, handle: BaselineFile, logical_index: int, stream: str = "default"
    ) -> bytes:
        return self.volume.read_block(handle.native_handle, logical_index, stream)

    def update_blocks(
        self,
        handle: BaselineFile,
        start_logical: int,
        payloads: list[bytes],
        stream: str = "default",
    ) -> None:
        for offset, payload in enumerate(payloads):
            self.volume.write_block_in_place(
                handle.native_handle, start_logical + offset, payload, stream
            )
