"""CleanDisk: a fresh conventional file system with contiguous allocation.

Table 3: "CleanDisk — a fresh Linux file system", "whose files reside on
contiguous data blocks."  Files are laid out in a single extent, so a
single-stream read or a multi-block update proceeds sequentially and the
latency model charges (almost) only transfer time.
"""

from __future__ import annotations

from repro.baselines.interface import BaselineFile, FileSystemAdapter
from repro.errors import VolumeFullError
from repro.storage.disk import RawStorage


class CleanDiskFileSystem(FileSystemAdapter):
    """Conventional file system with contiguous (extent) allocation."""

    label = "CleanDisk"

    def __init__(self, storage: RawStorage):
        super().__init__(storage)
        self._next_free = 0
        self._files: dict[str, list[int]] = {}

    @property
    def payload_bytes(self) -> int:
        return self.storage.geometry.block_size

    @property
    def utilisation(self) -> float:
        return self._next_free / self.storage.geometry.num_blocks

    def _allocate_extent(self, num_blocks: int) -> list[int]:
        if self._next_free + num_blocks > self.storage.geometry.num_blocks:
            raise VolumeFullError(
                f"extent of {num_blocks} blocks does not fit "
                f"(next free {self._next_free} of {self.storage.geometry.num_blocks})"
            )
        extent = list(range(self._next_free, self._next_free + num_blocks))
        self._next_free += num_blocks
        return extent

    def create_file(self, name: str, content: bytes, stream: str = "default") -> BaselineFile:
        payloads = self.split_payloads(content)
        blocks = self._allocate_extent(len(payloads))
        for index, payload in zip(blocks, payloads, strict=True):
            padded = payload + b"\x00" * (self.payload_bytes - len(payload))
            self.storage.write_block(index, padded, stream)
        self._files[name] = blocks
        return BaselineFile(
            name=name, size_bytes=len(content), num_blocks=len(blocks), native_handle=blocks
        )

    def registered_files(self) -> list[str]:
        return list(self._files)

    def read_file(self, handle: BaselineFile, stream: str = "default") -> bytes:
        pieces = [self.storage.read_block(index, stream) for index in handle.native_handle]
        return b"".join(pieces)[: handle.size_bytes]

    def read_block(
        self, handle: BaselineFile, logical_index: int, stream: str = "default"
    ) -> bytes:
        return self.storage.read_block(handle.native_handle[logical_index], stream)

    def update_blocks(
        self,
        handle: BaselineFile,
        start_logical: int,
        payloads: list[bytes],
        stream: str = "default",
    ) -> None:
        blocks: list[int] = handle.native_handle
        for offset, payload in enumerate(payloads):
            index = blocks[start_logical + offset]
            self.storage.read_block(index, stream)
            padded = payload + b"\x00" * (self.payload_bytes - len(payload))
            self.storage.write_block(index, padded, stream)
