"""Common interface the benchmark harness drives all file systems through.

The paper's evaluation compares five systems (Table 3): StegHide,
StegHide*, StegFS, FragDisk and CleanDisk.  Each is wrapped in a
:class:`FileSystemAdapter` exposing the three operations the workloads
need — create a file, read a file, update a run of blocks — so that the
same experiment code can sweep over all of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.storage.disk import RawStorage


@dataclass
class BaselineFile:
    """A generic handle on a stored file, opaque to the harness."""

    name: str
    size_bytes: int
    num_blocks: int
    native_handle: Any


class FileSystemAdapter(ABC):
    """Uniform facade over one of the five evaluated file systems."""

    #: Human-readable name matching the paper's Table 3 labels.
    label: str = "abstract"

    def __init__(self, storage: RawStorage):
        self.storage = storage

    @property
    @abstractmethod
    def payload_bytes(self) -> int:
        """Usable bytes per block for file content."""

    @abstractmethod
    def create_file(self, name: str, content: bytes, stream: str = "default") -> BaselineFile:
        """Store ``content`` as a new file."""

    @abstractmethod
    def read_file(self, handle: BaselineFile, stream: str = "default") -> bytes:
        """Read a whole file back."""

    @abstractmethod
    def read_block(
        self, handle: BaselineFile, logical_index: int, stream: str = "default"
    ) -> bytes:
        """Read one logical block of a file (the unit the simulator interleaves at)."""

    @abstractmethod
    def update_blocks(
        self,
        handle: BaselineFile,
        start_logical: int,
        payloads: list[bytes],
        stream: str = "default",
    ) -> None:
        """Update ``len(payloads)`` consecutive logical blocks starting at ``start_logical``."""

    # -- public registry ------------------------------------------------------------

    def registered_files(self) -> list[str]:
        """Names of the files created through this adapter, in creation order.

        Harness code must use this (or construction-specific accessors
        like ``StegHideAdapter.iter_faks``) instead of reaching into an
        adapter's private state.
        """
        return []

    # -- shared helpers -------------------------------------------------------------

    def blocks_for(self, size_bytes: int) -> int:
        """Number of blocks a file of ``size_bytes`` occupies."""
        return -(-size_bytes // self.payload_bytes)

    def split_payloads(self, content: bytes) -> list[bytes]:
        """Split content into per-block payloads."""
        step = self.payload_bytes
        return [content[i : i + step] for i in range(0, len(content), step)]

    @property
    def utilisation(self) -> float:
        """Fraction of the volume in use (adapters override when meaningful)."""
        return 0.0
