"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

import warnings


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CryptoError(ReproError):
    """Base class for errors in the crypto substrate."""


class InvalidKeyError(CryptoError):
    """A key has the wrong length or structure."""


class InvalidBlockSizeError(CryptoError):
    """Plaintext or ciphertext is not a multiple of the cipher block size."""


class PaddingError(CryptoError):
    """PKCS#7 padding is malformed on decryption."""


class StorageError(ReproError):
    """Base class for errors in the storage substrate."""


class BlockOutOfRangeError(StorageError):
    """A block index falls outside the storage volume."""


class BlockSizeMismatchError(StorageError):
    """A buffer written to the disk does not match the block size."""


class SnapshotMismatchError(StorageError):
    """Two snapshots being compared come from different volumes."""


class BackendClosedError(StorageError):
    """A block backend was accessed after :meth:`close`."""


class VolumeFileError(StorageError):
    """A file opened as a durable volume does not have a volume's shape."""


class JournalError(StorageError):
    """The durable plan journal is unusable (unbound, full, closed or malformed)."""


class InjectedCrashError(StorageError):
    """A fault-injecting backend killed execution at its armed device call.

    Raised by :class:`~repro.storage.backend.FaultInjectingBackend` to
    model the process dying mid-plan; everything the backend applied
    before the crash stays on the device (including a torn block), and
    every later access raises this error again — a dead process issues
    no further I/O.
    """


class FileSystemError(ReproError):
    """Base class for errors in the file-system layers."""


class VolumeFullError(FileSystemError):
    """No free block could be allocated."""


class HiddenFileNotFoundError(FileSystemError):
    """A hidden file could not be located from the supplied FAK/path."""


class HiddenFileExistsError(FileSystemError):
    """A hidden file already exists at the target path."""


class AccessDeniedError(FileSystemError):
    """The supplied access key does not open the target file."""


class IntegrityError(FileSystemError):
    """Decrypted content failed an integrity check (wrong key or corruption)."""


class AgentError(ReproError):
    """Base class for errors in the agent layer."""


class NotLoggedInError(AgentError):
    """A volatile-agent operation referenced a user who is not logged in."""


class UnknownFileError(AgentError):
    """The agent was asked to operate on a file it has no key for."""


class ConcurrentAccessError(AgentError):
    """Two agent operations overlapped without external serialization.

    The agents are deliberately single-threaded (see the locking
    contract in :mod:`repro.core.agent`); concurrent callers must go
    through :class:`repro.service.ConcurrentVolumeService`, which
    serializes every operation behind its scheduler.
    """


class ObliviousStorageError(ReproError):
    """Base class for errors in the oblivious storage."""


class LevelFullError(ObliviousStorageError):
    """A level overflowed without being dumped (internal invariant violation)."""


class BlockNotCachedError(ObliviousStorageError):
    """A block requested from the oblivious store is not present in any level."""


class ServiceError(ReproError):
    """Base class for errors raised by the service facade."""


class ServiceClosedError(ServiceError):
    """An operation was issued on a service after :meth:`close`."""


class SessionClosedError(ServiceError):
    """An operation was issued on a session after it logged out."""


class SessionConflictError(ServiceError):
    """A user tried to open a second concurrent session under the same name."""


class ByteRangeError(ServiceError):
    """A byte-granular read/write fell outside the file's current extent."""


class WorkloadError(ReproError):
    """Base class for errors in workload generation."""


class SimulationError(ReproError):
    """Base class for errors in the simulation engine."""


# -- deprecated aliases -------------------------------------------------------------
#
# The trailing-underscore names predate the ``Hidden*`` spelling; they
# resolve to the same classes (so existing ``except`` clauses keep
# working) but warn on import/attribute access.

_DEPRECATED_ALIASES = {
    "FileNotFoundError_": HiddenFileNotFoundError,
    "FileExistsError_": HiddenFileExistsError,
}


def __getattr__(name: str):
    replacement = _DEPRECATED_ALIASES.get(name)
    if replacement is not None:
        warnings.warn(
            f"repro.errors.{name} is deprecated; use repro.errors.{replacement.__name__}",
            DeprecationWarning,
            stacklevel=2,
        )
        return replacement
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
