"""Update workloads (Figure 11).

The paper's update experiments measure the access time of updating a
randomly selected data block of a file (Figure 11(a)), a run of 1–5
consecutive blocks (Figure 11(b)), and 5-block updates under growing
concurrency (Figure 11(c)).
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.interface import BaselineFile, FileSystemAdapter
from repro.crypto.prng import Sha256Prng
from repro.workloads.filegen import generate_content


def random_update_requests(
    handle: BaselineFile, count: int, prng: Sha256Prng, range_blocks: int = 1
) -> list[int]:
    """Starting logical indices for ``count`` random updates of ``range_blocks`` blocks."""
    if handle.num_blocks < range_blocks:
        raise ValueError("file too small for the requested update range")
    upper = handle.num_blocks - range_blocks + 1
    return [prng.randrange(upper) for _ in range(count)]


def measure_block_update(
    adapter: FileSystemAdapter,
    handle: BaselineFile,
    logical_index: int,
    seed: int = 0,
    stream: str = "default",
) -> float:
    """Update one block with fresh content; return elapsed simulated ms."""
    payload = generate_content(adapter.payload_bytes, seed)
    storage = adapter.storage
    storage.reset_head_position()
    started = storage.clock_ms
    adapter.update_blocks(handle, logical_index, [payload], stream)
    return storage.clock_ms - started


def measure_range_update(
    adapter: FileSystemAdapter,
    handle: BaselineFile,
    start_logical: int,
    range_blocks: int,
    seed: int = 0,
    stream: str = "default",
) -> float:
    """Update ``range_blocks`` consecutive blocks; return elapsed simulated ms."""
    payloads = [
        generate_content(adapter.payload_bytes, seed + offset) for offset in range(range_blocks)
    ]
    storage = adapter.storage
    storage.reset_head_position()
    started = storage.clock_ms
    adapter.update_blocks(handle, start_logical, payloads, stream)
    return storage.clock_ms - started


def block_update_job(
    adapter: FileSystemAdapter,
    handle: BaselineFile,
    start_logical: int,
    range_blocks: int,
    seed: int,
    stream: str,
) -> Iterator[None]:
    """Generator performing a range update one block per step (for the simulator)."""
    for offset in range(range_blocks):
        payload = generate_content(adapter.payload_bytes, seed + offset)
        adapter.update_blocks(handle, start_logical + offset, [payload], stream)
        yield
