"""Data-retrieval workloads (Figure 10).

A retrieval reads a whole file, block by block, through whichever file
system adapter is under test.  The single-user variant simply measures
elapsed simulated time; the multi-user variant exposes the read as a
generator (one block per step) so the round-robin simulator can
interleave several users on the shared disk.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.interface import BaselineFile, FileSystemAdapter


def measure_file_read(
    adapter: FileSystemAdapter, handle: BaselineFile, stream: str = "default"
) -> float:
    """Read a whole file and return the elapsed simulated milliseconds."""
    storage = adapter.storage
    storage.reset_head_position()
    started = storage.clock_ms
    adapter.read_file(handle, stream)
    return storage.clock_ms - started


def file_read_job(
    adapter: FileSystemAdapter, handle: BaselineFile, stream: str
) -> Iterator[None]:
    """Generator performing a full-file read one block per step."""
    for logical in range(handle.num_blocks):
        adapter.read_block(handle, logical, stream)
        yield
