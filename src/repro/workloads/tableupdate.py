"""The Figure-1 motivating scenario: updating a hidden database table.

The paper opens with a DBMS updating ``Sal_table`` ("Set Salary +=
100,000 Where name = 'Bob'"): a tiny logical change whose physical
footprint betrays the table's existence to a snapshot-comparing
attacker.  This module provides a miniature row-oriented table stored
inside one hidden file, plus a workload that issues row updates through
any of the file-system adapters — it is used both by the salary-database
example and by the update-analysis security benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.interface import BaselineFile, FileSystemAdapter
from repro.crypto.prng import Sha256Prng

ROW_SIZE = 64
_NAME_BYTES = 32
_SALARY_BYTES = 8


@dataclass
class SalaryTable:
    """A fixed-width (name, salary) table serialised into one file.

    Each row is 64 bytes: a 32-byte padded name, an 8-byte big-endian
    salary and 24 reserved bytes.  Depending on the file system's
    per-block payload size a row may straddle a block boundary, in which
    case an update touches two consecutive blocks.
    """

    rows: list[tuple[str, int]]

    def serialise(self) -> bytes:
        """Pack all rows into the table's on-file representation."""
        out = bytearray()
        for name, salary in self.rows:
            encoded = name.encode("utf-8")[:_NAME_BYTES]
            out += encoded + b"\x00" * (_NAME_BYTES - len(encoded))
            out += int(salary).to_bytes(_SALARY_BYTES, "big")
            out += b"\x00" * (ROW_SIZE - _NAME_BYTES - _SALARY_BYTES)
        return bytes(out)

    @classmethod
    def deserialise(cls, data: bytes) -> "SalaryTable":
        """Unpack the on-file representation back into rows."""
        rows = []
        for offset in range(0, len(data) - len(data) % ROW_SIZE, ROW_SIZE):
            name = data[offset : offset + _NAME_BYTES].rstrip(b"\x00").decode("utf-8")
            salary = int.from_bytes(
                data[offset + _NAME_BYTES : offset + _NAME_BYTES + _SALARY_BYTES], "big"
            )
            if name:
                rows.append((name, salary))
        return cls(rows=rows)

    def row_bytes(self, name: str) -> bytes:
        """The 64-byte on-file representation of one row.

        Together with :meth:`row_offset` this is all a byte-granular
        writer needs to push a single row update — no block math.
        """
        offset = self.row_offset(name)
        return self.serialise()[offset : offset + ROW_SIZE]

    def row_offset(self, name: str) -> int:
        """Byte offset of the row for ``name``."""
        for index, (row_name, _) in enumerate(self.rows):
            if row_name == name:
                return index * ROW_SIZE
        raise KeyError(f"no row for {name!r}")

    def set_salary(self, name: str, salary: int) -> None:
        """Update one row in the in-memory table."""
        for index, (row_name, _) in enumerate(self.rows):
            if row_name == name:
                self.rows[index] = (row_name, salary)
                return
        raise KeyError(f"no row for {name!r}")

    @classmethod
    def generate(cls, num_rows: int, prng: Sha256Prng) -> "SalaryTable":
        """A synthetic table of ``num_rows`` employees."""
        rows = [
            (f"employee-{index:05d}", 30_000 + prng.randrange(200_000))
            for index in range(num_rows)
        ]
        return cls(rows=rows)


class TableUpdateWorkload:
    """Issues salary updates against a table stored through a file-system adapter."""

    def __init__(
        self,
        adapter: FileSystemAdapter,
        table: SalaryTable,
        name: str = "/db/sal_table",
        stream: str = "db",
    ):
        self.adapter = adapter
        self.table = table
        self.stream = stream
        self.handle: BaselineFile = adapter.create_file(name, table.serialise(), stream)

    def _blocks_of_row(self, row_name: str) -> tuple[int, int]:
        """(first, last) logical block covering a row (rows can straddle a boundary)."""
        offset = self.table.row_offset(row_name)
        first = offset // self.adapter.payload_bytes
        last = (offset + ROW_SIZE - 1) // self.adapter.payload_bytes
        return first, last

    def update_salary(self, row_name: str, new_salary: int) -> list[int]:
        """Apply one salary update through the adapter; returns the logical blocks touched."""
        self.table.set_salary(row_name, new_salary)
        first, last = self._blocks_of_row(row_name)
        serialised = self.table.serialise()
        payloads = []
        for logical in range(first, last + 1):
            start = logical * self.adapter.payload_bytes
            payloads.append(serialised[start : start + self.adapter.payload_bytes])
        self.adapter.update_blocks(self.handle, first, payloads, self.stream)
        return list(range(first, last + 1))

    def run_random_updates(self, count: int, prng: Sha256Prng) -> list[int]:
        """Issue ``count`` random salary updates; returns the logical blocks touched."""
        touched = []
        for _ in range(count):
            name, _ = self.table.rows[prng.randrange(len(self.table.rows))]
            touched.extend(self.update_salary(name, 30_000 + prng.randrange(200_000)))
        return touched

    def read_back(self) -> SalaryTable:
        """Read the table back through the adapter and deserialise it."""
        return SalaryTable.deserialise(self.adapter.read_file(self.handle, self.stream))
