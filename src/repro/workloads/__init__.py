"""Workload generators for the paper's evaluation.

Table 2 of the paper defines the workload: 4 KB blocks, files of
(4, 8] MB, a 1 GB volume, space utilisation up to 50%.  These modules
generate file contents, retrieval and update request streams, the
multi-user variants of both, and the Figure-1 salary-table scenario the
introduction motivates.
"""

from repro.workloads.filegen import FileSpec, generate_content, generate_file_specs
from repro.workloads.retrieval import file_read_job, measure_file_read
from repro.workloads.tableupdate import SalaryTable, TableUpdateWorkload
from repro.workloads.update import (
    block_update_job,
    measure_block_update,
    measure_range_update,
    random_update_requests,
)

__all__ = [
    "FileSpec",
    "generate_content",
    "generate_file_specs",
    "file_read_job",
    "measure_file_read",
    "block_update_job",
    "measure_block_update",
    "measure_range_update",
    "random_update_requests",
    "SalaryTable",
    "TableUpdateWorkload",
]
