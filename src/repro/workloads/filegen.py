"""Synthetic file generation.

File contents only need to be (a) deterministic for a given seed and
(b) cheap to produce at multi-megabyte sizes, so they come from a
numpy generator rather than the cryptographic PRNG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.prng import Sha256Prng

MIB = 1024 * 1024


@dataclass(frozen=True)
class FileSpec:
    """A file to create in a workload: logical name and size."""

    name: str
    size_bytes: int


def generate_content(size_bytes: int, seed: int = 0) -> bytes:
    """Deterministic pseudo-random file content of exactly ``size_bytes``."""
    if size_bytes < 0:
        raise ValueError("size_bytes must be non-negative")
    # repro-lint: ignore[ENT001] -- seeded, deterministic workload content; not a crypto path
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size_bytes, dtype=np.uint8).tobytes()


def generate_file_specs(
    count: int,
    prng: Sha256Prng,
    min_size_bytes: int = 4 * MIB,
    max_size_bytes: int = 8 * MIB,
    name_prefix: str = "/hidden/file",
) -> list[FileSpec]:
    """File specs matching the paper's (4, 8] MB default size range."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if min_size_bytes > max_size_bytes:
        raise ValueError("min_size_bytes must not exceed max_size_bytes")
    specs = []
    for index in range(count):
        size = prng.randint(min_size_bytes, max_size_bytes)
        specs.append(FileSpec(name=f"{name_prefix}{index}", size_bytes=size))
    return specs
