"""Cipher interface used by the storage layer, plus a fast simulation cipher.

The storage layer encrypts the *data field* of every block under a key
and a per-block IV (Section 4.1.1 of the paper).  Two interchangeable
implementations are provided:

``CbcCipher`` (in :mod:`repro.crypto.cbc`)
    Authentic AES-CBC, as the paper's prototype uses.  Being pure
    Python it is slow, so it is the right choice for correctness tests
    and small examples.

``FastFieldCipher`` (here)
    A SHA-256 counter-mode stream cipher.  ``hashlib`` runs at C speed,
    so this cipher lets the benchmarks drive volumes with hundreds of
    thousands of blocks.  It preserves the two properties the paper's
    mechanisms rely on: changing the IV changes every ciphertext byte,
    and without the key the ciphertext is indistinguishable from random
    bytes.

Both expose ``encrypt(iv, plaintext)`` / ``decrypt(iv, ciphertext)``.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

from repro.errors import InvalidKeyError


class FieldCipher(ABC):
    """Encrypts/decrypts a block's data field under a per-block IV."""

    @abstractmethod
    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` under this cipher's key and the given IV."""

    @abstractmethod
    def decrypt(self, iv: bytes, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt` for the same IV."""


class FastFieldCipher(FieldCipher):
    """SHA-256 counter-mode stream cipher keyed by ``key`` and the block IV.

    The keystream for (key, iv) is ``SHA256(key || iv || counter)`` for
    counter = 0, 1, 2, ... concatenated, XOR-ed with the plaintext.
    Encryption and decryption are the same operation.
    """

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise InvalidKeyError("FastFieldCipher key must be non-empty bytes")
        self._key = bytes(key)

    def _keystream(self, iv: bytes, length: int) -> bytes:
        prefix = self._key + bytes(iv)
        chunks = []
        counter = 0
        produced = 0
        while produced < length:
            chunk = hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
            chunks.append(chunk)
            produced += len(chunk)
            counter += 1
        return b"".join(chunks)[:length]

    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        stream = self._keystream(iv, len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    def decrypt(self, iv: bytes, ciphertext: bytes) -> bytes:
        return self.encrypt(iv, ciphertext)
