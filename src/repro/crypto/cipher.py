"""Cipher interface used by the storage layer, plus a fast simulation cipher.

The storage layer encrypts the *data field* of every block under a key
and a per-block IV (Section 4.1.1 of the paper).  Two interchangeable
implementations are provided:

``CbcCipher`` (in :mod:`repro.crypto.cbc`)
    Authentic AES-CBC, as the paper's prototype uses.  Being pure
    Python it is slow, so it is the right choice for correctness tests
    and small examples.

``FastFieldCipher`` (here)
    A SHAKE-256 stream cipher: the keystream for (key, iv) is the XOF
    output of ``SHAKE256(key || iv)``, squeezed to the plaintext length
    in a single ``hashlib`` call at C speed, so this cipher lets the
    benchmarks drive volumes with hundreds of thousands of blocks.  It
    preserves the two properties the paper's mechanisms rely on:
    changing the IV changes every ciphertext byte, and without the key
    the ciphertext is indistinguishable from random bytes.

Both expose ``encrypt(iv, plaintext)`` / ``decrypt(iv, ciphertext)``,
plus batched ``encrypt_many`` / ``decrypt_many`` that the block-I/O
pipeline uses to transform whole runs of blocks per call.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import InvalidKeyError


class FieldCipher(ABC):
    """Encrypts/decrypts a block's data field under a per-block IV."""

    @abstractmethod
    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` under this cipher's key and the given IV."""

    @abstractmethod
    def decrypt(self, iv: bytes, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt` for the same IV."""

    def encrypt_many(self, ivs: Sequence[bytes], plaintexts: Sequence[bytes]) -> list[bytes]:
        """Encrypt a batch of blocks; equivalent to one :meth:`encrypt` per pair."""
        if len(ivs) != len(plaintexts):
            raise ValueError(f"{len(ivs)} IVs but {len(plaintexts)} plaintexts")
        return [self.encrypt(iv, plaintext) for iv, plaintext in zip(ivs, plaintexts, strict=True)]

    def decrypt_many(self, ivs: Sequence[bytes], ciphertexts: Sequence[bytes]) -> list[bytes]:
        """Decrypt a batch of blocks; equivalent to one :meth:`decrypt` per pair."""
        if len(ivs) != len(ciphertexts):
            raise ValueError(f"{len(ivs)} IVs but {len(ciphertexts)} ciphertexts")
        return [
            self.decrypt(iv, ciphertext) for iv, ciphertext in zip(ivs, ciphertexts, strict=True)
        ]


class FastFieldCipher(FieldCipher):
    """SHAKE-256 stream cipher keyed by ``key`` and the block IV.

    The keystream for (key, iv) is ``SHAKE256(key || iv)`` squeezed to
    the plaintext length (an XOF, so longer messages extend the same
    stream), XOR-ed with the plaintext.  Encryption and decryption are
    the same operation.

    Both halves run at C speed: the whole keystream comes out of one
    ``hashlib`` call, and the XOR goes through ``int.from_bytes`` for
    single blocks or one numpy call for batches instead of a per-byte
    Python loop.
    """

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise InvalidKeyError("FastFieldCipher key must be non-empty bytes")
        self._key = bytes(key)

    def _keystream(self, iv: bytes, length: int) -> bytes:
        return hashlib.shake_256(self._key + bytes(iv)).digest(length)

    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        stream = self._keystream(iv, len(plaintext))
        xored = int.from_bytes(plaintext, "little") ^ int.from_bytes(stream, "little")
        return xored.to_bytes(len(plaintext), "little")

    def decrypt(self, iv: bytes, ciphertext: bytes) -> bytes:
        return self.encrypt(iv, ciphertext)

    def encrypt_many(self, ivs: Sequence[bytes], plaintexts: Sequence[bytes]) -> list[bytes]:
        if len(ivs) != len(plaintexts):
            raise ValueError(f"{len(ivs)} IVs but {len(plaintexts)} plaintexts")
        if not plaintexts:
            return []
        streams = [self._keystream(iv, len(pt)) for iv, pt in zip(ivs, plaintexts, strict=True)]
        xored = np.bitwise_xor(
            np.frombuffer(b"".join(plaintexts), dtype=np.uint8),
            np.frombuffer(b"".join(streams), dtype=np.uint8),
        ).tobytes()
        out = []
        offset = 0
        for plaintext in plaintexts:
            out.append(xored[offset : offset + len(plaintext)])
            offset += len(plaintext)
        return out

    def decrypt_many(self, ivs: Sequence[bytes], ciphertexts: Sequence[bytes]) -> list[bytes]:
        return self.encrypt_many(ivs, ciphertexts)
