"""Pure-Python AES block cipher (FIPS 197).

The paper encrypts every storage block with AES (Section 6.1, ref [3]).
This module implements AES-128/192/256 from scratch so the library has
no dependency on an external crypto package.  The implementation is a
straightforward table-driven one: the S-boxes and the GF(2^8)
multiplication tables used by MixColumns are precomputed at import time.

Only the raw block transform is exposed here; chaining modes live in
:mod:`repro.crypto.cbc`.
"""

from __future__ import annotations

from repro.crypto.util import AES_BLOCK_SIZE
from repro.errors import InvalidBlockSizeError, InvalidKeyError


def _build_sbox() -> tuple[list[int], list[int]]:
    """Construct the AES S-box and its inverse from the field definition."""
    # Multiplicative inverses in GF(2^8) with the AES modulus x^8+x^4+x^3+x+1.
    def gf_mul(a: int, b: int) -> int:
        result = 0
        for _ in range(8):
            if b & 1:
                result ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return result

    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gf_mul(x, y) == 1:
                inverse[x] = y
                break

    sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        value = 0
        for i in range(8):
            bit = (
                (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
                ^ (0x63 >> i)
            ) & 1
            value |= bit << i
        sbox[x] = value

    inv_sbox = [0] * 256
    for x, v in enumerate(sbox):
        inv_sbox[v] = x
    return sbox, inv_sbox


def _gf_multiply(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) under the AES modulus."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


_SBOX, _INV_SBOX = _build_sbox()
_MUL2 = [_gf_multiply(x, 2) for x in range(256)]
_MUL3 = [_gf_multiply(x, 3) for x in range(256)]
_MUL9 = [_gf_multiply(x, 9) for x in range(256)]
_MUL11 = [_gf_multiply(x, 11) for x in range(256)]
_MUL13 = [_gf_multiply(x, 13) for x in range(256)]
_MUL14 = [_gf_multiply(x, 14) for x in range(256)]
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]

_ROUNDS_BY_KEY_LEN = {16: 10, 24: 12, 32: 14}


class AES:
    """AES block cipher over 16-byte blocks.

    Parameters
    ----------
    key:
        16, 24 or 32 bytes selecting AES-128, AES-192 or AES-256.
    """

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray)):
            raise InvalidKeyError("AES key must be bytes")
        key = bytes(key)
        if len(key) not in _ROUNDS_BY_KEY_LEN:
            raise InvalidKeyError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self._key = key
        self._rounds = _ROUNDS_BY_KEY_LEN[len(key)]
        self._round_keys = self._expand_key(key)

    @property
    def key_size(self) -> int:
        """Key length in bytes (16, 24 or 32)."""
        return len(self._key)

    @property
    def rounds(self) -> int:
        """Number of AES rounds for this key size."""
        return self._rounds

    # -- key schedule -----------------------------------------------------

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """Expand the cipher key into (rounds + 1) round keys of 16 bytes."""
        key_words = [list(key[i : i + 4]) for i in range(0, len(key), 4)]
        nk = len(key_words)
        total_words = 4 * (self._rounds + 1)

        words = list(key_words)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp, strict=True)])

        round_keys = []
        for r in range(self._rounds + 1):
            flat: list[int] = []
            for w in words[4 * r : 4 * r + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    # -- round primitives --------------------------------------------------
    #
    # The state is kept as a flat 16-element list in column-major order,
    # matching the byte order of the input block, so AddRoundKey is a plain
    # element-wise XOR with the flat round key.

    @staticmethod
    def _add_round_key(state: list[int], round_key: list[int]) -> list[int]:
        return [s ^ k for s, k in zip(state, round_key, strict=True)]

    @staticmethod
    def _sub_bytes(state: list[int]) -> list[int]:
        return [_SBOX[b] for b in state]

    @staticmethod
    def _inv_sub_bytes(state: list[int]) -> list[int]:
        return [_INV_SBOX[b] for b in state]

    @staticmethod
    def _shift_rows(state: list[int]) -> list[int]:
        # state[c*4 + r] is the byte in row r, column c.
        s = state
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> list[int]:
        s = state
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            out[4 * c + 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[4 * c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[4 * c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[4 * c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return out

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            out[4 * c + 0] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[4 * c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[4 * c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[4 * c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out

    # -- block transforms ---------------------------------------------------

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(plaintext) != AES_BLOCK_SIZE:
            raise InvalidBlockSizeError(
                f"AES block must be {AES_BLOCK_SIZE} bytes, got {len(plaintext)}"
            )
        state = self._add_round_key(list(plaintext), self._round_keys[0])
        for r in range(1, self._rounds):
            state = self._sub_bytes(state)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = self._add_round_key(state, self._round_keys[r])
        state = self._sub_bytes(state)
        state = self._shift_rows(state)
        state = self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(ciphertext) != AES_BLOCK_SIZE:
            raise InvalidBlockSizeError(
                f"AES block must be {AES_BLOCK_SIZE} bytes, got {len(ciphertext)}"
            )
        state = self._add_round_key(list(ciphertext), self._round_keys[self._rounds])
        for r in range(self._rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = self._inv_sub_bytes(state)
            state = self._add_round_key(state, self._round_keys[r])
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = self._inv_sub_bytes(state)
        state = self._add_round_key(state, self._round_keys[0])
        return bytes(state)
