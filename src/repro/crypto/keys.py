"""File access keys (FAKs) and per-user key rings.

Section 4.2.1 of the paper: "the FAK of each hidden file comprises 3
components – the location of the file header, a header key for
encrypting the header information, and a content key for encrypting the
file content."  Dummy files use only the header location and header key;
their content key is irrelevant because they hold random bytes.

The header location is *derivable* from the access key and the path name
(Section 4.1.2), which is what lets the agent find a file given only its
FAK and lets the owner of the volume deny that any further files exist.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import InvalidKeyError

KEY_SIZE = 32


def derive_header_location(secret: bytes, path: str, volume_blocks: int) -> int:
    """Derive the header block index for a file from its secret and path.

    The derivation is ``SHA256(secret || path) mod volume_blocks``; the
    same (secret, path, volume size) always maps to the same block, so a
    user who re-supplies his FAK and path can re-locate the header
    without any on-disk directory.  Collisions are handled by the
    filesystem layer via linear probing with the same hash chain.
    """
    if volume_blocks <= 0:
        raise ValueError("volume_blocks must be positive")
    digest = hashlib.sha256(secret + b"|" + path.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % volume_blocks


def probe_sequence(secret: bytes, path: str, volume_blocks: int, limit: int) -> list[int]:
    """Deterministic probe sequence used when the derived header slot is taken.

    Produces ``limit`` distinct candidate block indices, starting with the
    primary location from :func:`derive_header_location`.
    """
    if limit <= 0:
        return []
    primary = derive_header_location(secret, path, volume_blocks)
    seen: set[int] = {primary}
    sequence: list[int] = [primary]
    counter = 0
    base = secret + b"|" + path.encode("utf-8")
    while len(sequence) < min(limit, volume_blocks):
        digest = hashlib.sha256(base + b"|" + counter.to_bytes(4, "big")).digest()
        candidate = int.from_bytes(digest, "big") % volume_blocks
        if candidate not in seen:
            seen.add(candidate)
            sequence.append(candidate)
        counter += 1
        if counter > 64 * limit:
            # Degenerate tiny volumes: fall back to scanning every index.
            for idx in range(volume_blocks):
                if idx not in seen:
                    seen.add(idx)
                    sequence.append(idx)
                    if len(sequence) >= min(limit, volume_blocks):
                        break
            break
    return sequence


@dataclass(frozen=True)
class FileAccessKey:
    """Access key for one hidden (or dummy) file.

    Attributes
    ----------
    secret:
        The user-held secret from which the header location is derived.
    header_key:
        Key encrypting the file header block.
    content_key:
        Key encrypting the file's data blocks.  ``None`` for dummy files
        (the paper: "the content key is not utilized because the file
        contains only random bytes").
    is_dummy:
        Marks FAKs handed out for dummy files.
    """

    secret: bytes = field(repr=False)
    header_key: bytes = field(repr=False)
    content_key: bytes | None = field(default=None, repr=False)
    is_dummy: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.secret, bytes) or not self.secret:
            raise InvalidKeyError("FAK secret must be non-empty bytes")
        if not isinstance(self.header_key, bytes) or len(self.header_key) != KEY_SIZE:
            raise InvalidKeyError(f"header_key must be {KEY_SIZE} bytes")
        if self.content_key is not None and (
            not isinstance(self.content_key, bytes) or len(self.content_key) != KEY_SIZE
        ):
            raise InvalidKeyError(f"content_key must be {KEY_SIZE} bytes or None")

    @classmethod
    def generate(cls, prng, is_dummy: bool = False) -> "FileAccessKey":
        """Generate a fresh FAK from the supplied PRNG."""
        return cls(
            secret=prng.random_bytes(KEY_SIZE),
            header_key=prng.random_bytes(KEY_SIZE),
            content_key=None if is_dummy else prng.random_bytes(KEY_SIZE),
            is_dummy=is_dummy,
        )

    def header_location(self, path: str, volume_blocks: int) -> int:
        """Primary header block index for this key and path."""
        return derive_header_location(self.secret, path, volume_blocks)

    def header_probe_sequence(self, path: str, volume_blocks: int, limit: int) -> list[int]:
        """Full probe sequence for header placement/lookup."""
        return probe_sequence(self.secret, path, volume_blocks, limit)

    def as_disclosed_dummy(self) -> "FileAccessKey":
        """Return the plausible-deniability view of this FAK.

        The paper (Section 4.2.1): the owner "can even reveal the header
        key for a hidden file but give a wrong content key, and claim
        that the file is a dummy."  This helper models that disclosure:
        the secret and header key are genuine, the content key is absent
        and the file is labelled a dummy.
        """
        return FileAccessKey(
            secret=self.secret,
            header_key=self.header_key,
            content_key=None,
            is_dummy=True,
        )

    def fingerprint(self) -> str:
        """Short stable identifier safe to log (does not reveal the keys)."""
        digest = hashlib.sha256(self.secret + self.header_key).hexdigest()
        return digest[:12]

    def to_dict(self) -> dict:
        """Plain-dict form (hex-encoded keys) for key-ring serialisation."""
        return {
            "secret": self.secret.hex(),
            "header_key": self.header_key.hex(),
            "content_key": self.content_key.hex() if self.content_key is not None else None,
            "is_dummy": self.is_dummy,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FileAccessKey":
        """Rebuild a FAK from :meth:`to_dict` output."""
        content_key = payload.get("content_key")
        return cls(
            secret=bytes.fromhex(payload["secret"]),
            header_key=bytes.fromhex(payload["header_key"]),
            content_key=bytes.fromhex(content_key) if content_key is not None else None,
            is_dummy=bool(payload.get("is_dummy", False)),
        )


@dataclass
class KeyRing:
    """A user's collection of FAKs, keyed by file path.

    The volatile-agent construction (Section 4.2) relies on each user
    holding the FAKs of both his hidden files and his dummy files, and
    disclosing them to the agent only at login.
    """

    owner: str
    hidden: dict[str, FileAccessKey] = field(default_factory=dict)
    dummy: dict[str, FileAccessKey] = field(default_factory=dict)

    def add_hidden(self, path: str, fak: FileAccessKey) -> None:
        """Register the FAK of a hidden file."""
        if fak.is_dummy:
            raise InvalidKeyError("hidden file FAK must not be marked as dummy")
        self.hidden[path] = fak

    def add_dummy(self, path: str, fak: FileAccessKey) -> None:
        """Register the FAK of a dummy file."""
        self.dummy[path] = fak

    def remove(self, path: str) -> FileAccessKey | None:
        """Drop (and return) the FAK registered at ``path``, if any.

        Without the FAK the file at that path can never be located
        again — this is the key-side half of deleting a file.
        """
        fak = self.hidden.pop(path, None)
        if fak is None:
            fak = self.dummy.pop(path, None)
        return fak

    def all_keys(self) -> dict[str, FileAccessKey]:
        """All FAKs (hidden and dummy) keyed by path."""
        merged = dict(self.dummy)
        merged.update(self.hidden)
        return merged

    def deniable_view(self) -> dict[str, FileAccessKey]:
        """What the user could plausibly disclose under coercion.

        Dummy FAKs are revealed as-is; hidden FAKs are shown in their
        "claimed dummy" form with the content key withheld.
        """
        view = dict(self.dummy)
        for path, fak in self.hidden.items():
            view[path] = fak.as_disclosed_dummy()
        return view

    # -- durable credentials ----------------------------------------------------

    def to_json(self) -> str:
        """Serialise the ring for safekeeping across service restarts.

        The JSON contains every secret in the ring — it is the
        credential that recovers the hidden files from a reopened
        volume, so it must be stored *off* the volume (a hardware token,
        an encrypted vault); anything written to the volume file itself
        would break the deniability story.
        """
        return json.dumps(
            {
                "owner": self.owner,
                "hidden": {path: fak.to_dict() for path, fak in self.hidden.items()},
                "dummy": {path: fak.to_dict() for path, fak in self.dummy.items()},
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "KeyRing":
        """Rebuild a ring serialised with :meth:`to_json`."""
        decoded = json.loads(payload)
        ring = cls(owner=decoded["owner"])
        for path, fak in decoded.get("hidden", {}).items():
            ring.hidden[path] = FileAccessKey.from_dict(fak)
        for path, fak in decoded.get("dummy", {}).items():
            ring.dummy[path] = FileAccessKey.from_dict(fak)
        return ring
