"""AES-CBC encryption of block data fields.

Section 4.1.1 of the paper: "its data field is encrypted by the agent
using a CBC (Cipher Block Chaining) block cipher with the IV as seed.
Whenever the agent re-encrypts a block, it resets the IV so that the
content of the whole encrypted block changes."

``CbcCipher`` implements exactly that behaviour on top of the
pure-Python :class:`repro.crypto.aes.AES` transform.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.crypto.cipher import FieldCipher
from repro.crypto.util import (
    AES_BLOCK_SIZE,
    pkcs7_pad,
    pkcs7_unpad,
    split_blocks,
    xor_bytes,
)
from repro.errors import InvalidKeyError


class CbcCipher(FieldCipher):
    """AES in CBC mode with an externally supplied IV.

    Parameters
    ----------
    key:
        AES key (16, 24 or 32 bytes).
    pad:
        When True (default) plaintexts of arbitrary length are accepted
        and PKCS#7-padded; when False, plaintext length must already be
        a multiple of 16 and the ciphertext has the same length.
    """

    def __init__(self, key: bytes, pad: bool = True):
        self._aes = AES(key)
        self._pad = pad

    @staticmethod
    def _normalise_iv(iv: bytes) -> bytes:
        """Stretch or truncate the IV to the AES block size deterministically."""
        if not isinstance(iv, (bytes, bytearray)) or len(iv) == 0:
            raise InvalidKeyError("IV must be non-empty bytes")
        iv = bytes(iv)
        if len(iv) == AES_BLOCK_SIZE:
            return iv
        if len(iv) > AES_BLOCK_SIZE:
            return iv[:AES_BLOCK_SIZE]
        repeats = (AES_BLOCK_SIZE + len(iv) - 1) // len(iv)
        return (iv * repeats)[:AES_BLOCK_SIZE]

    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        """CBC-encrypt ``plaintext`` seeded by ``iv``."""
        chain = self._normalise_iv(iv)
        data = pkcs7_pad(plaintext) if self._pad else plaintext
        out = []
        for block in split_blocks(data):
            chain = self._aes.encrypt_block(xor_bytes(block, chain))
            out.append(chain)
        return b"".join(out)

    def decrypt(self, iv: bytes, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt` for the same IV."""
        chain = self._normalise_iv(iv)
        out = []
        for block in split_blocks(ciphertext):
            out.append(xor_bytes(self._aes.decrypt_block(block), chain))
            chain = block
        plain = b"".join(out)
        return pkcs7_unpad(plain) if self._pad else plain
