"""Cryptographic substrate for the steganographic file system.

The paper (Section 6.1) uses AES as the block cipher and a SHA-256 based
pseudo-random number generator.  This subpackage provides both, plus the
CBC mode used for block encryption (Section 4.1.1), a fast SHA-256
stream cipher used by the large-scale benchmarks, and the file access
key (FAK) structures of Section 4.2.1.
"""

from repro.crypto.aes import AES
from repro.crypto.cbc import CbcCipher
from repro.crypto.cipher import FastFieldCipher, FieldCipher
from repro.crypto.keys import (
    FileAccessKey,
    KeyRing,
    derive_header_location,
    probe_sequence,
)
from repro.crypto.prng import Sha256Prng, fresh_iv

__all__ = [
    "AES",
    "CbcCipher",
    "FieldCipher",
    "FastFieldCipher",
    "Sha256Prng",
    "fresh_iv",
    "FileAccessKey",
    "KeyRing",
    "derive_header_location",
    "probe_sequence",
]
