"""SHA-256 based pseudo-random number generator.

Section 6.1 of the paper: "the pseudo-random number generator is
constructed from SHA256".  ``Sha256Prng`` is a deterministic counter-mode
generator seeded explicitly, so that every stochastic decision in the
library (dummy-block selection, block relocation, shuffling, workload
generation) is reproducible.

The interface intentionally mirrors the small subset of
:class:`random.Random` the library needs: ``random_bytes``, ``randint``,
``randrange``, ``choice``, ``shuffle``, ``sample`` and ``random``.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, MutableSequence, Sequence, TypeVar

T = TypeVar("T")

_DIGEST_SIZE = 32


class Sha256Prng:
    """Deterministic pseudo-random generator built from SHA-256 in counter mode.

    Parameters
    ----------
    seed:
        Bytes, str or int.  Two generators built from equal seeds produce
        identical streams.
    """

    def __init__(self, seed: bytes | str | int = 0):
        self._seed = self._normalise_seed(seed)
        self._counter = 0
        self._buffer = bytearray()

    @staticmethod
    def _normalise_seed(seed: bytes | str | int) -> bytes:
        if isinstance(seed, bytes):
            return seed
        if isinstance(seed, bytearray):
            return bytes(seed)
        if isinstance(seed, str):
            return seed.encode("utf-8")
        if isinstance(seed, int):
            length = max(1, (seed.bit_length() + 7) // 8)
            return seed.to_bytes(length, "big", signed=False)
        raise TypeError(f"unsupported seed type: {type(seed).__name__}")

    def spawn(self, label: str | int) -> "Sha256Prng":
        """Derive an independent child generator identified by ``label``.

        Children with distinct labels produce independent streams; the
        same (seed, label) always yields the same child.  This is how the
        library gives each subsystem (allocator, agent, workload, ...) its
        own reproducible randomness.
        """
        label_bytes = self._normalise_seed(label if isinstance(label, int) else str(label))
        return Sha256Prng(hashlib.sha256(self._seed + b"/spawn/" + label_bytes).digest())

    # -- raw stream ---------------------------------------------------------

    def random_bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        if n < 0:
            raise ValueError("n must be non-negative")
        while len(self._buffer) < n:
            block = hashlib.sha256(
                self._seed + b"/ctr/" + self._counter.to_bytes(8, "big")
            ).digest()
            self._buffer.extend(block)
            self._counter += 1
        out = bytes(self._buffer[:n])
        del self._buffer[:n]
        return out

    def _random_below(self, upper: int) -> int:
        """Uniform integer in [0, upper) via rejection sampling."""
        if upper <= 0:
            raise ValueError("upper must be positive")
        nbytes = max(1, (upper.bit_length() + 7) // 8)
        limit = (1 << (8 * nbytes)) - ((1 << (8 * nbytes)) % upper)
        while True:
            candidate = int.from_bytes(self.random_bytes(nbytes), "big")
            if candidate < limit:
                return candidate % upper

    # -- random.Random-like helpers ------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return int.from_bytes(self.random_bytes(7), "big") / (1 << 56)

    def randint(self, a: int, b: int) -> int:
        """Uniform integer in the closed interval [a, b]."""
        if b < a:
            raise ValueError("empty range for randint")
        return a + self._random_below(b - a + 1)

    def randrange(self, start: int, stop: int | None = None) -> int:
        """Uniform integer in [start, stop) (or [0, start) with one argument)."""
        if stop is None:
            start, stop = 0, start
        if stop <= start:
            raise ValueError("empty range for randrange")
        return start + self._random_below(stop - start)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[self._random_below(len(seq))]

    def shuffle(self, seq: MutableSequence[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self._random_below(i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def sample(self, population: Sequence[T], k: int) -> list[T]:
        """Return ``k`` distinct elements chosen without replacement."""
        n = len(population)
        if not 0 <= k <= n:
            raise ValueError("sample size out of range")
        # Partial Fisher-Yates over a copy of the indices.
        indices = list(range(n))
        for i in range(k):
            j = i + self._random_below(n - i)
            indices[i], indices[j] = indices[j], indices[i]
        return [population[indices[i]] for i in range(k)]

    def permutation(self, n: int) -> list[int]:
        """Return a uniformly random permutation of range(n)."""
        perm = list(range(n))
        self.shuffle(perm)
        return perm

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (mean 1/rate)."""
        import math

        if rate <= 0:
            raise ValueError("rate must be positive")
        # random() returns u in [0, 1), so 1 - u is in (0, 1] and the
        # inverse-CDF transform is exact; log1p keeps precision near 0.
        return -math.log1p(-self.random()) / rate

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Normal variate via the Box-Muller transform."""
        import math

        u1 = max(self.random(), 1e-12)
        u2 = self.random()
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return mu + sigma * z


def fresh_iv(prng: Sha256Prng, size: int = 16) -> bytes:
    """Convenience helper: draw a fresh random IV of ``size`` bytes."""
    return prng.random_bytes(size)


def iter_random_indices(prng: Sha256Prng, upper: int) -> Iterable[int]:
    """Infinite stream of uniform indices in [0, upper)."""
    while True:
        yield prng.randrange(upper)
