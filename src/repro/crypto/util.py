"""Small helpers shared across the crypto substrate."""

from __future__ import annotations

from repro.errors import InvalidBlockSizeError, PaddingError

AES_BLOCK_SIZE = 16


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Return the byte-wise XOR of two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"xor_bytes operands differ in length: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b, strict=True))


def pkcs7_pad(data: bytes, block_size: int = AES_BLOCK_SIZE) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` using PKCS#7."""
    if not 1 <= block_size <= 255:
        raise ValueError("block_size must be in [1, 255]")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = AES_BLOCK_SIZE) -> bytes:
    """Remove PKCS#7 padding, validating it."""
    if not data or len(data) % block_size != 0:
        raise InvalidBlockSizeError(
            f"padded data length {len(data)} is not a positive multiple of {block_size}"
        )
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise PaddingError(f"invalid padding length byte {pad_len}")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]


def split_blocks(data: bytes, block_size: int = AES_BLOCK_SIZE) -> list[bytes]:
    """Split ``data`` into consecutive ``block_size`` chunks."""
    if len(data) % block_size != 0:
        raise InvalidBlockSizeError(
            f"data length {len(data)} is not a multiple of {block_size}"
        )
    return [data[i : i + block_size] for i in range(0, len(data), block_size)]


def constant_time_equals(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without short-circuiting on the first mismatch."""
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b, strict=True):
        result |= x ^ y
    return result == 0
