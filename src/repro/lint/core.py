"""The linter's chassis: findings, pragmas, modules, rules, and the walker.

``repro.lint`` statically enforces the contracts the dynamic test suite
can only sample: plan purity (PR 6), entropy discipline (PRs 1-7),
closed-state guards (PR 7), and concurrency tripwires (PR 5).  Rules are
small :class:`Rule` subclasses registered with :func:`register`; each one
walks a parsed :class:`SourceModule` and yields :class:`Finding` rows.

Suppression is explicit and justified.  A trailing pragma silences
findings on its own line; a pragma standing alone on a line silences the
line directly below it::

    # repro-lint: ignore[ENT001] -- seeded, deterministic formatting fill
    rng = np.random.default_rng(seed)

The ``-- <justification>`` clause is mandatory: a pragma without one is
itself reported (:data:`PRAGMA_CODE`), so every suppression in the tree
carries a one-line argument a reviewer can audit.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Reported for a ``repro-lint`` pragma that is malformed or lacks the
#: mandatory ``-- <justification>`` clause.  Not itself suppressible.
PRAGMA_CODE = "LNT001"

#: Reported for a file the linter cannot parse.
SYNTAX_CODE = "LNT002"

_CODE = r"[A-Z]{3}\d{3}"
_PRAGMA_HEAD = re.compile(r"#\s*repro-lint:")
_PRAGMA_FULL = re.compile(
    r"#\s*repro-lint:\s*ignore\[(" + _CODE + r"(?:\s*,\s*" + _CODE + r")*)\]\s*--\s*(\S.*)$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str


class Rule:
    """Base class for project rules.

    Subclasses set :attr:`code` and :attr:`summary` and implement
    :meth:`check`.  Decorate with :func:`register` to add the rule to the
    default set run by the CLI.
    """

    code: str = ""
    summary: str = ""
    #: The invariant this rule enforces, stated as a sentence a reviewer
    #: could quote in a design doc.  Rendered by ``--explain CODE``.
    contract: str = ""
    #: Why the repo holds that invariant (which paper property or PR
    #: depends on it).
    rationale: str = ""
    #: The dynamic test files that *sample* the same invariant; the rule
    #: proves it for every path the tests cannot reach.
    dynamic_suite: str = ""

    def check(self, module: "SourceModule") -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: "SourceModule", node: ast.AST, message: str) -> Finding:
        return Finding(module.path, node.lineno, node.col_offset, self.code, message)


class ProjectRule(Rule):
    """A rule that analyses the whole parsed tree at once.

    Interprocedural rules (cross-module plan purity, taint, lock order)
    need every module plus the call graph stitched over them, so they
    implement :meth:`check_project` instead of :meth:`check`; the walker
    invokes it once per lint run rather than once per file.
    """

    def check(self, module: "SourceModule") -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError(f"{self.code} is a project rule; use check_project")

    def check_project(self, project: "Project") -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule instance to the default registry."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"{cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def registered_rules() -> dict[str, Rule]:
    """The default rule set, importing the rule modules on first use."""
    import repro.lint.rules  # noqa: F401  -- importing populates the registry

    return dict(_REGISTRY)


@dataclass
class SourceModule:
    """A parsed source file plus the lookups every rule needs.

    ``aliases`` maps local names bound by ``import x.y as z`` statements
    to the dotted module they denote; ``from_aliases`` does the same for
    ``from x import y as z``.  :meth:`resolve` walks an attribute chain
    back through both, so ``np.random.default_rng`` resolves to
    ``numpy.random.default_rng`` whatever the import spelling was.
    """

    path: str
    text: str
    tree: ast.Module
    aliases: dict[str, str] = field(default_factory=dict)
    from_aliases: dict[str, str] = field(default_factory=dict)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    pragma_findings: list[Finding] = field(default_factory=list)
    #: Continuation line → first line of the enclosing statement, for
    #: every statement that spans more than one physical line.
    anchors: dict[int, int] = field(default_factory=dict)

    @classmethod
    def parse(cls, text: str, path: str) -> "SourceModule":
        tree = ast.parse(text, filename=path)
        module = cls(path=Path(path).as_posix(), text=text, tree=tree)
        module._collect_imports()
        module._collect_pragmas()
        module._collect_anchors()
        return module

    def _collect_anchors(self) -> None:
        """Map every continuation line of a statement to its first line.

        A compound statement anchors only its *header* (the lines before
        its first body statement): the body statements anchor
        themselves.  The map drives two behaviours: findings reported on
        a continuation line are re-anchored to the statement's first
        line, and a pragma on the first line therefore covers the whole
        statement.
        """
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            body = getattr(node, "body", None)
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                span_end = body[0].lineno - 1
            else:
                span_end = node.end_lineno or node.lineno
            for line in range(node.lineno + 1, span_end + 1):
                self.anchors.setdefault(line, node.lineno)

    def anchor(self, line: int) -> int:
        """First line of the statement containing ``line``."""
        return self.anchors.get(line, line)

    def anchored(self, finding: Finding) -> Finding:
        """The finding re-anchored to its statement's first line."""
        line = self.anchor(finding.line)
        if line == finding.line:
            return finding
        return Finding(finding.path, line, finding.col, finding.code, finding.message)

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``; attribute access
                        # resolves the rest of the chain naturally.
                        root = alias.name.split(".", 1)[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname if alias.asname is not None else alias.name
                    self.from_aliases[local] = f"{node.module}.{alias.name}"

    def _collect_pragmas(self) -> None:
        reader = io.StringIO(self.text).readline
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            comment = token.string.strip()
            if not _PRAGMA_HEAD.match(comment):
                continue
            line = token.start[0]
            match = _PRAGMA_FULL.match(comment)
            if match is None:
                self.pragma_findings.append(
                    Finding(
                        self.path,
                        line,
                        token.start[1],
                        PRAGMA_CODE,
                        "malformed repro-lint pragma: expected "
                        "'# repro-lint: ignore[CODE] -- <justification>' "
                        "(the justification is mandatory)",
                    )
                )
                continue
            codes = {code.strip() for code in match.group(1).split(",")}
            self.suppressions.setdefault(line, set()).update(codes)
            if token.line[: token.start[1]].strip() == "":
                # A standalone pragma covers the line below it.
                self.suppressions.setdefault(line + 1, set()).update(codes)

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name a ``Name``/``Attribute`` chain denotes, or ``None``.

        Only chains rooted at an imported module or from-imported name
        resolve; anything rooted at a local object (``self.prng.random``)
        returns ``None``, which is what keeps attribute rules from
        flagging look-alike methods.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.aliases:
            parts.append(self.aliases[base])
        elif base in self.from_aliases:
            parts.append(self.from_aliases[base])
        else:
            return None
        return ".".join(reversed(parts))

    def suppressed(self, finding: Finding) -> bool:
        if finding.code == PRAGMA_CODE:
            return False
        for line in {finding.line, self.anchor(finding.line)}:
            if finding.code in self.suppressions.get(line, ()):
                return True
        return False


@dataclass
class Project:
    """Every parsed module of one lint run, plus the shared call graph.

    Project rules all need the same :class:`~repro.lint.graph.CallGraph`;
    building it once here keeps a whole-tree lint run linear in tree
    size instead of linear per rule.
    """

    modules: list[SourceModule]

    def __post_init__(self) -> None:
        self._by_path: dict[str, SourceModule] = {m.path: m for m in self.modules}
        self._graph: object | None = None

    @property
    def graph(self):  # noqa: ANN201  -- lazy import breaks the core<->graph cycle
        from repro.lint.graph import CallGraph

        if self._graph is None:
            self._graph = CallGraph(self.modules)
        return self._graph

    def module_for(self, path: str) -> SourceModule | None:
        return self._by_path.get(path)

    def suppressed(self, finding: Finding) -> bool:
        module = self._by_path.get(finding.path)
        return module is not None and module.suppressed(finding)


def lint_sources(
    sources: Iterable[tuple[str, str]], rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint ``(path, text)`` pairs as one project; the shared entry point.

    Per-module rules run on each file; :class:`ProjectRule`\\ s run once
    over the whole set, so cross-module chains only exist when the files
    are linted together.  Suppression pragmas are applied per containing
    module whichever rule produced the finding.
    """
    chosen = list(rules) if rules is not None else list(registered_rules().values())
    findings: list[Finding] = []
    modules: list[SourceModule] = []
    for path, text in sources:
        try:
            module = SourceModule.parse(text, path)
        except SyntaxError as error:
            line = error.lineno if error.lineno is not None else 1
            findings.append(Finding(path, line, 0, SYNTAX_CODE, f"cannot parse: {error.msg}"))
            continue
        modules.append(module)
        findings.extend(module.pragma_findings)
    project = Project(modules)
    for rule in chosen:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))
        else:
            for module in modules:
                findings.extend(rule.check(module))
    anchored: list[Finding] = []
    for finding in findings:
        module = project.module_for(finding.path)
        if module is not None and finding.code != PRAGMA_CODE:
            finding = module.anchored(finding)
        anchored.append(finding)
    return sorted(finding for finding in anchored if not project.suppressed(finding))


def lint_source(
    text: str, path: str = "<fixture>", rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint one source string; the entry point the fixture tests use."""
    return lint_sources([(path, text)], rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(paths: Iterable[Path], rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` as one project."""
    return lint_sources(
        ((str(file_path), file_path.read_text()) for file_path in iter_python_files(paths)),
        rules,
    )
