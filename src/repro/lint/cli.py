"""Command line front end: ``python -m repro.lint [paths] [--format=...]``.

Exit status 0 when the tree is clean, 1 when there are findings, 2 on
usage errors.  ``--format=github`` emits workflow commands that render
as inline annotations on the PR diff; ``--format=json`` is for tooling.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Sequence

from repro.lint.core import Finding, lint_paths, registered_rules


def _human(findings: list[Finding], rule_count: int) -> str:
    lines = [
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.code} {finding.message}"
        for finding in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun} ({rule_count} rules)")
    return "\n".join(lines)


def _json(findings: list[Finding]) -> str:
    return json.dumps(
        [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "message": finding.message,
            }
            for finding in findings
        ],
        indent=2,
    )


def _github(findings: list[Finding]) -> str:
    return "\n".join(
        f"::error file={finding.path},line={finding.line},"
        f"col={finding.col + 1},title={finding.code}::{finding.message}"
        for finding in findings
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically enforce the repo's invariant contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "github"),
        default="human",
        help="output format (default: human)",
    )
    args = parser.parse_args(argv)

    rules = registered_rules()
    findings = lint_paths([Path(path) for path in args.paths])
    if args.format == "json":
        print(_json(findings))
    elif args.format == "github":
        output = _github(findings)
        if output:
            print(output)
    else:
        print(_human(findings, len(rules)))
    return 1 if findings else 0
