"""Command line front end: ``python -m repro.lint [paths] [--format=...]``.

Exit status 0 when the tree is clean, 1 when there are findings, 2 on
usage errors.  ``--format=github`` emits workflow commands that render
as inline annotations on the PR diff; ``--format=json`` is for tooling.
``--explain CODE`` prints the contract a rule enforces, why the repo
holds it, and which dynamic test files sample the same invariant.
"""

from __future__ import annotations

import argparse
import json
import re
from pathlib import Path
from typing import Any, Sequence

from repro.lint.core import PRAGMA_CODE, SYNTAX_CODE, Finding, lint_paths, registered_rules

#: Explanations for the framework's own codes, which are not rules.
_FRAMEWORK_EXPLANATIONS = {
    PRAGMA_CODE: (
        "malformed or unjustified repro-lint pragma",
        "Every suppression pragma carries a mandatory '-- <justification>' "
        "clause; a pragma without one is itself a finding.",
        "Silencing a rule is a reviewed design decision, not an escape "
        "hatch — the justification is the one-line argument the reviewer "
        "audits.",
        "tests/test_lint.py (pragma fixtures)",
    ),
    SYNTAX_CODE: (
        "file the linter cannot parse",
        "Every file under lint must parse with the running interpreter's "
        "grammar; a syntax error is reported as a finding, never raised.",
        "A file that cannot be parsed cannot be analysed, so it would "
        "otherwise silently escape every other rule.",
        "tests/test_lint.py (syntax-error fixture)",
    ),
}


def _human(findings: list[Finding], rule_count: int) -> str:
    lines = [
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.code} {finding.message}"
        for finding in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun} ({rule_count} rules)")
    return "\n".join(lines)


def _json(findings: list[Finding]) -> str:
    return json.dumps(
        [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "message": finding.message,
            }
            for finding in findings
        ],
        indent=2,
    )


def _github(findings: list[Finding]) -> str:
    return "\n".join(
        f"::error file={finding.path},line={finding.line},"
        f"col={finding.col + 1},title={finding.code}::{finding.message}"
        for finding in findings
    )


#: Lines named by an embedded witness chain ("witness path: L9 -> L12").
_WITNESS = re.compile(r"witness path: (L\d+(?: -> L\d+)*)")


def _witness_lines(message: str) -> list[int]:
    match = _WITNESS.search(message)
    if match is None:
        return []
    return [int(label[1:]) for label in match.group(1).split(" -> ")]


def _location(
    path: str, line: int, col: int = 0, text: str | None = None
) -> dict[str, Any]:
    location: dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": line, "startColumn": col + 1},
        }
    }
    if text is not None:
        location["message"] = {"text": text}
    return location


def _sarif(findings: list[Finding]) -> str:
    """SARIF 2.1.0: rule metadata plus witness chains as relatedLocations."""
    rules = registered_rules()
    rule_ids = sorted({*rules, *_FRAMEWORK_EXPLANATIONS})
    driver_rules: list[dict[str, Any]] = []
    for code in rule_ids:
        if code in _FRAMEWORK_EXPLANATIONS:
            summary, contract, rationale, _suite = _FRAMEWORK_EXPLANATIONS[code]
        else:
            rule = rules[code]
            summary, contract, rationale = rule.summary, rule.contract, rule.rationale
        driver_rules.append(
            {
                "id": code,
                "shortDescription": {"text": summary},
                "fullDescription": {"text": contract},
                "help": {"text": rationale},
            }
        )
    index = {code: position for position, code in enumerate(rule_ids)}
    results: list[dict[str, Any]] = []
    for finding in findings:
        result: dict[str, Any] = {
            "ruleId": finding.code,
            "ruleIndex": index.get(finding.code, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [_location(finding.path, finding.line, finding.col)],
        }
        witness = _witness_lines(finding.message)
        if witness:
            result["relatedLocations"] = [
                _location(finding.path, line, text=f"witness step {step + 1}")
                for step, line in enumerate(witness)
            ]
        results.append(result)
    document: dict[str, Any] = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def explain(code: str) -> str | None:
    """Render the contract/rationale/test-suite card for one code."""
    if code in _FRAMEWORK_EXPLANATIONS:
        summary, contract, rationale, suite = _FRAMEWORK_EXPLANATIONS[code]
    else:
        rule = registered_rules().get(code)
        if rule is None:
            return None
        summary, contract = rule.summary, rule.contract
        rationale, suite = rule.rationale, rule.dynamic_suite
    return "\n".join(
        [
            f"{code}: {summary}",
            "",
            f"  contract:   {contract}",
            f"  rationale:  {rationale}",
            f"  dynamic:    {suite}",
        ]
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically enforce the repo's invariant contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "github", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print the contract, rationale, and dynamic test suite for "
        "one rule code (e.g. SEC001) instead of linting",
    )
    args = parser.parse_args(argv)

    if args.explain is not None:
        card = explain(args.explain.upper())
        if card is None:
            known = ", ".join(sorted([*registered_rules(), *_FRAMEWORK_EXPLANATIONS]))
            print(f"unknown rule code {args.explain!r}; known codes: {known}")
            return 2
        print(card)
        return 0

    rules = registered_rules()
    findings = lint_paths([Path(path) for path in args.paths])
    if args.format == "json":
        print(_json(findings))
    elif args.format == "github":
        output = _github(findings)
        if output:
            print(output)
    elif args.format == "sarif":
        print(_sarif(findings))
    else:
        print(_human(findings, len(rules)))
    return 1 if findings else 0
