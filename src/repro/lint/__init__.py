"""Repo-specific static analysis: ``python -m repro.lint src``.

The dynamic suites sample the contracts; this package proves them for
every code path on every PR.  See :mod:`repro.lint.core` for the
framework and :mod:`repro.lint.rules` for the rules:

========  ============================================================
ENT001    entropy/wall-clock use outside the ``Sha256Prng`` seam
PLN001    ``plan_*`` functions (or their callees) performing device I/O
CLS001    public lifecycle methods without a closed-state guard
CON001    mutating agent primitives missing the ``_exclusive`` tripwire
EXC001    broad ``except`` clauses that could swallow a fault injection
TRC001    per-event ``trace.record()`` calls inside loops
LNT001    suppression pragma without the mandatory justification
========  ============================================================
"""

from repro.lint.core import (
    Finding,
    Rule,
    SourceModule,
    lint_paths,
    lint_source,
    register,
    registered_rules,
)

__all__ = [
    "Finding",
    "Rule",
    "SourceModule",
    "lint_paths",
    "lint_source",
    "register",
    "registered_rules",
]
