"""Repo-specific static analysis: ``python -m repro.lint src``.

The dynamic suites sample the contracts; this package proves them for
every code path on every PR.  Per-module rules walk one file at a
time; the whole-program rules build a repo-wide call graph
(:mod:`repro.lint.graph`) and run interprocedural dataflow over it
(:mod:`repro.lint.dataflow`), so a secret that leaks three modules
away from where it was read — or a deadlock spread across two classes
— is still one finding with the full chain in its message.  See
:mod:`repro.lint.core` for the framework and :mod:`repro.lint.rules`
for the rules; ``python -m repro.lint --explain CODE`` prints each
rule's contract, rationale, and dynamic counterpart:

========  ============================================================
ENT001    entropy/wall-clock use outside the ``Sha256Prng`` seam
PLN001    ``plan_*`` functions reaching device I/O through *any*
          cross-module call chain (whole-program)
CLS001    public lifecycle methods without a closed-state guard
CON001    mutating agent primitives missing the ``_exclusive`` tripwire
EXC001    broad ``except`` clauses that could swallow a fault injection
TRC001    per-event ``trace.record()`` calls inside loops
SEC001    unsanitized secret flows to device writes, trace records, or
          exception messages (interprocedural taint)
SEC002    secret material reaching formatting, logging, ``__repr__``,
          or dataclass auto-repr
LCK001    lock-order cycles / non-reentrant re-acquisition (deadlock)
LCK002    blocking while holding a foreign lock
LCK003    unlocked writes to attributes shared across thread roles
LNT001    suppression pragma without the mandatory justification
LNT002    file the linter cannot parse
========  ============================================================
"""

from repro.lint.core import (
    Finding,
    Rule,
    SourceModule,
    lint_paths,
    lint_source,
    register,
    registered_rules,
)

__all__ = [
    "Finding",
    "Rule",
    "SourceModule",
    "lint_paths",
    "lint_source",
    "register",
    "registered_rules",
]
