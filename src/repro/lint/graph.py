"""Whole-program call graph over every parsed :class:`SourceModule`.

PR 8's rules were *intra-module*: each one walked a single file's AST.
The interprocedural analyses (cross-module plan purity, secret taint,
lock discipline) all need the same substrate — who may call whom across
the whole tree — so this module builds it once per lint run:

* every function, method and class is indexed under a dotted *qualname*
  (``repro.core.agent.StegAgent.update_range``) derived from its file
  path;
* call sites resolve through import aliases (``from repro.core.plan
  import fuse`` / ``import repro.core.plan as plan``), through
  ``self.``-method dispatch over a class-hierarchy map (MRO bases plus
  subclass overrides — virtual dispatch is may-call), and through a
  light receiver-type inference (``self.x`` assignments and parameter
  annotations, followed transitively along attribute chains);
* receivers typed as a :class:`typing.Protocol` resolve to every class
  that structurally conforms to the protocol;
* a last-resort *name-unique* fallback links ``obj.method()`` to the
  project methods of that name, except for generic names (``append``,
  ``get``, ``close`` …) where name matching would connect unrelated
  code;
* Tarjan's algorithm condenses the graph into strongly connected
  components, giving the fixpoint analyses a reverse-topological
  order and making reachability queries loop-safe.

The graph is a *may-call* over-approximation where receivers resolve
and an under-approximation where they do not (dynamic callables such as
``request.execute()`` produce no edge); each rule documents how it
lives with that.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:
    from repro.lint.cfg import ControlFlowGraph
    from repro.lint.core import SourceModule

#: Attribute names too generic for the name-based fallback: linking
#: ``items.append(...)`` to ``Session.append`` would wire unrelated code
#: together.  Typed receivers still resolve these precisely.
GENERIC_METHOD_NAMES = frozenset(
    {
        "acquire",
        "add",
        "all",
        "any",
        "append",
        "appendleft",
        "astype",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "digest",
        "encode",
        "endswith",
        "extend",
        "fill",
        "flush",
        "format",
        "get",
        "hex",
        "hexdigest",
        "index",
        "insert",
        "is_alive",
        "is_set",
        "item",
        "items",
        "join",
        "keys",
        "max",
        "mean",
        "min",
        "notify",
        "notify_all",
        "open",
        "pop",
        "popitem",
        "popleft",
        "put",
        "read",
        "readline",
        "release",
        "remove",
        "replace",
        "reshape",
        "reverse",
        "rotate",
        "seek",
        "set",
        "setdefault",
        "sort",
        "split",
        "start",
        "startswith",
        "strip",
        "sum",
        "tell",
        "tobytes",
        "tolist",
        "update",
        "values",
        "wait",
        "write",
    }
)


def module_name_for(path: str) -> str:
    """Dotted module name a file path denotes (``src/repro/a.py`` → ``repro.a``).

    Fixture trees mirror the real layout (``.../src/repro/...``), so the
    name is taken from the segment after the *last* ``src`` directory;
    without one it starts at the first ``repro`` segment, and failing
    that it is just the file stem.
    """
    parts = list(PurePosixPath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("src") + 1 :]
    elif "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<module>"


@dataclass
class CallSite:
    """One ``ast.Call`` inside a function, with its resolution."""

    call: ast.Call
    #: Final attribute / bare name of the callee expression.
    name: str
    #: Dotted receiver text for display (``self.volume`` → ``volume``),
    #: empty for bare-name calls.
    receiver: str
    #: True when the callee expression is an attribute access.
    is_attribute: bool
    #: Resolved targets: ``(function, bound)`` pairs; ``bound`` is True
    #: when the call binds the receiver to the first parameter.
    targets: list[tuple["FunctionNode", bool]] = field(default_factory=list)


@dataclass
class FunctionNode:
    """A function or method plus its outgoing call sites."""

    qualname: str
    display: str  # "Class.method" or "function" — what findings print
    module: "SourceModule"
    cls: "ClassInfo | None"
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    calls: list[CallSite] = field(default_factory=list)
    #: ``id(ast.Call)`` → call site, so AST-walking analyses can look up
    #: the resolution of the exact node they are visiting.
    call_index: dict[int, CallSite] = field(default_factory=dict)

    def callees(self) -> Iterator["FunctionNode"]:
        for site in self.calls:
            for target, _bound in site.targets:
                yield target


@dataclass
class ClassInfo:
    """One class: bases, methods, inferred attribute types."""

    qualname: str
    name: str
    module: "SourceModule"
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)
    methods: dict[str, FunctionNode] = field(default_factory=dict)
    #: Attribute name → class qualname, from ``self.x = Type(...)``,
    #: ``self.x = annotated_param`` and ``self.x: Type`` assignments.
    attr_types: dict[str, str] = field(default_factory=dict)
    is_protocol: bool = False


class CallGraph:
    """Project-wide may-call graph with SCC condensation and reachability."""

    def __init__(self, modules: Sequence["SourceModule"]):
        self.modules = list(modules)
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._classes_by_name: dict[str, list[ClassInfo]] = {}
        self._methods_by_name: dict[str, list[FunctionNode]] = {}
        self._module_names: dict[str, str] = {}
        self._mro_cache: dict[str, list[ClassInfo]] = {}
        self._subclasses: dict[str, list[ClassInfo]] = {}
        self._conformers_cache: dict[str, list[ClassInfo]] = {}
        self._collect()
        self._link_hierarchy()
        self._infer_attr_types()
        self._resolve_calls()
        self._sccs: list[list[str]] | None = None
        self._scc_of: dict[str, int] = {}
        self._cfg_cache: dict[str, "ControlFlowGraph"] = {}

    # -- construction ----------------------------------------------------------------

    def _collect(self) -> None:
        for module in self.modules:
            mod_name = module_name_for(module.path)
            self._module_names[module.path] = mod_name
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(module, node, None, mod_name)
                elif isinstance(node, ast.ClassDef):
                    info = ClassInfo(
                        qualname=f"{mod_name}.{node.name}",
                        name=node.name,
                        module=module,
                        node=node,
                    )
                    for base in node.bases:
                        resolved = module.resolve(base)
                        if resolved is None and isinstance(base, ast.Name):
                            resolved = f"{mod_name}.{base.id}"
                        if resolved is not None:
                            info.base_names.append(resolved)
                            if resolved.rsplit(".", 1)[-1] == "Protocol":
                                info.is_protocol = True
                    self.classes[info.qualname] = info
                    self._classes_by_name.setdefault(info.name, []).append(info)
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            self._add_function(module, item, info, mod_name)

    def _add_function(
        self,
        module: "SourceModule",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassInfo | None,
        mod_name: str,
    ) -> None:
        if cls is None:
            qualname = f"{mod_name}.{node.name}"
            display = node.name
        else:
            qualname = f"{cls.qualname}.{node.name}"
            display = f"{cls.name}.{node.name}"
        fn = FunctionNode(
            qualname=qualname, display=display, module=module, cls=cls, name=node.name, node=node
        )
        self.functions[qualname] = fn
        if cls is not None:
            cls.methods[node.name] = fn
            self._methods_by_name.setdefault(node.name, []).append(fn)

    def _link_hierarchy(self) -> None:
        for info in self.classes.values():
            for base_name in info.base_names:
                base = self._class_for_dotted(base_name)
                if base is not None:
                    self._subclasses.setdefault(base.qualname, []).append(info)

    def _class_for_dotted(self, dotted: str) -> ClassInfo | None:
        if dotted in self.classes:
            return self.classes[dotted]
        tail = dotted.rsplit(".", 1)[-1]
        candidates = self._classes_by_name.get(tail, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def mro(self, info: ClassInfo) -> list[ClassInfo]:
        """Linearised in-project ancestry (BFS; cycles tolerated)."""
        cached = self._mro_cache.get(info.qualname)
        if cached is not None:
            return cached
        order: list[ClassInfo] = []
        seen: set[str] = set()
        frontier = [info]
        while frontier:
            current = frontier.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            order.append(current)
            for base_name in current.base_names:
                base = self._class_for_dotted(base_name)
                if base is not None:
                    frontier.append(base)
        self._mro_cache[info.qualname] = order
        return order

    def subclasses(self, info: ClassInfo) -> list[ClassInfo]:
        """Transitive subclasses of a class."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        frontier = list(self._subclasses.get(info.qualname, []))
        while frontier:
            current = frontier.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            out.append(current)
            frontier.extend(self._subclasses.get(current.qualname, []))
        return out

    def conformers(self, protocol: ClassInfo) -> list[ClassInfo]:
        """Classes structurally implementing every method of a protocol."""
        cached = self._conformers_cache.get(protocol.qualname)
        if cached is not None:
            return cached
        wanted = {
            name
            for name, method in protocol.methods.items()
            if not name.startswith("__")
            and not any(
                isinstance(dec, ast.Name) and dec.id == "property"
                for dec in method.node.decorator_list
            )
        }
        out: list[ClassInfo] = []
        for info in self.classes.values():
            if info is protocol or info.is_protocol:
                continue
            provided: set[str] = set()
            for ancestor in self.mro(info):
                provided.update(ancestor.methods)
            if wanted and wanted <= provided:
                out.append(info)
        self._conformers_cache[protocol.qualname] = out
        return out

    def resolve_method(self, info: ClassInfo, name: str) -> list[FunctionNode]:
        """May-targets of ``instance.name()`` for an instance typed ``info``.

        MRO lookup gives the static binding; subclass overrides are
        added because the instance may be of any subtype (virtual
        dispatch); protocols resolve through their conformers.
        """
        targets: list[FunctionNode] = []
        seen: set[str] = set()

        def add(fn: FunctionNode | None) -> None:
            if fn is not None and fn.qualname not in seen:
                seen.add(fn.qualname)
                targets.append(fn)

        bases: list[ClassInfo] = [info]
        if info.is_protocol:
            bases.extend(self.conformers(info))
        for base in bases:
            for ancestor in self.mro(base):
                if name in ancestor.methods:
                    add(ancestor.methods[name])
                    break
            for sub in self.subclasses(base):
                add(sub.methods.get(name))
        return targets

    # -- attribute / local type inference ----------------------------------------------

    def _annotation_class(self, module: "SourceModule", annotation: ast.expr | None) -> str | None:
        """Class qualname an annotation denotes, unwrapping ``X | None``/Optional."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            left = self._annotation_class(module, annotation.left)
            return left if left is not None else self._annotation_class(module, annotation.right)
        if isinstance(annotation, ast.Subscript):
            return self._annotation_class(module, annotation.slice)
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                parsed = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
            return self._annotation_class(module, parsed)
        dotted = module.resolve(annotation)
        if dotted is None and isinstance(annotation, ast.Name):
            dotted = annotation.id
        if dotted is None and isinstance(annotation, ast.Attribute):
            dotted = annotation.attr
        if dotted is None:
            return None
        cls = self._class_for_dotted(dotted)
        return cls.qualname if cls is not None else None

    def _infer_attr_types(self) -> None:
        for info in self.classes.values():
            for method in info.methods.values():
                params = self._param_annotations(method)
                for stmt in ast.walk(method.node):
                    target: ast.expr | None = None
                    value: ast.expr | None = None
                    annotation: ast.expr | None = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        target, value, annotation = stmt.target, stmt.value, stmt.annotation
                    if (
                        not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"
                    ):
                        continue
                    attr = target.attr
                    inferred = self._annotation_class(info.module, annotation)
                    if inferred is None and isinstance(value, ast.Call):
                        dotted = info.module.resolve(value.func)
                        if dotted is None and isinstance(value.func, ast.Name):
                            dotted = value.func.id
                        if dotted is not None:
                            cls = self._class_for_dotted(dotted)
                            inferred = cls.qualname if cls is not None else None
                    if inferred is None and isinstance(value, ast.Name):
                        inferred = params.get(value.id)
                    if inferred is not None and attr not in info.attr_types:
                        info.attr_types[attr] = inferred

    def _param_annotations(self, fn: FunctionNode) -> dict[str, str]:
        params: dict[str, str] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            inferred = self._annotation_class(fn.module, arg.annotation)
            if inferred is not None:
                params[arg.arg] = inferred
        return params

    # -- call resolution ---------------------------------------------------------------

    def _receiver_class(
        self, fn: FunctionNode, expr: ast.expr, locals_: dict[str, str]
    ) -> ClassInfo | None:
        """Class of the object an expression evaluates to, where inferrable."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and fn.cls is not None:
                return fn.cls
            dotted = locals_.get(expr.id)
            return self.classes.get(dotted) if dotted is not None else None
        if isinstance(expr, ast.Attribute):
            base = self._receiver_class(fn, expr.value, locals_)
            if base is None:
                return None
            for ancestor in self.mro(base):
                dotted = ancestor.attr_types.get(expr.attr)
                if dotted is not None:
                    return self.classes.get(dotted)
            return None
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id == "super":
                # ``super().m()`` binds within the same hierarchy; using
                # the defining class keeps may-call precision (the exact
                # ancestor is an MRO detail the rules don't need).
                return fn.cls
            dotted = fn.module.resolve(expr.func)
            if dotted is None and isinstance(expr.func, ast.Name):
                dotted = expr.func.id
            if dotted is not None:
                cls = self._class_for_dotted(dotted)
                if cls is not None:
                    return cls
        return None

    def _local_types(self, fn: FunctionNode) -> dict[str, str]:
        locals_: dict[str, str] = dict(self._param_annotations(fn))
        for stmt in ast.walk(fn.node):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                name = stmt.targets[0].id
                if isinstance(stmt.value, ast.Call):
                    dotted = fn.module.resolve(stmt.value.func)
                    if dotted is None and isinstance(stmt.value.func, ast.Name):
                        dotted = stmt.value.func.id
                    if dotted is not None:
                        cls = self._class_for_dotted(dotted)
                        if cls is not None:
                            locals_.setdefault(name, cls.qualname)
                elif isinstance(stmt.value, ast.Attribute):
                    # ``agent = self._service.agent`` — follow the typed
                    # attribute chain (ast.walk is pre-order, so chains
                    # through earlier locals usually resolve too).
                    cls = self._receiver_class(fn, stmt.value, locals_)
                    if cls is not None:
                        locals_.setdefault(name, cls.qualname)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                inferred = self._annotation_class(fn.module, stmt.annotation)
                if inferred is not None:
                    locals_.setdefault(stmt.target.id, inferred)
        return locals_

    def _resolve_calls(self) -> None:
        for fn in self.functions.values():
            locals_ = self._local_types(fn)
            for call in ast.walk(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                site = self._resolve_one(fn, call, locals_)
                fn.calls.append(site)
                fn.call_index[id(call)] = site

    def _resolve_one(
        self, fn: FunctionNode, call: ast.Call, locals_: dict[str, str]
    ) -> CallSite:
        func = call.func
        if isinstance(func, ast.Name):
            site = CallSite(call=call, name=func.id, receiver="", is_attribute=False)
            dotted = fn.module.resolve(func)
            if dotted is None:
                mod_name = self._module_names[fn.module.path]
                dotted = f"{mod_name}.{func.id}"
            self._add_dotted_targets(site, dotted)
            return site
        if isinstance(func, ast.Attribute):
            site = CallSite(
                call=call,
                name=func.attr,
                receiver=_expr_text(func.value),
                is_attribute=True,
            )
            dotted = fn.module.resolve(func)
            if dotted is not None:
                # Module-qualified call (``plan.fuse()``) or classmethod
                # access through an imported class.
                self._add_dotted_targets(site, dotted)
                if site.targets:
                    return site
            receiver = self._receiver_class(fn, func.value, locals_)
            if receiver is not None:
                for target in self.resolve_method(receiver, func.attr):
                    site.targets.append((target, True))
                return site
            if func.attr not in GENERIC_METHOD_NAMES and not func.attr.startswith("__"):
                for target in self._methods_by_name.get(func.attr, []):
                    site.targets.append((target, True))
            return site
        return CallSite(call=call, name=_expr_text(func), receiver="", is_attribute=False)

    def _add_dotted_targets(self, site: CallSite, dotted: str) -> None:
        fn = self.functions.get(dotted)
        if fn is not None:
            site.targets.append((fn, False))
            return
        cls = self.classes.get(dotted) or self._class_for_dotted(dotted)
        if cls is not None:
            # Constructor call: the body that runs is __init__ (searched
            # through the MRO).
            for ancestor in self.mro(cls):
                init = ancestor.methods.get("__init__")
                if init is not None:
                    site.targets.append((init, False))
                    break
            return
        # ``module.func`` spelled through an ``import module`` alias.
        tail_fn = self.functions.get(dotted)
        if tail_fn is not None:
            site.targets.append((tail_fn, False))

    # -- control-flow graphs -----------------------------------------------------------

    def cfg_of(self, qualname: str) -> "ControlFlowGraph":
        """The (cached) control-flow graph of one function.

        Post-dominators and regions are lazily computed on the returned
        graph; caching here lets the typestate and obliviousness rules
        share one CFG (and its dominator solutions) per function.
        """
        cached = self._cfg_cache.get(qualname)
        if cached is None:
            from repro.lint.cfg import build_cfg

            cached = build_cfg(self.functions[qualname].node)
            self._cfg_cache[qualname] = cached
        return cached

    # -- SCC condensation and reachability --------------------------------------------

    def sccs(self) -> list[list[str]]:
        """Strongly connected components in reverse topological order.

        Callees come before callers, which is the evaluation order the
        fixpoint analyses want: by the time a caller is summarised, its
        (acyclic) callees already are.
        """
        if self._sccs is not None:
            return self._sccs
        index_counter = 0
        stack: list[str] = []
        on_stack: set[str] = set()
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        result: list[list[str]] = []

        for root in self.functions:
            if root in index:
                continue
            # Iterative Tarjan: (node, iterator over callees).
            work: list[tuple[str, Iterator[str]]] = [(root, self._callee_names(root))]
            index[root] = lowlink[root] = index_counter
            index_counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for callee in it:
                    if callee not in index:
                        index[callee] = lowlink[callee] = index_counter
                        index_counter += 1
                        stack.append(callee)
                        on_stack.add(callee)
                        work.append((callee, self._callee_names(callee)))
                        advanced = True
                        break
                    if callee in on_stack:
                        lowlink[node] = min(lowlink[node], index[callee])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.remove(member)
                        component.append(member)
                        if member == node:
                            break
                    result.append(component)
        self._sccs = result
        for position, component in enumerate(result):
            for member in component:
                self._scc_of[member] = position
        return result

    def _callee_names(self, qualname: str) -> Iterator[str]:
        fn = self.functions[qualname]
        for callee in fn.callees():
            yield callee.qualname

    def scc_of(self, qualname: str) -> int:
        """Index of the SCC containing a function (see :meth:`sccs`)."""
        self.sccs()
        return self._scc_of[qualname]

    def reachable(self, seeds: Iterable[str]) -> dict[str, tuple[str, ...]]:
        """Functions reachable from ``seeds``; each maps to a witness chain.

        The chain is the BFS path of *display* names from the seed to
        the function, the text findings print.
        """
        chains: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for seed in seeds:
            fn = self.functions.get(seed)
            if fn is not None and seed not in chains:
                chains[seed] = (fn.display,)
                frontier.append(seed)
        while frontier:
            current = frontier.pop(0)
            chain = chains[current]
            for callee in self.functions[current].callees():
                if callee.qualname not in chains:
                    chains[callee.qualname] = chain + (callee.display,)
                    frontier.append(callee.qualname)
        return chains

    def reverse_reachable(self, targets: Iterable[str]) -> dict[str, tuple[str, ...]]:
        """Functions that may reach ``targets``; each maps to a witness chain.

        The chain runs caller → … → target, i.e. it reads in call
        direction even though the walk goes backwards.
        """
        callers: dict[str, list[FunctionNode]] = {}
        for fn in self.functions.values():
            for callee in fn.callees():
                callers.setdefault(callee.qualname, []).append(fn)
        chains: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for target in targets:
            fn = self.functions.get(target)
            if fn is not None and target not in chains:
                chains[target] = (fn.display,)
                frontier.append(target)
        while frontier:
            current = frontier.pop(0)
            chain = chains[current]
            for caller in callers.get(current, []):
                if caller.qualname not in chains:
                    chains[caller.qualname] = (caller.display,) + chain
                    frontier.append(caller.qualname)
        return chains


def _expr_text(expr: ast.expr) -> str:
    """Compact dotted rendering of a receiver expression for messages."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts or not isinstance(node, ast.expr):
        parts.append("<expr>")
    else:
        return "<expr>"
    return ".".join(reversed(parts))
