"""Interprocedural forward taint propagation over the call graph.

The deniability contract has a static shape: key material and plaintext
(*sources*) must pass through the volume cipher (*sanitizers*) before
they can reach anything an adversary observes (*sinks*: backend writes,
trace rows, exception text, logging, ``repr`` output).  This module
computes which expressions may carry secret taint, summary-style in the
spirit of IFDS: each function gets a *summary* — which parameters flow
to its return value, which parameters reach a sink inside it, which
secrets it returns outright — and summaries are applied at call sites
through :class:`~repro.lint.graph.CallGraph` resolution until a global
fixpoint, with SCC order making the common acyclic case converge in one
pass.

The value model is deliberately coarse but *predictably* coarse:

* **Field names, not objects.**  Reading an attribute named ``secret``/
  ``header_key``/``content_key``/``key``/``_key`` is a source wherever
  it happens; storing a secret into an object does **not** taint the
  object.  Constructors therefore launder: ``WriteStep(data=secret)``
  is clean until someone reads a secret-named field back out.  This is
  what keeps plan payloads (encrypted later, by the executor) from
  drowning the analysis in false positives.
* **Flow-insensitive, accumulating.**  A name once tainted stays
  tainted for the whole function; there is no kill.  Sound for leak
  detection, and cheap.
* **Hashes declassify.**  Anything routed through ``hashlib``/``hmac``
  or the cipher's ``encrypt``/``encrypt_many``/``seal`` comes out
  clean; so do ``len``/``bool``-style observers and comparisons.

Findings carry the full function chain from the source read to the
sink call, so a leak three modules deep is one actionable line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Iterable

from repro.lint.graph import CallGraph, CallSite, ClassInfo, FunctionNode, _expr_text

#: Attribute / dataclass-field names that *are* key material.
SOURCE_ATTRS = frozenset({"secret", "header_key", "content_key", "key", "_key", "fak_entropy"})

#: Parameter names that carry key material or raw entropy into a function.
SOURCE_PARAMS = frozenset({"fak_entropy", "key", "secret"})

#: Method calls whose result is plaintext.
SOURCE_CALLS = frozenset({"decrypt", "decrypt_many", "unseal"})

#: Method calls that seal their input: the result is safe to persist.
SANITIZER_CALLS = frozenset({"encrypt", "encrypt_many", "seal"})

#: Module prefixes whose functions are one-way: output reveals nothing usable.
SANITIZER_MODULES = ("hashlib.", "hmac.")

#: Builtins that observe a value without revealing it.
DECLASSIFIERS = frozenset({"len", "bool", "type", "isinstance", "id", "hash", "int", "float"})

#: Device-plan primitives; sinks by name (unique to the device surface).
DEVICE_SINK_NAMES = frozenset({"write_block", "write_blocks", "read_write_blocks"})

#: Sinks when the receiver resolves to a ``BlockBackend`` implementation.
BACKEND_WRITE_METHODS = frozenset({"write", "write_many"})

#: Sinks when the receiver resolves to the I/O trace.
TRACE_SINK_METHODS = frozenset({"record", "record_many", "extend"})

LOG_METHODS = frozenset({"debug", "info", "warning", "error", "critical", "exception", "log"})
LOG_RECEIVERS = frozenset({"logging", "logger", "log", "_logger", "_log"})
FORMAT_BUILTINS = frozenset({"str", "repr", "ascii", "format", "print"})

_MAX_CHAIN = 16
_MAX_ROUNDS = 8
_MAX_PASSES = 4

SEC_FLOW = "SEC001"
SEC_FORMAT = "SEC002"


@dataclass(frozen=True)
class Taint:
    """One tainted fact: where it came from and the functions it crossed."""

    kind: str  # "source" | "param"
    label: str  # what was read ("fak.secret", "decrypt() result", param name)
    index: int  # parameter position for kind="param", else -1
    path: tuple[str, ...]  # function displays traversed, source first

    def key(self) -> tuple[str, str, int]:
        return (self.kind, self.label, self.index)


@dataclass(frozen=True)
class SinkHit:
    """A sink reached inside some function, relative to that function."""

    code: str
    sink_label: str
    path: str
    line: int
    col: int
    chain: tuple[str, ...]  # summary owner first, sink-containing function last


@dataclass(frozen=True)
class TaintFinding:
    """A fully connected source→sink flow, ready to become a lint finding."""

    code: str
    source_label: str
    sink_label: str
    path: str
    line: int
    col: int
    chain: tuple[str, ...]


class Summary:
    """What a function does with taint, as seen from a call site."""

    def __init__(self) -> None:
        self.returns_param: set[int] = set()
        self.return_taints: dict[tuple[str, str, int], Taint] = {}
        self.param_sinks: dict[int, set[SinkHit]] = {}

    def freeze(self) -> tuple[object, ...]:
        return (
            frozenset(self.returns_param),
            frozenset(self.return_taints.values()),
            frozenset((i, hit) for i, hits in self.param_sinks.items() for hit in hits),
        )


Env = dict[str, dict[tuple[str, str, int], Taint]]


def _merge(cell: dict[tuple[str, str, int], Taint], taints: Iterable[Taint]) -> bool:
    changed = False
    for taint in taints:
        key = taint.key()
        held = cell.get(key)
        if held is None or len(taint.path) < len(held.path):
            cell[key] = taint
            changed = True
    return changed


def _extend(taints: Iterable[Taint], display: str) -> list[Taint]:
    out = []
    for taint in taints:
        if taint.path and taint.path[-1] == display:
            out.append(taint)
        elif len(taint.path) < _MAX_CHAIN:
            out.append(replace(taint, path=taint.path + (display,)))
        else:
            out.append(taint)
    return out


class TaintEngine:
    """Global fixpoint over per-function taint summaries."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.summaries: dict[str, Summary] = {q: Summary() for q in graph.functions}
        #: (class qualname, attribute) → source taints ever stored there.
        self.attr_taints: dict[tuple[str, str], dict[tuple[str, str, int], Taint]] = {}
        self.findings: dict[tuple[str, str, int, int, str], TaintFinding] = {}
        self._backends: set[str] | None = None

    def run(self) -> list[TaintFinding]:
        order = [qualname for component in self.graph.sccs() for qualname in component]
        for _round in range(_MAX_ROUNDS):
            changed = False
            for qualname in order:
                if _FunctionAnalysis(self, self.graph.functions[qualname]).run():
                    changed = True
            if not changed:
                break
        return sorted(
            self.findings.values(), key=lambda f: (f.path, f.line, f.col, f.code, f.source_label)
        )

    def is_backend(self, cls: ClassInfo) -> bool:
        """Whether a class is (or implements) the ``BlockBackend`` protocol."""
        if self._backends is None:
            backends: set[str] = set()
            for info in self.graph.classes.values():
                if info.name == "BlockBackend":
                    backends.add(info.qualname)
                    for conformer in self.graph.conformers(info):
                        backends.add(conformer.qualname)
            self._backends = backends
        if cls.qualname in self._backends:
            return True
        return any(ancestor.qualname in self._backends for ancestor in self.graph.mro(cls))

    def report(self, taint: Taint, hit: SinkHit) -> bool:
        """Connect a source taint to a sink; True when the finding is new/shorter."""
        if taint.path and hit.chain and taint.path[-1] == hit.chain[0]:
            chain = taint.path + hit.chain[1:]
        else:
            chain = taint.path + hit.chain
        key = (hit.code, hit.path, hit.line, hit.col, taint.label)
        held = self.findings.get(key)
        if held is not None and len(held.chain) <= len(chain):
            return False
        self.findings[key] = TaintFinding(
            code=hit.code,
            source_label=taint.label,
            sink_label=hit.sink_label,
            path=hit.path,
            line=hit.line,
            col=hit.col,
            chain=chain,
        )
        return True


class _FunctionAnalysis:
    """One pass of flow-insensitive taint execution over a function body."""

    def __init__(self, engine: TaintEngine, fn: FunctionNode):
        self.engine = engine
        self.graph = engine.graph
        self.fn = fn
        self.summary = Summary()
        self.env: Env = {}
        self.params: list[str] = []
        self.changed = False
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args]:
            self.params.append(arg.arg)
        self.kwonly = {arg.arg: len(self.params) + i for i, arg in enumerate(args.kwonlyargs)}
        for index, name in enumerate(self.params):
            self._bind(name, [Taint("param", name, index, (fn.display,))])
            if name in SOURCE_PARAMS:
                self._bind(name, [Taint("source", f"parameter '{name}'", -1, (fn.display,))])
        for name, index in self.kwonly.items():
            self._bind(name, [Taint("param", name, index, (fn.display,))])
            if name in SOURCE_PARAMS:
                self._bind(name, [Taint("source", f"parameter '{name}'", -1, (fn.display,))])

    def run(self) -> bool:
        for _ in range(_MAX_PASSES):
            before = {name: set(cell) for name, cell in self.env.items()}
            for stmt in self.fn.node.body:
                self._exec(stmt)
            after = {name: set(cell) for name, cell in self.env.items()}
            if before == after:
                break
        stored = self.engine.summaries[self.fn.qualname]
        if stored.freeze() != self.summary.freeze():
            self.engine.summaries[self.fn.qualname] = self.summary
            self.changed = True
        return self.changed

    # -- helpers -----------------------------------------------------------------------

    def _bind(self, name: str, taints: Iterable[Taint]) -> None:
        # Env growth is local to this pass; only global state (summaries,
        # attribute taint, findings) drives the outer fixpoint.
        _merge(self.env.setdefault(name, {}), taints)

    def _taints(self, cell: dict[tuple[str, str, int], Taint] | None) -> list[Taint]:
        return list(cell.values()) if cell else []

    def _hit(self, code: str, label: str, node: ast.AST, taints: Iterable[Taint]) -> None:
        hit = SinkHit(
            code=code,
            sink_label=label,
            path=self.fn.module.path,
            line=node.lineno,
            col=node.col_offset,
            chain=(self.fn.display,),
        )
        self._record_hit(hit, taints)

    def _record_hit(self, hit: SinkHit, taints: Iterable[Taint]) -> None:
        for taint in taints:
            if taint.kind == "source":
                if self.engine.report(taint, hit):
                    self.changed = True
            else:
                self.summary.param_sinks.setdefault(taint.index, set()).add(hit)

    # -- statements --------------------------------------------------------------------

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._assign(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._return(stmt)
        elif isinstance(stmt, ast.Raise):
            self._raise(stmt)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.For):
            self._assign_loop(stmt.target, stmt.iter)
            for sub in [*stmt.body, *stmt.orelse]:
                self._exec(sub)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for sub in [*stmt.body, *stmt.orelse]:
                self._exec(sub)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            for sub in [*stmt.body, *stmt.orelse]:
                self._exec(sub)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taints)
            for sub in stmt.body:
                self._exec(sub)
        elif isinstance(stmt, ast.Try):
            for sub in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                self._exec(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._exec(sub)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested scopes: walk for sink side effects; closure variables
            # share this env, which is the right over-approximation.
            for sub in stmt.body:
                self._exec(sub)
        elif isinstance(stmt, ast.Delete):
            pass
        else:
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._exec(sub)
                elif isinstance(sub, ast.expr):
                    self._eval(sub)

    def _assign(self, target: ast.expr, taints: list[Taint]) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taints)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taints)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.fn.cls is not None
        ):
            sources = [taint for taint in taints if taint.kind == "source"]
            if sources:
                cell = self.engine.attr_taints.setdefault(
                    (self.fn.cls.qualname, target.attr), {}
                )
                if _merge(cell, sources):
                    self.changed = True

    def _assign_loop(self, target: ast.expr, source: ast.expr) -> None:
        """Bind a loop target; ``zip``/``enumerate`` unpack elementwise.

        Smearing every iterable's taint over every tuple element turns
        ``for index, key in zip(blocks, keys)`` into a tainted ``index``,
        which then poisons unrelated error messages — the one structured
        idiom worth modelling precisely.
        """
        if (
            isinstance(target, ast.Tuple)
            and isinstance(source, ast.Call)
            and isinstance(source.func, ast.Name)
            and all(keyword.arg == "strict" for keyword in source.keywords)
        ):
            if source.func.id == "zip" and len(source.args) == len(target.elts):
                for element, arg in zip(target.elts, source.args, strict=True):
                    self._assign(element, self._eval(arg))
                return
            if (
                source.func.id == "enumerate"
                and len(target.elts) == 2
                and len(source.args) >= 1
            ):
                self._assign(target.elts[0], [])
                self._assign(target.elts[1], self._eval(source.args[0]))
                return
        self._assign(target, self._eval(source))

    def _return(self, stmt: ast.Return) -> None:
        assert stmt.value is not None
        taints = self._eval(stmt.value)
        if self.fn.name in ("__repr__", "__str__") and taints:
            self._hit(SEC_FORMAT, f"{self.fn.name}() output", stmt, taints)
        for taint in taints:
            if taint.kind == "param":
                self.summary.returns_param.add(taint.index)
            else:
                _merge(self.summary.return_taints, [taint])

    def _raise(self, stmt: ast.Raise) -> None:
        if stmt.exc is None:
            return
        if isinstance(stmt.exc, ast.Call):
            taints: list[Taint] = []
            for arg in stmt.exc.args:
                taints.extend(self._eval(arg))
            for keyword in stmt.exc.keywords:
                taints.extend(self._eval(keyword.value))
            # The call itself still needs evaluating (nested sinks).
            self._eval(stmt.exc)
        else:
            taints = self._eval(stmt.exc)
        if taints:
            self._hit(SEC_FLOW, "exception message", stmt, taints)

    # -- expressions -------------------------------------------------------------------

    def _eval(self, node: ast.expr) -> list[Taint]:
        if isinstance(node, ast.Name):
            return self._taints(self.env.get(node.id))
        if isinstance(node, ast.Constant):
            return []
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            taints: list[Taint] = []
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    taints.extend(self._eval(value.value))
            if taints:
                self._hit(SEC_FORMAT, "f-string interpolation", node, taints)
            return taints
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            if (
                isinstance(node.op, ast.Mod)
                and isinstance(node.left, (ast.Constant, ast.JoinedStr))
                and right
            ):
                self._hit(SEC_FORMAT, "%-formatting", node, right)
            return left + right
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return []  # equality checks observe, they do not reveal
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                self._assign_loop(generator.target, generator.iter)
                for condition in generator.ifs:
                    self._eval(condition)
            taints = []
            if isinstance(node, ast.DictComp):
                taints.extend(self._eval(node.key))
                taints.extend(self._eval(node.value))
            else:
                taints.extend(self._eval(node.elt))
            return taints
        if isinstance(node, ast.Lambda):
            return []
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            return self._eval(node.value) if node.value is not None else []
        # Generic fallback: union over child expressions.
        taints = []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                taints.extend(self._eval(child))
        return taints

    def _eval_attribute(self, node: ast.Attribute) -> list[Taint]:
        self._eval(node.value)
        taints: list[Taint] = []
        if node.attr in SOURCE_ATTRS:
            taints.append(
                Taint("source", f"secret attribute '{_expr_text(node)}'", -1, (self.fn.display,))
            )
        receiver = self.graph._receiver_class(self.fn, node.value, self._locals())
        if receiver is not None:
            for ancestor in self.graph.mro(receiver):
                cell = self.engine.attr_taints.get((ancestor.qualname, node.attr))
                if cell:
                    taints.extend(_extend(cell.values(), self.fn.display))
        return taints

    def _locals(self) -> dict[str, str]:
        cached = getattr(self, "_locals_cache", None)
        if cached is None:
            cached = self.graph._local_types(self.fn)
            self._locals_cache = cached
        return cached

    def _eval_call(self, node: ast.Call) -> list[Taint]:
        site = self.fn.call_index.get(id(node))
        dotted = self.fn.module.resolve(node.func)

        # Sanitizers: the sealed result is clean whatever went in.
        if dotted is not None and dotted.startswith(SANITIZER_MODULES):
            self._eval_args(node)
            return []
        name = site.name if site is not None else ""
        if site is not None and site.is_attribute and name in SANITIZER_CALLS:
            self._eval_args(node)
            return []
        if isinstance(node.func, ast.Name) and node.func.id in DECLASSIFIERS:
            self._eval_args(node)
            return []

        arg_taints = self._eval_args(node)
        all_taints = [taint for taints in arg_taints.values() for taint in taints]

        # String-formatting / logging sinks (SEC002).
        if isinstance(node.func, ast.Name) and node.func.id in FORMAT_BUILTINS and all_taints:
            self._hit(SEC_FORMAT, f"{node.func.id}()", node, all_taints)
        if site is not None and site.is_attribute:
            if name == "format" and all_taints:
                self._hit(SEC_FORMAT, "str.format()", node, all_taints)
            if name in LOG_METHODS and all_taints and self._is_logging(site, dotted):
                self._hit(SEC_FORMAT, f"logging.{name}()", node, all_taints)

        # Device / trace / os sinks (SEC001).
        flow_label = self._flow_sink_label(site, dotted)
        if flow_label is not None and all_taints:
            self._hit(SEC_FLOW, flow_label, node, all_taints)

        # Plaintext sources.
        if site is not None and site.is_attribute and name in SOURCE_CALLS:
            return [Taint("source", f"{name}() plaintext", -1, (self.fn.display,))]

        # Project-resolved calls: apply callee summaries.
        if site is not None and site.targets:
            return self._apply_targets(node, site, arg_taints)

        # Unresolved: conservative pass-through, receiver included.
        passthrough = list(all_taints)
        if isinstance(node.func, ast.Attribute):
            passthrough.extend(self._eval(node.func.value))
        return passthrough

    def _eval_args(self, node: ast.Call) -> dict[object, list[Taint]]:
        taints: dict[object, list[Taint]] = {}
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                taints[position] = self._eval(arg.value)
            else:
                taints[position] = self._eval(arg)
        for keyword in node.keywords:
            taints[keyword.arg] = self._eval(keyword.value)
        return taints

    def _is_logging(self, site: CallSite, dotted: str | None) -> bool:
        if dotted is not None and (dotted == "logging" or dotted.startswith("logging.")):
            return True
        root = site.receiver.split(".")[-1] if site.receiver else ""
        return root in LOG_RECEIVERS

    def _flow_sink_label(self, site: CallSite | None, dotted: str | None) -> str | None:
        if dotted == "os.write":
            return "os.write()"
        if site is None:
            return None
        if site.is_attribute and site.name in DEVICE_SINK_NAMES:
            return f"device write '{site.name}'"
        for target, _bound in site.targets:
            if target.cls is None:
                continue
            if site.name in TRACE_SINK_METHODS and any(
                ancestor.name == "IoTrace" for ancestor in self.graph.mro(target.cls)
            ):
                return f"IoTrace.{site.name}()"
            if site.name in BACKEND_WRITE_METHODS and self.engine.is_backend(target.cls):
                return f"backend {site.name}()"
        return None

    def _apply_targets(
        self, node: ast.Call, site: CallSite, arg_taints: dict[object, list[Taint]]
    ) -> list[Taint]:
        out: dict[tuple[str, str, int], Taint] = {}
        receiver_taints: list[Taint] = []
        if isinstance(node.func, ast.Attribute):
            receiver_taints = self._eval(node.func.value)
        for target, bound in site.targets:
            summary = self.engine.summaries.get(target.qualname)
            if summary is None:
                continue
            constructor = target.name == "__init__" and not site.name == "__init__"
            offset = 1 if (bound or constructor) else 0
            target_params = _param_names(target)
            bindings: list[tuple[int, list[Taint]]] = []
            if (bound and receiver_taints) and len(target_params) > 0:
                bindings.append((0, receiver_taints))
            for key, taints in arg_taints.items():
                if not taints:
                    continue
                if isinstance(key, int):
                    index = key + offset
                elif key is None:
                    continue  # **kwargs expansion: no precise binding
                else:
                    try:
                        index = target_params.index(key)
                    except ValueError:
                        continue
                bindings.append((index, taints))
            for index, taints in bindings:
                for hit in summary.param_sinks.get(index, ()):  # leaks inside the callee
                    promoted = replace(hit, chain=(self.fn.display,) + hit.chain)
                    for taint in taints:
                        if taint.kind == "source":
                            if self.engine.report(taint, hit):
                                self.changed = True
                        else:
                            self.summary.param_sinks.setdefault(taint.index, set()).add(promoted)
                if index in summary.returns_param and not constructor:
                    _merge(out, _extend(taints, self.fn.display))
            if not constructor:
                _merge(out, _extend(summary.return_taints.values(), self.fn.display))
        return list(out.values())


def _param_names(fn: FunctionNode) -> list[str]:
    args = fn.node.args
    names = [arg.arg for arg in [*args.posonlyargs, *args.args]]
    names.extend(arg.arg for arg in args.kwonlyargs)
    return names
