"""LCK001-LCK003 — static lock discipline for the concurrent engine.

PR 5's engine runs one scheduler thread against many client threads;
its safety argument is a lock discipline the dynamic tests can only
sample.  These rules check it over the whole-program call graph:

* **Inventory.**  A *lock* is any attribute assigned
  ``threading.Lock()`` / ``RLock()`` / ``Condition()`` / ``Semaphore()``.
  ``Condition(self.x)`` shares ``x``'s underlying lock, so the pair is
  canonicalised to one lock — ``with self._cond`` and
  ``with self._queue_lock`` are the *same* acquisition.
* **LCK001 — lock-order cycles.**  An edge A→B is recorded whenever B
  is acquired while A may be held (lexically, or propagated to the
  callee through every call site).  A cycle — including re-acquiring a
  non-reentrant lock already held — is a potential deadlock.
* **LCK002 — blocking while holding a foreign lock.**  ``.wait()`` /
  ``.wait_for()``, ``time.sleep`` and backend device I/O must not run
  while holding a lock — except a condition's own lock, which ``wait``
  releases.  Must-hold sets propagate interprocedurally: a private
  helper whose every caller holds the lock inherits it.
* **LCK003 — unlocked shared writes (a lightweight race detector).**
  Classes that start a thread (``threading.Thread(target=self.x)``) and
  classes implementing the ``BlockBackend`` protocol (driven by the
  engine's scheduler thread) have their methods partitioned into a
  *scheduler* role (reachable from the thread target / the device
  surface) and a *client* role (reachable from other public methods).
  An attribute written in both roles with no common lock across the two
  sites is a data race.  ``__init__`` is exempt (publication
  happens-before the thread start).

Read-side races and ``.join`` on untyped receivers are out of scope;
the dynamic suite covers those.  Must-hold uses *intersection* over
call sites (misses nothing a caller could break), and public methods
are assumed callable lock-free from outside.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.core import Finding, Project, ProjectRule, register
from repro.lint.graph import CallGraph, CallSite, ClassInfo, FunctionNode

LOCK_FACTORIES = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "threading.Condition": "Condition",
    "threading.Semaphore": "Semaphore",
    "threading.BoundedSemaphore": "Semaphore",
}

#: Blocking call names on lock-ish receivers.
WAIT_METHODS = frozenset({"wait", "wait_for"})

#: Device-surface methods: calling these blocks on (modelled) hardware.
DEVICE_CALL_NAMES = frozenset(
    {"read_block", "read_blocks", "write_block", "write_blocks", "read_write_blocks"}
)
BACKEND_BLOCKING = frozenset({"read", "write", "read_many", "write_many", "fill_random", "flush"})

#: The device half of the BlockBackend surface — the engine's scheduler
#: thread is the only caller, so these seed the scheduler role.
PROTOCOL_SCHEDULER_METHODS = frozenset({"read", "write", "read_many", "write_many"})

LockId = tuple[str, str]  # (class qualname, attribute name), canonicalised


def _lock_display(lock: LockId) -> str:
    cls, attr = lock
    return f"{cls.rsplit('.', 1)[-1]}.{attr}"


@dataclass
class _Inventory:
    """All locks in the project, with Condition → underlying aliasing."""

    kinds: dict[LockId, str] = field(default_factory=dict)
    canonical: dict[LockId, LockId] = field(default_factory=dict)

    def canon(self, lock: LockId) -> LockId:
        seen = set()
        while lock in self.canonical and lock not in seen:
            seen.add(lock)
            lock = self.canonical[lock]
        return lock

    def kind(self, lock: LockId) -> str:
        return self.kinds.get(lock, "Lock")


@dataclass
class _Acquire:
    lock: LockId
    held_before: frozenset[LockId]
    fn: FunctionNode
    node: ast.AST


@dataclass
class _Blocking:
    label: str
    waited: LockId | None
    held: frozenset[LockId]
    fn: FunctionNode
    node: ast.AST


@dataclass
class _Write:
    attr: str
    held: frozenset[LockId]
    fn: FunctionNode
    node: ast.AST


class _LockModel:
    """One shared walk collecting acquisitions, call-site held-sets,
    blocking operations and ``self.*`` writes, then the interprocedural
    must/may entry held-sets all three rules consume."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.inventory = self._build_inventory()
        self.acquires: list[_Acquire] = []
        self.blocking: list[_Blocking] = []
        self.writes: dict[str, list[_Write]] = {}  # fn qualname → writes
        self.call_held: dict[str, list[tuple[CallSite, frozenset[LockId]]]] = {}
        for fn in graph.functions.values():
            self._walk_function(fn)
        self.must_entry = self._entry_sets(intersect=True)
        self.may_entry = self._entry_sets(intersect=False)

    # -- inventory ---------------------------------------------------------------------

    def _build_inventory(self) -> _Inventory:
        inventory = _Inventory()
        pending_alias: list[tuple[LockId, ast.expr, ClassInfo]] = []
        for info in self.graph.classes.values():
            for method in info.methods.values():
                for stmt in ast.walk(method.node):
                    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                        continue
                    target = stmt.targets[0]
                    if (
                        not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"
                        or not isinstance(stmt.value, ast.Call)
                    ):
                        continue
                    dotted = info.module.resolve(stmt.value.func)
                    kind = LOCK_FACTORIES.get(dotted or "")
                    if kind is None:
                        continue
                    lock = (info.qualname, target.attr)
                    inventory.kinds[lock] = kind
                    if kind == "Condition" and stmt.value.args:
                        pending_alias.append((lock, stmt.value.args[0], info))
        for lock, arg, info in pending_alias:
            if (
                isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "self"
            ):
                underlying = (info.qualname, arg.attr)
                if underlying in inventory.kinds:
                    inventory.canonical[lock] = underlying
        return inventory

    def _lock_at(self, fn: FunctionNode, expr: ast.expr) -> LockId | None:
        """The canonical lock an expression denotes, or None."""
        if not isinstance(expr, ast.Attribute):
            return None
        receiver = self.graph._receiver_class(fn, expr.value, self._locals(fn))
        if receiver is None:
            return None
        for ancestor in self.graph.mro(receiver):
            lock = (ancestor.qualname, expr.attr)
            if lock in self.inventory.kinds:
                return self.inventory.canon(lock)
        return None

    def _locals(self, fn: FunctionNode) -> dict[str, str]:
        cached = getattr(fn, "_lock_locals", None)
        if cached is None:
            cached = self.graph._local_types(fn)
            fn._lock_locals = cached  # type: ignore[attr-defined]
        return cached

    # -- per-function walk -------------------------------------------------------------

    def _walk_function(self, fn: FunctionNode) -> None:
        self.call_held.setdefault(fn.qualname, [])
        self.writes.setdefault(fn.qualname, [])
        for stmt in fn.node.body:
            self._walk_stmt(fn, stmt, frozenset())

    def _walk_stmt(self, fn: FunctionNode, stmt: ast.stmt, held: frozenset[LockId]) -> None:
        if isinstance(stmt, ast.With):
            inner = held
            for item in stmt.items:
                self._walk_expr(fn, item.context_expr, held)
                lock = self._lock_at(fn, item.context_expr)
                if lock is not None:
                    self.acquires.append(_Acquire(lock, inner, fn, item.context_expr))
                    inner = inner | {lock}
            for sub in stmt.body:
                self._walk_stmt(fn, sub, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def does not run where it is defined; its body is
            # walked with an empty held-set (the closure may escape).
            for sub in stmt.body:
                self._walk_stmt(fn, sub, frozenset())
            return
        self._record_writes(fn, stmt, held)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._walk_stmt(fn, child, held)
            elif isinstance(child, ast.expr):
                self._walk_expr(fn, child, held)

    def _record_writes(self, fn: FunctionNode, stmt: ast.stmt, held: frozenset[LockId]) -> None:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            self._record_write_target(fn, target, held)

    def _record_write_target(
        self, fn: FunctionNode, target: ast.expr, held: frozenset[LockId]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_write_target(fn, element, held)
            return
        if isinstance(target, ast.Starred):
            self._record_write_target(fn, target.value, held)
            return
        node: ast.expr = target
        if isinstance(node, ast.Subscript):
            node = node.value  # ``self.x[k] = v`` / ``del self.x[k]`` mutate x
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            lock = (fn.cls.qualname, node.attr) if fn.cls is not None else None
            if lock is not None and self.inventory.canon(lock) in self.inventory.kinds:
                return  # assigning the lock attribute itself (init)
            self.writes[fn.qualname].append(_Write(node.attr, held, fn, target))

    def _walk_expr(self, fn: FunctionNode, expr: ast.expr, held: frozenset[LockId]) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            site = fn.call_index.get(id(node))
            if site is not None:
                self.call_held[fn.qualname].append((site, held))
            self._check_blocking(fn, node, site, held)

    def _check_blocking(
        self,
        fn: FunctionNode,
        node: ast.Call,
        site: CallSite | None,
        held: frozenset[LockId],
    ) -> None:
        func = node.func
        dotted = fn.module.resolve(func)
        if dotted == "time.sleep":
            self.blocking.append(_Blocking("time.sleep()", None, held, fn, node))
            return
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in WAIT_METHODS:
            waited = self._lock_at(fn, func.value)
            label = f"{site.receiver}.{func.attr}()" if site is not None else f"{func.attr}()"
            self.blocking.append(_Blocking(label, waited, held, fn, node))
            return
        if func.attr in DEVICE_CALL_NAMES:
            self.blocking.append(_Blocking(f"device I/O '{func.attr}'", None, held, fn, node))
            return
        if site is not None and func.attr in BACKEND_BLOCKING:
            for target, _bound in site.targets:
                if target.cls is not None and _is_backend(self.graph, target.cls):
                    self.blocking.append(
                        _Blocking(f"backend device call '{func.attr}'", None, held, fn, node)
                    )
                    return

    # -- interprocedural entry held-sets -----------------------------------------------

    def _thread_targets(self) -> set[str]:
        """Methods handed to ``threading.Thread(target=self.x)``: lock-free roots."""
        cached = getattr(self, "_thread_targets_cache", None)
        if cached is not None:
            return cached
        targets: set[str] = set()
        for fn in self.graph.functions.values():
            if fn.cls is None:
                continue
            for call in ast.walk(fn.node):
                if (
                    isinstance(call, ast.Call)
                    and fn.module.resolve(call.func) == "threading.Thread"
                ):
                    for keyword in call.keywords:
                        if (
                            keyword.arg == "target"
                            and isinstance(keyword.value, ast.Attribute)
                            and isinstance(keyword.value.value, ast.Name)
                            and keyword.value.value.id == "self"
                            and keyword.value.attr in fn.cls.methods
                        ):
                            targets.add(fn.cls.methods[keyword.value.attr].qualname)
        self._thread_targets_cache = targets
        return targets

    def _entry_sets(self, *, intersect: bool) -> dict[str, frozenset[LockId]]:
        """Locks held at entry: must (∩ over call sites) or may (∪)."""
        called: set[str] = set()
        for sites in self.call_held.values():
            for site, _held in sites:
                for target, _bound in site.targets:
                    called.add(target.qualname)
        entry: dict[str, frozenset[LockId] | None] = {}
        for qualname, fn in self.graph.functions.items():
            if intersect and (
                not fn.name.startswith("_")
                or qualname not in called
                or qualname in self._thread_targets()
            ):
                # Public surface, uncalled roots (thread targets, entry
                # points): callable lock-free from outside.
                entry[qualname] = frozenset()
            else:
                entry[qualname] = None if intersect else frozenset()
        for _ in range(len(self.graph.functions)):
            changed = False
            for qualname, sites in self.call_held.items():
                caller_entry = entry[qualname]
                for site, held in sites:
                    contribution: frozenset[LockId] | None
                    if caller_entry is None:
                        contribution = None if intersect else held
                    else:
                        contribution = held | caller_entry
                    if contribution is None:
                        continue
                    for target, _bound in site.targets:
                        current = entry.get(target.qualname, frozenset())
                        if current is not None and intersect and not current:
                            continue  # already pinned to ∅ (public or resolved)
                        if intersect:
                            updated = contribution if current is None else current & contribution
                        else:
                            updated = (current or frozenset()) | contribution
                        if updated != current:
                            entry[target.qualname] = updated
                            changed = True
            if not changed:
                break
        return {
            qualname: (value if value is not None else frozenset())
            for qualname, value in entry.items()
        }


def _is_property(fn: FunctionNode) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id == "property" for dec in fn.node.decorator_list
    )


def _is_classmethod(fn: FunctionNode) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id in ("classmethod", "staticmethod")
        for dec in fn.node.decorator_list
    )


def _is_backend(graph: CallGraph, cls: ClassInfo) -> bool:
    for info in graph.classes.values():
        if info.name == "BlockBackend" and info.is_protocol:
            conformers = {c.qualname for c in graph.conformers(info)}
            return cls.qualname in conformers or any(
                ancestor.qualname in conformers for ancestor in graph.mro(cls)
            )
    return False


def _model(project: Project) -> _LockModel:
    model = getattr(project, "_lock_model", None)
    if model is None:
        model = _LockModel(project.graph)
        project._lock_model = model  # type: ignore[attr-defined]
    return model


@register
class LockOrderRule(ProjectRule):
    code = "LCK001"
    summary = "lock acquisition cycles (potential deadlock)"
    contract = (
        "The may-hold graph over every threading primitive in the tree "
        "is acyclic, and no non-reentrant lock is acquired while "
        "already held."
    )
    rationale = (
        "The engine's scheduler thread and its client threads share "
        "several locks; an ABBA cycle that only bites under a rare "
        "interleaving would hang CI nondeterministically instead of "
        "failing a test."
    )
    dynamic_suite = "tests/test_concurrent.py (stress interleavings)"

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = _model(project)
        findings: list[Finding] = []
        edges: dict[LockId, dict[LockId, _Acquire]] = {}
        for acquire in model.acquires:
            outer = acquire.held_before | model.may_entry.get(acquire.fn.qualname, frozenset())
            if acquire.lock in outer and model.inventory.kind(acquire.lock) not in (
                "RLock",
                "Semaphore",
            ):
                findings.append(
                    self.finding(
                        acquire.fn.module,
                        acquire.node,
                        f"'{_lock_display(acquire.lock)}' re-acquired while already held "
                        f"in {acquire.fn.display} "
                        f"({model.inventory.kind(acquire.lock)} is not reentrant); "
                        "this self-deadlocks the holding thread",
                    )
                )
            for held in outer:
                if held != acquire.lock:
                    edges.setdefault(held, {}).setdefault(acquire.lock, acquire)
        findings.extend(self._cycles(edges))
        return sorted(set(findings))

    def _cycles(self, edges: dict[LockId, dict[LockId, _Acquire]]) -> list[Finding]:
        findings: list[Finding] = []
        reported: set[frozenset[LockId]] = set()
        for start in edges:
            path: list[LockId] = []
            self._dfs(start, start, edges, path, set(), reported, findings)
        return findings

    def _dfs(
        self,
        start: LockId,
        node: LockId,
        edges: dict[LockId, dict[LockId, _Acquire]],
        path: list[LockId],
        visiting: set[LockId],
        reported: set[frozenset[LockId]],
        findings: list[Finding],
    ) -> None:
        path.append(node)
        visiting.add(node)
        for nxt, acquire in edges.get(node, {}).items():
            if nxt == start and len(path) > 1:
                cycle_key = frozenset(path)
                if cycle_key not in reported:
                    reported.add(cycle_key)
                    names = " -> ".join(_lock_display(lock) for lock in [*path, start])
                    witnesses = "; ".join(
                        f"{edges[a][b].fn.display} takes {_lock_display(b)} "
                        f"holding {_lock_display(a)}"
                        for a, b in zip([*path, start][:-1], [*path, start][1:], strict=True)
                        if a in edges and b in edges[a]
                    )
                    findings.append(
                        self.finding(
                            acquire.fn.module,
                            acquire.node,
                            f"lock-order cycle {names} ({witnesses}); two threads "
                            "taking these locks in opposite orders deadlock",
                        )
                    )
            elif nxt not in visiting:
                self._dfs(start, nxt, edges, path, visiting, reported, findings)
        path.pop()
        visiting.discard(node)


@register
class BlockingUnderLockRule(ProjectRule):
    code = "LCK002"
    summary = "blocking operations while holding a foreign lock"
    contract = (
        "No function sleeps, waits on a condition, or performs device "
        "I/O while holding a lock other than the one it is waiting on."
    )
    rationale = (
        "Quantum scheduling assumes device I/O happens outside the "
        "queue lock; holding it through a blocking call serialises the "
        "engine and turns the fairness benchmarks into noise."
    )
    dynamic_suite = "tests/test_concurrent.py (latency/fairness)"

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = _model(project)
        findings: list[Finding] = []
        for blocking in model.blocking:
            effective = blocking.held | model.must_entry.get(
                blocking.fn.qualname, frozenset()
            )
            if blocking.waited is not None:
                # Condition.wait releases its own lock while sleeping.
                effective = effective - {blocking.waited}
            if not effective:
                continue
            names = ", ".join(sorted(_lock_display(lock) for lock in effective))
            inherited = effective - blocking.held
            via = (
                " (held at every call site of this helper)"
                if inherited and not blocking.held
                else ""
            )
            findings.append(
                self.finding(
                    blocking.fn.module,
                    blocking.node,
                    f"blocking {blocking.label} in {blocking.fn.display} while "
                    f"holding {names}{via}; every other thread needing that lock "
                    "stalls for the full wait",
                )
            )
        return sorted(set(findings))


@register
class SharedWriteRule(ProjectRule):
    code = "LCK003"
    summary = "unlocked writes to attributes shared across threads"
    contract = (
        "Any attribute written by both a scheduler-role thread and a "
        "client-role thread is written under a common lock on every "
        "path."
    )
    rationale = (
        "Torn counters corrupt exactly the bookkeeping the fault "
        "injector relies on for deterministic crash points — the "
        "FaultInjectingBackend call counter was this rule's first "
        "in-tree catch."
    )
    dynamic_suite = "tests/test_storage.py (multi-threaded fault-injection determinism)"

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = _model(project)
        graph = project.graph
        findings: list[Finding] = []
        for info, scheduler_seeds, client_seeds, origin in self._roled_classes(graph):
            scheduler = self._role(graph, info, scheduler_seeds)
            clients = self._role(graph, info, client_seeds)
            by_attr: dict[str, tuple[list[_Write], list[_Write]]] = {}
            for role_index, members in ((0, scheduler), (1, clients)):
                for qualname in members:
                    fn = graph.functions[qualname]
                    if fn.name == "__init__":
                        continue
                    for write in model.writes.get(qualname, []):
                        sites = by_attr.setdefault(write.attr, ([], []))
                        effective = write.held | model.must_entry.get(qualname, frozenset())
                        sites[role_index].append(
                            _Write(write.attr, effective, fn, write.node)
                        )
            for attr, (sched_writes, client_writes) in sorted(by_attr.items()):
                conflict = self._conflict(sched_writes, client_writes)
                if conflict is None:
                    continue
                sched, client = conflict
                sched_chain = " -> ".join(scheduler[sched.fn.qualname])
                client_chain = " -> ".join(clients[client.fn.qualname])
                findings.append(
                    self.finding(
                        sched.fn.module,
                        sched.node,
                        f"attribute '{attr}' of {info.name} is written by the "
                        f"{origin} thread ({sched_chain}, line {sched.node.lineno}) "
                        f"and a client thread ({client_chain}, line "
                        f"{client.node.lineno}) with no common lock; concurrent "
                        "writes race",
                    )
                )
        return sorted(set(findings))

    def _roled_classes(self, graph: CallGraph):
        for fn in graph.functions.values():
            if fn.cls is None:
                continue
            for call in ast.walk(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                if fn.module.resolve(call.func) != "threading.Thread":
                    continue
                for keyword in call.keywords:
                    if (
                        keyword.arg == "target"
                        and isinstance(keyword.value, ast.Attribute)
                        and isinstance(keyword.value.value, ast.Name)
                        and keyword.value.value.id == "self"
                        and keyword.value.attr in fn.cls.methods
                    ):
                        seeds = [fn.cls.methods[keyword.value.attr].qualname]
                        publics = [
                            m.qualname
                            for name, m in fn.cls.methods.items()
                            if not name.startswith("_") and m.qualname not in seeds
                        ]
                        yield fn.cls, seeds, publics, "scheduler"
        for info in graph.classes.values():
            if info.is_protocol or not _is_backend(graph, info):
                continue
            device = [
                m.qualname for n, m in info.methods.items() if n in PROTOCOL_SCHEDULER_METHODS
            ]
            protocol_names = self._protocol_names(graph)
            others = [
                m.qualname
                for name, m in info.methods.items()
                if not name.startswith("_")
                and name not in protocol_names
                and not _is_property(m)
                and not _is_classmethod(m)
            ]
            if device and others:
                yield info, device, others, "device (scheduler)"

    @staticmethod
    def _protocol_names(graph: CallGraph) -> frozenset[str]:
        for info in graph.classes.values():
            if info.name == "BlockBackend" and info.is_protocol:
                return frozenset(info.methods)
        return frozenset()

    @staticmethod
    def _role(
        graph: CallGraph, info: ClassInfo, seeds: list[str]
    ) -> dict[str, tuple[str, ...]]:
        chains = graph.reachable(seeds)
        return {
            qualname: chain
            for qualname, chain in chains.items()
            if graph.functions[qualname].cls is info
        }

    @staticmethod
    def _conflict(
        sched_writes: list[_Write], client_writes: list[_Write]
    ) -> tuple[_Write, _Write] | None:
        for sched in sched_writes:
            for client in client_writes:
                if sched.node is client.node:
                    continue
                if not (sched.held & client.held):
                    return sched, client
        return None
