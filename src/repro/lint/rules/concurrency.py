"""CON001 — mutating agent primitives carry the re-entrancy tripwire.

PR 5's contract: the core agent is single-threaded by design, and every
primitive that mutates volume state enters ``with self._exclusive(...)``
so that concurrent re-entry raises
:class:`~repro.errors.ConcurrentAccessError` instead of corrupting the
Figure-6 update invariants.  The inventory below is the contract; the
rule checks both directions — every inventoried primitive on
``StegAgent`` wraps itself in the tripwire, and the primitive still
*exists* (a rename would otherwise silently drop coverage).  Agent
subclasses overriding an inventoried primitive must re-enter the guard
themselves.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.core import Finding, Rule, SourceModule, register

#: Every StegAgent primitive that mutates volume state.
MUTATING_PRIMITIVES = frozenset(
    {
        "dummy_update",
        "dummy_update_batch",
        "update_block",
        "update_range",
        "plan_update_range",
        "append_blocks",
        "plan_append_blocks",
    }
)

#: Modules where agent classes live.
AGENT_MODULES = (
    "repro/core/agent.py",
    "repro/core/volatile.py",
    "repro/core/nonvolatile.py",
)

GUARD_NAME = "_exclusive"


def _enters_tripwire(method: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for sub in ast.walk(method):
        if not isinstance(sub, ast.With):
            continue
        for item in sub.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == GUARD_NAME
                and isinstance(expr.func.value, ast.Name)
                and expr.func.value.id == "self"
            ):
                return True
    return False


@register
class ConcurrencyTripwireRule(Rule):
    code = "CON001"
    summary = "mutating agent primitives missing the _exclusive tripwire"
    contract = (
        "Every mutating agent primitive enters the _exclusive() "
        "tripwire, so unsynchronised concurrent mutation of header "
        "chains is detected at run time rather than corrupting state."
    )
    rationale = (
        "The concurrent engine (PR 5) serialises agent work per user; "
        "the tripwire is the canary that proves the scheduler never "
        "lets two mutations interleave."
    )
    dynamic_suite = "tests/test_concurrent.py, tests/test_agents.py"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not module.path.endswith(AGENT_MODULES):
            return []
        return list(self._check_module(module))

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for name in sorted(MUTATING_PRIMITIVES):
                method = methods.get(name)
                if method is None:
                    continue
                if not _enters_tripwire(method):
                    yield self.finding(
                        module,
                        method,
                        f"mutating primitive '{node.name}.{name}' does not enter "
                        "'with self._exclusive(...)'; concurrent re-entry would "
                        "corrupt state instead of raising ConcurrentAccessError",
                    )
            if node.name == "StegAgent":
                for name in sorted(MUTATING_PRIMITIVES - set(methods)):
                    yield self.finding(
                        module,
                        node,
                        f"inventoried mutating primitive 'StegAgent.{name}' not found; "
                        "update MUTATING_PRIMITIVES in repro.lint.rules.concurrency "
                        "if it was renamed",
                    )
