"""ENT001 — all entropy flows through the seed-derived crypto seam.

The twin-trace reproducibility contract (same seed + same workload =>
bit-identical volumes and traces) only holds if nothing inside
``src/repro`` draws from an ambient entropy source.  Randomness comes
from :class:`repro.crypto.prng.Sha256Prng` (seed-derived, spawnable) and
nowhere else; wall-clock time is equally banned because the simulated
latency clock is the only clock experiments may observe.

Whitelisted seams:

* ``crypto/prng.py`` — the one module allowed to define how entropy is
  derived (it is itself purely hash-based today, but the whitelist is
  the architectural statement).
* the ``fak_entropy`` parameter on key generation in
  ``service/facade.py`` — callers *inject* bytes; the facade never draws
  them itself, so there is nothing to whitelist lexically.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.core import Finding, Rule, SourceModule, register

#: Modules whose import (or use through any alias) is a finding.
BANNED_MODULES = ("random", "secrets", "uuid", "numpy.random")

#: Individual callables that are findings even though their home modules
#: (``os``, ``time``) are otherwise fine.
BANNED_ATTRIBUTES = ("os.urandom", "time.time")

#: Files exempt from the rule: the entropy seam itself.
WHITELISTED_FILES = ("repro/crypto/prng.py",)


def _is_banned_module(dotted: str) -> bool:
    return any(dotted == mod or dotted.startswith(mod + ".") for mod in BANNED_MODULES)


@register
class EntropyRule(Rule):
    code = "ENT001"
    summary = "entropy and wall-clock time outside the Sha256Prng seam"
    contract = (
        "All randomness and wall-clock reads flow through the seeded "
        "Sha256Prng seam in crypto/prng.py; random, numpy.random, "
        "os.urandom, secrets, and time.time are banned everywhere else."
    )
    rationale = (
        "Deniability requires free blocks indistinguishable from "
        "ciphertext and every experiment byte-replayable; one stray "
        "entropy source breaks both the dummy-traffic distribution and "
        "replay determinism."
    )
    dynamic_suite = "tests/test_prng_and_keys.py, tests/test_properties.py"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if module.path.endswith(WHITELISTED_FILES):
            return []
        return list(self._walk(module, module.tree))

    def _walk(self, module: SourceModule, node: ast.AST) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Import):
                yield from self._check_import(module, child)
            elif isinstance(child, ast.ImportFrom):
                yield from self._check_import_from(module, child)
            elif isinstance(child, ast.Attribute):
                dotted = module.resolve(child)
                if dotted is not None and self._banned_use(dotted):
                    yield self.finding(
                        module,
                        child,
                        f"entropy/clock source '{dotted}' outside the seed-derived "
                        "Sha256Prng seam; thread a Prng (or the simulated clock) instead",
                    )
                    continue  # report the outermost chain once
                yield from self._walk(module, child)
            else:
                yield from self._walk(module, child)

    @staticmethod
    def _banned_use(dotted: str) -> bool:
        return dotted in BANNED_ATTRIBUTES or _is_banned_module(dotted)

    def _check_import(self, module: SourceModule, node: ast.Import) -> Iterator[Finding]:
        for alias in node.names:
            if _is_banned_module(alias.name):
                yield self.finding(
                    module,
                    node,
                    f"import of entropy module '{alias.name}'; all randomness must "
                    "derive from repro.crypto.prng.Sha256Prng",
                )

    def _check_import_from(self, module: SourceModule, node: ast.ImportFrom) -> Iterator[Finding]:
        origin = node.module or ""
        if node.level:
            return  # relative imports stay inside repro and are checked at use
        for alias in node.names:
            dotted = f"{origin}.{alias.name}"
            if _is_banned_module(origin) or _is_banned_module(dotted):
                yield self.finding(
                    module,
                    node,
                    f"import of entropy source '{dotted}'; all randomness must "
                    "derive from repro.crypto.prng.Sha256Prng",
                )
            elif dotted in BANNED_ATTRIBUTES:
                yield self.finding(
                    module,
                    node,
                    f"import of '{dotted}'; use the Sha256Prng seam or the "
                    "simulated latency clock instead",
                )
