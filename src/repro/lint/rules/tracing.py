"""TRC001 — device paths batch their trace appends.

PR 2 made :class:`~repro.storage.trace.IoTrace` columnar precisely so
batched device calls append once per batch (``record_many``), not once
per event.  A ``trace.record(...)`` call inside a loop quietly reverts a
device path to per-event appends — correct output, an order of magnitude
slower, and invisible to the equivalence tests that only compare trace
contents.  This rule flags any per-event ``record`` call on a trace
receiver lexically inside a ``for``/``while`` body.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.core import Finding, Rule, SourceModule, register

#: Receiver identifiers treated as a trace object.
TRACE_RECEIVERS = frozenset({"trace", "_trace"})

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _is_trace_record(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "record":
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id in TRACE_RECEIVERS
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in TRACE_RECEIVERS
    return False


@register
class TraceBatchingRule(Rule):
    code = "TRC001"
    summary = "per-event trace.record() calls inside loops"
    contract = (
        "Hot loops emit trace events through the columnar record_many "
        "batch API, never one record() call per event."
    )
    rationale = (
        "The benchmark floors assume columnar tracing; per-event "
        "appends regress the measured overhead and skew the replay "
        "timelines the analysis notebooks consume."
    )
    dynamic_suite = "tests/test_trace_columnar.py, benchmarks/"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        return list(self._walk(module.tree, in_loop=False, module=module))

    def _walk(self, node: ast.AST, in_loop: bool, module: SourceModule) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call) and in_loop and _is_trace_record(child):
                yield self.finding(
                    module,
                    child,
                    "per-event trace.record() inside a loop; batch the events and "
                    "append once with trace.record_many()",
                )
            child_in_loop = in_loop or isinstance(child, _LOOPS)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A nested function body is not executed by the loop itself.
                yield from self._walk(child, in_loop=False, module=module)
            else:
                yield from self._walk(child, in_loop=child_in_loop, module=module)
