"""EXC001 — broad except clauses must not swallow an injected crash.

PR 7's fault-injection sweeps rely on
:class:`~repro.errors.InjectedCrashError` propagating from the doomed
device call all the way out of the workload, so the test can image the
"dead" volume and check recovery.  A ``except:`` /
``except Exception:`` / ``except BaseException:`` handler that absorbs
the error silently turns a crash test into a no-op.

A broad handler passes only when it provably re-raises or inspects the
error: it contains a bare ``raise``, or it binds the exception
(``except BaseException as error:``) and actually uses that name —
relaying it to a future, collecting it for a later re-raise, chaining
``raise X from error``.  Everything else is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.core import Finding, Rule, SourceModule, register

BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Tuple):
        return any(_name_of(element) in BROAD_NAMES for element in node.elts)
    return _name_of(node) in BROAD_NAMES


def _name_of(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _reraises_or_uses(handler: ast.ExceptHandler) -> bool:
    for sub in ast.walk(handler):
        if isinstance(sub, ast.Raise) and sub.exc is None:
            return True  # bare re-raise
        if (
            handler.name is not None
            and isinstance(sub, ast.Name)
            and sub.id == handler.name
            and isinstance(sub.ctx, ast.Load)
        ):
            return True  # the bound error is relayed, collected, or chained
    return False


@register
class BroadExceptRule(Rule):
    code = "EXC001"
    summary = "broad except clauses that could swallow InjectedCrashError"
    contract = (
        "Broad except clauses either re-raise or record the failure on "
        "a future; none may silently swallow InjectedCrashError."
    )
    rationale = (
        "Fault injection models a dead process by letting "
        "InjectedCrashError unwind the stack; a swallowing handler "
        "would let the 'dead' process keep issuing I/O and fake "
        "crash-consistency results."
    )
    dynamic_suite = "tests/test_crash_recovery.py, tests/test_durability.py"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        return list(self._walk(module))

    def _walk(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _reraises_or_uses(node):
                continue
            caught = "bare except" if node.type is None else f"except {ast.unparse(node.type)}"
            yield self.finding(
                module,
                node,
                f"{caught} swallows InjectedCrashError (and every other error); "
                "catch the specific repro.errors type, re-raise, or relay the "
                "bound exception",
            )
