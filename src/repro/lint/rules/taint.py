"""SEC001/SEC002 — secret material must be sealed before it is observable.

Both rules consume one shared :class:`~repro.lint.dataflow.TaintEngine`
run per lint invocation (cached on the :class:`Project`):

* **SEC001** — a source (key attribute, ``fak_entropy``, decrypted
  plaintext) reaches an adversary-observable sink — a backend write, a
  trace row, ``os.write``, an exception message — without passing
  through a cipher seal or a hash.  The finding reports the full
  function chain from the source read to the sink call.
* **SEC002** — secret material reaches string formatting at all:
  f-strings, ``str()``/``repr()``/``format()``/``print``, ``%``
  interpolation, logging calls, or a ``__repr__``/``__str__`` return.
  Also flagged syntactically: a ``@dataclass`` with a secret-named
  field (``secret``, ``header_key``, ``content_key``, ``key`` …) whose
  auto-generated ``repr`` would print the key bytes — declare it with
  ``field(repr=False)``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, Project, ProjectRule, register
from repro.lint.dataflow import SEC_FLOW, SEC_FORMAT, SOURCE_ATTRS, TaintEngine, TaintFinding


def _taint_findings(project: Project) -> list[TaintFinding]:
    cached = getattr(project, "_taint_findings", None)
    if cached is None:
        cached = TaintEngine(project.graph).run()
        project._taint_findings = cached  # type: ignore[attr-defined]
    return cached


@register
class SecretFlowRule(ProjectRule):
    code = SEC_FLOW
    summary = "unsanitized secret flows to device, trace, or exception sinks"
    contract = (
        "Key and plaintext material never reaches a device write, an "
        "IoTrace record, or an exception message without first passing "
        "through the volume cipher (seal/encrypt) or a hash."
    )
    rationale = (
        "The deniability argument is that a seized disk shows only "
        "ciphertext and random bytes; the dynamic snapshot-diff "
        "adversary samples executions, this rule proves the property "
        "for every interprocedural path."
    )
    dynamic_suite = "tests/test_seized_disk.py, tests/test_attacks.py"

    def check_project(self, project: Project) -> Iterable[Finding]:
        for flow in _taint_findings(project):
            if flow.code != self.code:
                continue
            chain = " -> ".join(flow.chain)
            yield Finding(
                flow.path,
                flow.line,
                flow.col,
                self.code,
                f"unsanitized secret flow: {flow.source_label} reaches "
                f"{flow.sink_label} (flow chain: {chain}); seal with the volume "
                "cipher or hash before it crosses the crypto boundary",
            )


@register
class SecretFormatRule(ProjectRule):
    code = SEC_FORMAT
    summary = "secret material reaching string formatting, repr, or logging"
    contract = (
        "Secrets are never formatted, logged, printed, or repr'd — "
        "including through dataclass auto-generated __repr__; secret "
        "fields must be declared with field(repr=False)."
    )
    rationale = (
        "Debug output routinely lands in CI logs, shell history, and "
        "core dumps — surfaces the threat model treats as seizable; a "
        "key that can be str()'d is a key that leaks."
    )
    dynamic_suite = "tests/test_seized_disk.py, tests/test_prng_and_keys.py"

    def check_project(self, project: Project) -> Iterable[Finding]:
        for flow in _taint_findings(project):
            if flow.code != self.code:
                continue
            chain = " -> ".join(flow.chain)
            yield Finding(
                flow.path,
                flow.line,
                flow.col,
                self.code,
                f"secret material reaches {flow.sink_label} (flow chain: {chain}); "
                "keys and plaintext must never be formatted, logged, or repr'd",
            )
        for module in project.modules:
            yield from self._dataclass_reprs(module)

    def _dataclass_reprs(self, module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not _auto_repr_dataclass(node):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id in SOURCE_ATTRS
                    and not _repr_suppressed(stmt.value)
                ):
                    yield self.finding(
                        module,
                        stmt,
                        f"dataclass auto-repr exposes secret field "
                        f"'{node.name}.{stmt.target.id}'; declare it with "
                        "field(repr=False) so debug output never prints key bytes",
                    )


def _auto_repr_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Name) and dec.id == "dataclass":
            return True
        if isinstance(dec, ast.Call):
            func = dec.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if name != "dataclass":
                continue
            for keyword in dec.keywords:
                if (
                    keyword.arg == "repr"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                ):
                    return False
            return True
    return False


def _repr_suppressed(value: ast.expr | None) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
    if name != "field":
        return False
    return any(
        keyword.arg == "repr"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is False
        for keyword in value.keywords
    )
