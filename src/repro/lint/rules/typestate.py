"""TYP001/TYP002 — lifecycle typestate over the control-flow graph.

CLS001 proves every lifecycle *callee* guards against the closed state;
these rules prove the *call sites*: no path through a function may use
a ``RawStorage``/``MmapFileBackend``/``JournalBackend``/
``HiddenVolumeService``/``Session``/``ConcurrentVolumeService`` value
after closing it, double-close a non-idempotent object, skip
``recover()`` between ``JournalBackend.open()`` and the first real use,
or let an exception edge escape with a locally-owned backend still open.

Each tracked value (a local name or a ``self.`` field) carries a set of
abstract states — ``created``, ``open``, ``flushed``, ``closed``,
``recovering`` — through :func:`repro.lint.absint.interpret`, joining at
CFG merges, so "closed in the except arm, open on the fall-through"
yields *may be closed* after the merge, which is exactly the fact a
may-warning needs.  Close effects cross function boundaries through
:func:`~repro.lint.absint.fixpoint_summaries`: a helper that closes its
parameter (or ``self``) transitions the caller's argument too.

Double-close is only reported when the resolved ``close`` body is not
*annotated idempotent* — a docstring containing "idempotent" or a
leading early-return guard (``if self._closed: return``), the two
spellings the tree actually uses.  The leak check (TYP002) fires when a
locally created, non-escaping value is still open on an edge into the
exceptional exit while some path does close it — the classic
"close() at the end, exception skips it" shape; ``with`` bodies and
``finally`` blocks route those edges through the closing code, so the
fix the finding suggests also silences it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.lint.absint import Domain, fixpoint_summaries, interpret
from repro.lint.cfg import (
    EDGE_EXC,
    NODE_WITH_EXIT,
    CfgNode,
    ControlFlowGraph,
    Edge,
)
from repro.lint.core import Finding, Project, ProjectRule, register
from repro.lint.graph import CallGraph, ClassInfo, FunctionNode
from repro.lint.rules.closedguards import GUARD_SPECS

TYP_USE = "TYP001"
TYP_LEAK = "TYP002"

#: Abstract lifecycle states.
CREATED = "created"
OPEN = "open"
FLUSHED = "flushed"
CLOSED = "closed"
RECOVERING = "recovering"

#: States in which the object is usable.
_USABLE = frozenset({CREATED, OPEN, FLUSHED})

#: Methods that (re)open, per state they establish; ``open`` on the
#: journal lands in ``recovering`` — `recover()` must run before use.
_OPENER_STATES = {"create": OPEN, "open": OPEN, "recover": OPEN}
_JOURNAL_OPENER_STATES = {"create": OPEN, "open": RECOVERING, "recover": OPEN}

_FLUSHERS = frozenset({"flush", "sync"})

_DEFAULT_CLOSERS = frozenset({"close"})
_SESSION_CLOSERS = frozenset({"close", "logout"})

#: Constructors that yield a ready-to-use object vs. a shell that still
#: needs ``create()``/``open()`` (the file-backed classes).
_CONSTRUCTOR_STATES = {
    "RawStorage": OPEN,
    "MmapFileBackend": CREATED,
    "JournalBackend": CREATED,
    "HiddenVolumeService": OPEN,
    "Session": OPEN,
    "ConcurrentVolumeService": OPEN,
}

_SAFE_WHEN_CLOSED = {spec.class_name: spec.whitelist | {"closed"} for spec in GUARD_SPECS}

_MAX_STATES_PER_PATH = 12


def _closers_for(class_name: str) -> frozenset[str]:
    return _SESSION_CLOSERS if class_name == "Session" else _DEFAULT_CLOSERS


def _opener_states(class_name: str) -> dict[str, str]:
    return _JOURNAL_OPENER_STATES if class_name == "JournalBackend" else _OPENER_STATES


#: One abstract fact: an access path may be in ``state`` since ``line``.
Fact = tuple[str, str, int]
#: Domain state: the frozenset of facts (absent path = untracked).
Env = frozenset[Fact]


def _states_of(env: Env, path: str) -> set[tuple[str, int]]:
    return {(state, line) for p, state, line in env if p == path}


def _set_path(env: Env, path: str, state: str, line: int) -> Env:
    return frozenset(f for f in env if f[0] != path) | {(path, state, line)}


def _drop_path(env: Env, path: str) -> Env:
    return frozenset(f for f in env if f[0] != path)


def _path_of(expr: ast.expr) -> str | None:
    """Access path of a receiver expression: ``x`` or ``self.attr``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    return None


@dataclass(frozen=True)
class _Creation:
    """How a value was created by an expression, if lifecycle-typed."""

    class_name: str
    state: str


class _Lifecycle:
    """Project-wide context shared by both rules: types and summaries."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.classes: dict[str, ClassInfo] = {
            info.qualname: info
            for info in graph.classes.values()
            if self._lifecycle_name(info) is not None
        }
        #: qualname → frozenset of parameter indices the function may
        #: close (0 is ``self`` for bound methods).
        self.close_effects: dict[str, frozenset[int]] = fixpoint_summaries(
            graph, lambda fn: frozenset(), self._close_summary
        )
        #: close methods proven idempotent, by class qualname.
        self._idempotent: dict[str, bool] = {}

    def _lifecycle_name(self, info: ClassInfo) -> str | None:
        if info.name in _CONSTRUCTOR_STATES:
            return info.name
        for ancestor in self.graph.mro(info):
            if ancestor.name in _CONSTRUCTOR_STATES:
                return ancestor.name
        return None

    def lifecycle_class(self, info: ClassInfo | None) -> str | None:
        if info is None:
            return None
        if info.qualname in self.classes:
            return self._lifecycle_name(info)
        return None

    def class_of_path(self, fn: FunctionNode, path: str) -> str | None:
        """Lifecycle class name of an access path, or ``None``."""
        types = self._path_types(fn)
        return types.get(path)

    def _path_types(self, fn: FunctionNode) -> dict[str, str]:
        cached = getattr(fn, "_lifecycle_path_types", None)
        if cached is not None:
            return cached
        types: dict[str, str] = {}
        for name, qualname in self.graph._local_types(fn).items():
            lifecycle = self.lifecycle_class(self.graph.classes.get(qualname))
            if lifecycle is not None:
                types[name] = lifecycle
        if fn.cls is not None:
            own = self.lifecycle_class(fn.cls)
            if own is not None:
                types["self"] = own
            for ancestor in self.graph.mro(fn.cls):
                for attr, qualname in ancestor.attr_types.items():
                    lifecycle = self.lifecycle_class(self.graph.classes.get(qualname))
                    if lifecycle is not None:
                        types.setdefault(f"self.{attr}", lifecycle)
        # Classmethod factories (``JournalBackend.open(path)``) are not
        # typed by the call graph's local inference; add them here.
        for stmt in ast.walk(fn.node):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                creation = self.creation_of(fn, stmt.value)
                if creation is not None:
                    types.setdefault(stmt.targets[0].id, creation.class_name)
        fn._lifecycle_path_types = types  # type: ignore[attr-defined]
        return types

    def creation_of(self, fn: FunctionNode, expr: ast.expr) -> _Creation | None:
        """Lifecycle creation an expression performs, if recognisable."""
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        # Direct constructor: ``RawStorage(...)``.
        dotted = fn.module.resolve(func)
        if dotted is None and isinstance(func, ast.Name):
            dotted = func.id
        if dotted is not None:
            info = self.graph._class_for_dotted(dotted)
            lifecycle = self.lifecycle_class(info)
            if lifecycle is not None:
                return _Creation(lifecycle, _CONSTRUCTOR_STATES[lifecycle])
        # Classmethod factory: ``MmapFileBackend.open(path)``.
        if isinstance(func, ast.Attribute):
            base = fn.module.resolve(func.value)
            if base is None and isinstance(func.value, ast.Name):
                base = func.value.id
            if base is not None:
                info = self.graph._class_for_dotted(base)
                lifecycle = self.lifecycle_class(info)
                if lifecycle is not None:
                    state = _opener_states(lifecycle).get(func.attr)
                    if state is not None:
                        return _Creation(lifecycle, state)
        # Factory function resolved through the call graph, whose return
        # value the summaries know to be a freshly opened object.
        site = fn.call_index.get(id(expr))
        if site is not None:
            for target, _bound in site.targets:
                returned = self.returns_lifecycle(target)
                if returned is not None:
                    return returned
        return None

    def returns_lifecycle(self, fn: FunctionNode) -> _Creation | None:
        """Whether a function returns a freshly created lifecycle value."""
        cached = getattr(fn, "_lifecycle_returns", "unset")
        if cached != "unset":
            return cached  # type: ignore[return-value]
        # Seed before recursing: a self-recursive factory resolves to
        # "unknown" instead of looping.
        fn._lifecycle_returns = None  # type: ignore[attr-defined]
        result: _Creation | None = None
        if fn.name not in ("__init__",):
            for stmt in ast.walk(fn.node):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    creation = self.creation_of(fn, stmt.value)
                    if creation is not None:
                        result = creation
                        break
        fn._lifecycle_returns = result  # type: ignore[attr-defined]
        return result

    def close_is_idempotent(self, class_name: str, closer: str) -> bool:
        """Whether ``class_name.closer()`` tolerates repeated calls.

        Detected from the resolved method body: a docstring containing
        "idempotent" or a leading ``if <flag>: return`` guard.
        """
        key = f"{class_name}.{closer}"
        cached = self._idempotent.get(key)
        if cached is not None:
            return cached
        verdicts: list[bool] = []
        for info in self.graph.classes.values():
            if self._lifecycle_name(info) != class_name:
                continue
            method = info.methods.get(closer)
            if method is not None:
                verdicts.append(_annotated_idempotent(method.node))
        # Unknown bodies (class not in the linted set) default to
        # idempotent: may-warnings need evidence, not absence of it.
        result = all(verdicts) if verdicts else True
        self._idempotent[key] = result
        return result

    def _close_summary(
        self, fn: FunctionNode, summaries: dict[str, frozenset[int]]
    ) -> frozenset[int]:
        params = _param_names(fn)
        positions = {name: index for index, name in enumerate(params)}
        closed: set[int] = set(summaries.get(fn.qualname, frozenset()))
        for call in ast.walk(fn.node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if isinstance(func, ast.Attribute):
                path = _path_of(func.value)
                if path is not None:
                    owner = self.class_of_path(fn, path)
                    if (
                        owner is not None
                        and func.attr in _closers_for(owner)
                        and path in positions
                    ):
                        closed.add(positions[path])
            site = fn.call_index.get(id(call))
            if site is None or not site.targets:
                continue
            for target, bound in site.targets:
                effect = summaries.get(target.qualname)
                if not effect:
                    continue
                offset = 1 if bound else 0
                if bound and 0 in effect and isinstance(func, ast.Attribute):
                    receiver_path = _path_of(func.value)
                    if receiver_path in positions:
                        closed.add(positions[receiver_path])
                for arg_index, arg in enumerate(call.args):
                    if isinstance(arg, ast.Name) and arg.id in positions:
                        if arg_index + offset in effect:
                            closed.add(positions[arg.id])
        return frozenset(closed)


def _param_names(fn: FunctionNode) -> list[str]:
    args = fn.node.args
    return [arg.arg for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


def _annotated_idempotent(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    doc = ast.get_docstring(node)
    if doc is not None and "idempotent" in doc.lower():
        return True
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]  # skip the docstring
    if body and isinstance(body[0], ast.If):
        guard = body[0]
        if guard.body and isinstance(guard.body[0], ast.Return) and not guard.orelse:
            return True
    return False


@dataclass(frozen=True)
class _Report:
    """One deduplicated finding candidate from the typestate walk."""

    code: str
    line: int
    col: int
    message: str


class _TypestateDomain(Domain[Env]):
    """Lifecycle facts per access path; checks fire inside ``transfer``."""

    def __init__(self, analysis: "_FunctionTypestate"):
        self.analysis = analysis

    def entry_state(self, cfg: ControlFlowGraph) -> Env:
        return self.analysis.entry_env

    def join(self, left: Env, right: Env) -> Env:
        merged = left | right
        # Cap per-path fact growth (distinct lines accumulate in loops).
        by_path: dict[tuple[str, str], list[Fact]] = {}
        for fact in merged:
            by_path.setdefault((fact[0], fact[1]), []).append(fact)
        kept: set[Fact] = set()
        for facts in by_path.values():
            facts.sort(key=lambda f: f[2])
            kept.update(facts[:_MAX_STATES_PER_PATH])
        return frozenset(kept)

    def transfer(self, node: CfgNode, state: Env, cfg: ControlFlowGraph) -> Env:
        return self.analysis.transfer(node, state)

    def edge_state(self, edge: Edge, pre: Env, post: Env) -> Env:
        """Exc edges carry pre-state, except for discharges.

        A ``close()`` that raises mid-way still ends the caller's
        ownership; carrying the stale open fact would launder it through
        every enclosing ``finally`` and flag the close site as a leak.
        A path counts as discharged when the node leaves it closed or
        forgets it entirely.
        """
        if edge.kind != EDGE_EXC:
            return post
        post_states: dict[str, set[str]] = {}
        for path, state, _line in post:
            post_states.setdefault(path, set()).add(state)
        kept: set[Fact] = set()
        discharged: set[str] = set()
        for fact in pre:
            if post_states.get(fact[0], set()) <= {CLOSED}:
                discharged.add(fact[0])
            else:
                kept.add(fact)
        kept.update(fact for fact in post if fact[0] in discharged)
        return frozenset(kept)


class _FunctionTypestate:
    """Typestate interpretation of one function body."""

    def __init__(self, context: _Lifecycle, fn: FunctionNode):
        self.context = context
        self.graph = context.graph
        self.fn = fn
        self.reports: dict[tuple[str, int, str], _Report] = {}
        self.entry_env = self._entry_env()
        #: Paths the checker may not warn about (state unknown).
        self.escaped = _escaped_names(fn.node)
        self.created_lines: dict[str, int] = {}

    def _entry_env(self) -> Env:
        facts: set[Fact] = set()
        closer_names = set()
        if self.fn.cls is not None:
            own = self.context.lifecycle_class(self.fn.cls)
            if own is not None:
                closer_names = _closers_for(own)
        for path in _param_names(self.fn):
            lifecycle = self.context.class_of_path(self.fn, path)
            if lifecycle is None:
                continue
            if path == "self" and (
                self.fn.name in closer_names or self.fn.name.startswith("_")
            ):
                # Teardown helpers legitimately run on a closing object.
                continue
            facts.add((path, OPEN, self.fn.node.lineno))
        return frozenset(facts)

    # -- the transfer function ---------------------------------------------------------

    def transfer(self, node: CfgNode, env: Env) -> Env:
        stmt = node.stmt
        if stmt is None:
            return env
        if node.kind == NODE_WITH_EXIT and isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                path = (
                    _path_of(item.optional_vars) if item.optional_vars is not None else None
                )
                if path is None:
                    path = _path_of(item.context_expr)
                if path is not None and self.context.class_of_path(self.fn, path):
                    env = _set_path(env, path, CLOSED, stmt.lineno)
            return env
        env = self._apply_calls(stmt, env)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            env = self._apply_assign(stmt.targets[0], stmt.value, stmt.lineno, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            env = self._apply_assign(stmt.target, stmt.value, stmt.lineno, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    env = self._apply_assign(
                        item.optional_vars, item.context_expr, stmt.lineno, env
                    )
        return env

    def _apply_assign(
        self, target: ast.expr, value: ast.expr, line: int, env: Env
    ) -> Env:
        path = _path_of(target)
        if path is None:
            return env
        creation = self.context.creation_of(self.fn, value)
        if creation is not None:
            if not path.startswith("self."):
                self.created_lines.setdefault(path, line)
            return _set_path(env, path, creation.state, line)
        source = _path_of(value)
        if source is not None:
            facts = _states_of(env, source)
            if facts:
                env = _drop_path(env, path)
                return env | {(path, state, fact_line) for state, fact_line in facts}
        if self.context.class_of_path(self.fn, path) is not None:
            # Reassigned from something we cannot see: forget.
            return _drop_path(env, path)
        return env

    def _apply_calls(self, stmt: ast.stmt, env: Env) -> Env:
        for call in _calls_in(stmt):
            env = self._apply_call(call, stmt, env)
        return env

    def _apply_call(self, call: ast.Call, stmt: ast.stmt, env: Env) -> Env:
        func = call.func
        if isinstance(func, ast.Attribute):
            path = _path_of(func.value)
            if path is not None:
                owner = self.context.class_of_path(self.fn, path)
                if owner is not None:
                    env = self._apply_method(call, stmt, path, owner, func.attr, env)
            elif func.attr in _DEFAULT_CLOSERS and isinstance(func.value, ast.Attribute):
                # Manual component teardown (``svc.storage.close()``):
                # the owner's obligation is being discharged below the
                # facade's abstraction — stop tracking the owner rather
                # than claim it is cleanly closed.
                base = _path_of(func.value.value)
                if (
                    base is not None
                    and self.context.class_of_path(self.fn, base) is not None
                    and _states_of(env, base)
                ):
                    env = _drop_path(env, base)
        # Callee close-effects on tracked arguments.
        site = self.fn.call_index.get(id(call))
        if site is not None:
            for target, bound in site.targets:
                effect = self.context.close_effects.get(target.qualname)
                if not effect:
                    continue
                offset = 1 if bound else 0
                if bound and 0 in effect and isinstance(func, ast.Attribute):
                    receiver = _path_of(func.value)
                    if receiver is not None and _states_of(env, receiver):
                        env = _set_path(env, receiver, CLOSED, stmt.lineno)
                for arg_index, arg in enumerate(call.args):
                    arg_path = _path_of(arg)
                    if (
                        arg_path is not None
                        and arg_index + offset in effect
                        and _states_of(env, arg_path)
                    ):
                        env = _set_path(env, arg_path, CLOSED, stmt.lineno)
        return env

    def _apply_method(
        self,
        call: ast.Call,
        stmt: ast.stmt,
        path: str,
        owner: str,
        method: str,
        env: Env,
    ) -> Env:
        states = _states_of(env, path)
        line, col = call.lineno, call.col_offset
        openers = _opener_states(owner)
        if method in _closers_for(owner):
            closed_states = {(s, ln) for s, ln in states if s == CLOSED}
            if closed_states and not self.context.close_is_idempotent(owner, method):
                first = min(ln for _s, ln in closed_states)
                self._report(
                    TYP_LEAK,
                    line,
                    col,
                    f"double close: {owner} value '{path}' may already be closed "
                    f"(closed at line {first}) and {owner}.{method}() is not "
                    "annotated idempotent; guard the second call or add an "
                    "early-return guard to the close body",
                )
            return _set_path(env, path, CLOSED, stmt.lineno)
        if method in openers:
            return _set_path(env, path, openers[method], stmt.lineno)
        if method in _FLUSHERS:
            env = self._checked_use(path, owner, method, states, line, col, env)
            if any(s in _USABLE for s, _ in states):
                kept = frozenset(f for f in env if f[0] != path or f[1] not in _USABLE)
                return kept | {(path, FLUSHED, stmt.lineno)}
            return env
        if method in _SAFE_WHEN_CLOSED.get(owner, frozenset()) or method.startswith("__"):
            return env
        return self._checked_use(path, owner, method, states, line, col, env)

    def _checked_use(
        self,
        path: str,
        owner: str,
        method: str,
        states: set[tuple[str, int]],
        line: int,
        col: int,
        env: Env,
    ) -> Env:
        closed = [ln for s, ln in states if s == CLOSED]
        if closed:
            self._report(
                TYP_USE,
                line,
                col,
                f"use after close: {owner} value '{path}' may be closed "
                f"(closed at line {min(closed)}) when '.{method}()' is called; "
                "re-open it or restructure so no path closes it first",
            )
        recovering = [ln for s, ln in states if s == RECOVERING]
        if recovering and owner == "JournalBackend":
            self._report(
                TYP_USE,
                line,
                col,
                f"journal used before recovery: '{path}' comes from "
                f"JournalBackend.open() at line {min(recovering)} and "
                f"'.{method}()' runs before recover(); a crash-recovered "
                "journal must replay its intent log first",
            )
        return env

    def _report(self, code: str, line: int, col: int, message: str) -> None:
        self.reports.setdefault((code, line, message), _Report(code, line, col, message))

    # -- the leak check ----------------------------------------------------------------

    def check_leaks(self, cfg: ControlFlowGraph, domain: _TypestateDomain) -> None:
        result = interpret(cfg, domain)
        ever_closed: set[str] = set()
        for env in result.post.values():
            for path, state, _line in env:
                if state == CLOSED:
                    ever_closed.add(path)
        reported: set[str] = set()
        for edge in cfg.preds(cfg.exc_exit):
            pre = result.state_before(edge.src)
            post = result.state_after(edge.src)
            if pre is None or post is None:
                continue
            carried = domain.edge_state(edge, pre, post)
            for path, state, opened_line in sorted(carried):
                if state not in (OPEN, FLUSHED, RECOVERING):
                    continue
                if path in reported or path not in self.created_lines:
                    continue
                if path in self.escaped or path not in ever_closed:
                    continue
                owner = self.context.class_of_path(self.fn, path) or "lifecycle"
                node = cfg.nodes[edge.src]
                leak_line = node.line or opened_line
                reported.add(path)
                self._report(
                    TYP_LEAK,
                    leak_line,
                    0,
                    f"exception leak: {owner} value '{path}' (created at line "
                    f"{self.created_lines[path]}) is still open when the "
                    f"exception raised at line {leak_line} unwinds; close it "
                    "in a finally block or hold it in a with statement",
                )


def _header_exprs(stmt: ast.AST) -> list[ast.expr] | None:
    """Expressions a compound statement's own CFG node evaluates.

    ``None`` means the statement is simple: walk all of it.  Bodies of
    compounds have their own CFG nodes, so walking them here would
    apply every call effect twice (and at the wrong program point).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, ast.ExceptHandler)):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return None


def _calls_in(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Calls the statement's own CFG node evaluates (not nested scopes)."""
    headers = _header_exprs(stmt)
    roots: list[ast.AST] = list(headers) if headers is not None else [stmt]
    stack = roots
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Lambda):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


def _escaped_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Local names whose object may outlive the function.

    Returned/yielded values, attribute/subscript stores, container
    literals, and argument positions all hand the object to code this
    function cannot see; the leak check skips them, trading recall for a
    zero-noise warning.
    """
    escaped: set[str] = set()

    def note(expr: ast.expr | None) -> None:
        if expr is None:
            return
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name):
                escaped.add(sub.id)

    for sub in ast.walk(node):
        if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
            note(sub.value)
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    note(sub.value)
            if isinstance(sub.value, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
                note(sub.value)
        elif isinstance(sub, ast.Call):
            for arg in sub.args:
                if not isinstance(arg, ast.Name):
                    continue
                func = sub.func
                closerish = isinstance(func, ast.Attribute) and func.attr in (
                    "close",
                    "append",  # container growth still escapes
                )
                if closerish and func.attr == "close":
                    continue
                escaped.add(arg.id)
            for keyword in sub.keywords:
                note(keyword.value)
    return escaped


def _function_reports(context: _Lifecycle, fn: FunctionNode) -> list[_Report]:
    types = context._path_types(fn)
    if not types:
        return []
    analysis = _FunctionTypestate(context, fn)
    domain = _TypestateDomain(analysis)
    cfg = context.graph.cfg_of(fn.qualname)
    analysis.check_leaks(cfg, domain)
    return sorted(analysis.reports.values(), key=lambda r: (r.line, r.col, r.message))


def _lifecycle_context(project: Project) -> _Lifecycle:
    cached = getattr(project, "_lifecycle_context", None)
    if cached is None:
        cached = _Lifecycle(project.graph)
        project._lifecycle_context = cached  # type: ignore[attr-defined]
    return cached


def _all_reports(project: Project) -> dict[str, list[tuple[FunctionNode, _Report]]]:
    cached = getattr(project, "_typestate_reports", None)
    if cached is None:
        context = _lifecycle_context(project)
        cached = {TYP_USE: [], TYP_LEAK: []}
        for qualname in sorted(context.graph.functions):
            fn = context.graph.functions[qualname]
            for report in _function_reports(context, fn):
                cached[report.code].append((fn, report))
        project._typestate_reports = cached  # type: ignore[attr-defined]
    return cached


class _TypestateRule(ProjectRule):
    def check_project(self, project: Project) -> Iterable[Finding]:
        for fn, report in _all_reports(project)[self.code]:
            yield Finding(
                fn.module.path,
                report.line,
                report.col,
                self.code,
                f"{report.message} [in {fn.display}]",
            )


@register
class UseAfterCloseRule(_TypestateRule):
    code = TYP_USE
    summary = "lifecycle value may be used after close or before recovery"
    contract = (
        "No path through any function uses a RawStorage, MmapFileBackend, "
        "JournalBackend, HiddenVolumeService, Session, or "
        "ConcurrentVolumeService value after a closer ran, nor a "
        "crash-opened journal before recover() replays its intent log."
    )
    rationale = (
        "CLS001 makes the callee raise; this rule removes the raise "
        "from the reachable set — a closed backend reached on any path "
        "would otherwise surface as a runtime ClosedError in exactly "
        "the crash-recovery scenarios the paper's durability argument "
        "depends on."
    )
    dynamic_suite = "tests/test_closed_guards.py, tests/test_crash_recovery.py"


@register
class LifecycleLeakRule(_TypestateRule):
    code = TYP_LEAK
    summary = "double-close without idempotence, or open value leaked on an exception edge"
    contract = (
        "A lifecycle value is closed at most once unless its close body "
        "is annotated idempotent, and a locally created value that some "
        "path closes is closed on *every* path, exception edges "
        "included (with/finally count as closing)."
    )
    rationale = (
        "A leaked mmap keeps the plaintext view alive past logout and a "
        "non-idempotent double close corrupts teardown ordering; both "
        "undermine the seized-disk argument precisely on the error "
        "paths the dynamic suite rarely exercises."
    )
    dynamic_suite = "tests/test_crash_recovery.py, tests/test_service_facade.py"
