"""OBL001/OBL002 — device access must be control-flow independent of secrets.

SEC001 catches secret *data* reaching a sink; these rules catch secret
*decisions*.  The paper's deniability argument needs the observable
access pattern — which blocks, how many, in what order — to be a
function of public inputs only, so even ``if key_matches: extra_write()``
(no secret byte ever touches the device) breaks the contract: the
adversary counts writes.

The mechanism is classic implicit-flow tracking rebuilt on the CFG:

* a branch whose test reads secret-tainted data taints the program
  counter for the branch's control-dependence region — every node from
  the branch up to (excluding) its immediate post-dominator;
* **OBL001** flags any observable event inside such a region: a device
  write, a backend write, a trace record, a plan-step construction, or
  a PRNG draw (draw *count* is observable through every later value of
  the shared deterministic stream), with the finding carrying the
  branch → sink witness path;
* **OBL002** measures planners (``plan*`` methods): each arm of a
  secret branch gets an interval count of plan-step emissions via the
  widened interval domain; arms whose intervals cannot overlap emit
  observably different plans, which is a shape leak even if every
  individual step looks innocent.

Taint is comparison-propagating: ``key == probe`` is public *data* (a
bool) but branching on it IS the leak, so for PC purposes comparisons
keep taint — except ``is None``/``is not None`` presence checks, the
idiom for "is there a hidden volume *configured*", which is public by
construction here (the decoy password always configures one).
Functions returning secrets propagate through
:func:`~repro.lint.absint.fixpoint_summaries` call-graph summaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.lint.absint import Domain, fixpoint_summaries, interpret
from repro.lint.cfg import (
    EDGE_FALSE,
    EDGE_TRUE,
    EXCEPTIONAL_KINDS,
    NODE_BRANCH,
    CfgNode,
    ControlFlowGraph,
)
from repro.lint.core import Finding, Project, ProjectRule, register
from repro.lint.dataflow import (
    DEVICE_SINK_NAMES,
    SANITIZER_CALLS,
    SOURCE_ATTRS,
    SOURCE_CALLS,
    SOURCE_PARAMS,
    TRACE_SINK_METHODS,
)
from repro.lint.graph import CallGraph, FunctionNode, _expr_text

OBL_SINK = "OBL001"
OBL_SHAPE = "OBL002"

#: Plan-step constructors; building one is an emission event.
STEP_CONSTRUCTORS = frozenset({"ReadStep", "WriteStep", "CycleStep", "ResealStep"})

#: Sha256Prng draw methods; the draw *count* shifts the shared stream.
PRNG_METHODS = frozenset(
    {
        "random_bytes",
        "random",
        "randint",
        "randrange",
        "choice",
        "shuffle",
        "sample",
        "permutation",
        "expovariate",
        "gauss",
        "spawn",
    }
)

#: Receiver spellings that denote the deterministic PRNG stream.
PRNG_RECEIVERS = frozenset({"prng", "rng", "_prng", "_rng"})

#: Observers whose output is public even when the input is secret
#: (structure, not content).  Narrower than the data-taint list: for PC
#: purposes ``bool``/``hash``/``int`` of a secret still leaks bits.
PC_DECLASSIFIERS = frozenset({"len", "type", "isinstance", "id"})

_MAX_TAINT_PASSES = 4


# --------------------------------------------------------------------------------------
# Secret taint (comparison-propagating, interprocedural via summaries)
# --------------------------------------------------------------------------------------


def _is_none_check(node: ast.Compare) -> bool:
    return all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops) and all(
        isinstance(comp, ast.Constant) and comp.value is None for comp in node.comparators
    )


#: One taint label: the literal ``"secret"`` or ``("param", position)``.
Label = str | tuple[str, int]
Labels = frozenset[Label]

_SECRET = "secret"
_EMPTY: Labels = frozenset()
_SECRET_ONLY: Labels = frozenset({_SECRET})


@dataclass(frozen=True)
class _FlowSummary:
    """How a function's return value relates to its inputs."""

    returns_secret: bool
    #: Parameter positions whose taint flows to the return value.
    returns_params: frozenset[int]


_CLEAN_SUMMARY = _FlowSummary(False, frozenset())


class _TaintScan:
    """Flow-insensitive label propagation for one function body.

    Every local carries a label set: ``"secret"`` for secret-derived
    data plus the positions of parameters it may depend on.  The param
    labels power the interprocedural :class:`_FlowSummary` — a resolved
    call is tainted by exactly the arguments the callee's summary says
    flow to its return, never by mere argument *presence* (so
    ``seal_payloads(key, ...)`` stays clean: the key goes in, only
    ciphertext comes out).
    """

    def __init__(self, fn: FunctionNode, summaries: dict[str, _FlowSummary] | None):
        self.fn = fn
        self.summaries = summaries or {}
        self.labels: dict[str, Labels] = {}
        self.param_names: list[str] = [
            arg.arg
            for arg in [
                *fn.node.args.posonlyargs,
                *fn.node.args.args,
                *fn.node.args.kwonlyargs,
            ]
        ]
        for index, name in enumerate(self.param_names):
            labels = {("param", index)}
            if name in SOURCE_PARAMS:
                labels.add(_SECRET)
            self.labels[name] = frozenset(labels)
        for _ in range(_MAX_TAINT_PASSES):
            before = dict(self.labels)
            self._pass()
            if self.labels == before:
                break

    def _pass(self) -> None:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                labels = self.labels_of(node.value)
                if labels:
                    for target in node.targets:
                        self._label_target(target, labels)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                labels = self.labels_of(node.value)
                if labels:
                    self._label_target(node.target, labels)
            elif isinstance(node, ast.AugAssign):
                labels = self.labels_of(node.value)
                if labels:
                    self._label_target(node.target, labels)

    def _label_target(self, target: ast.expr, labels: Labels) -> None:
        if isinstance(target, ast.Name):
            self.labels[target.id] = self.labels.get(target.id, _EMPTY) | labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._label_target(element, labels)
        elif isinstance(target, ast.Starred):
            self._label_target(target.value, labels)

    def is_tainted(self, expr: ast.expr | None) -> bool:
        """Whether an expression may carry secret-derived information."""
        return _SECRET in self.labels_of(expr)

    def any_secret(self) -> bool:
        """Whether any local in this function carries the secret label."""
        return any(_SECRET in labels for labels in self.labels.values())

    def labels_of(self, expr: ast.expr | None) -> Labels:
        if expr is None or isinstance(expr, ast.Constant):
            return _EMPTY
        if isinstance(expr, ast.Name):
            return self.labels.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Attribute):
            base = self.labels_of(expr.value)
            if expr.attr in SOURCE_ATTRS:
                return base | _SECRET_ONLY
            return base
        if isinstance(expr, ast.Compare):
            if _is_none_check(expr):
                return _EMPTY
            out = self.labels_of(expr.left)
            for comp in expr.comparators:
                out |= self.labels_of(comp)
            return out
        if isinstance(expr, ast.Call):
            return self._call_labels(expr)
        if isinstance(expr, ast.BoolOp):
            out = _EMPTY
            for value in expr.values:
                out |= self.labels_of(value)
            return out
        if isinstance(expr, ast.UnaryOp):
            return self.labels_of(expr.operand)
        if isinstance(expr, ast.BinOp):
            return self.labels_of(expr.left) | self.labels_of(expr.right)
        if isinstance(expr, (ast.Subscript, ast.Starred, ast.Await)):
            return self.labels_of(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = _EMPTY
            for element in expr.elts:
                out |= self.labels_of(element)
            return out
        if isinstance(expr, ast.IfExp):
            return (
                self.labels_of(expr.test)
                | self.labels_of(expr.body)
                | self.labels_of(expr.orelse)
            )
        return _EMPTY

    def _call_labels(self, expr: ast.Call) -> Labels:
        func = expr.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in PC_DECLASSIFIERS or name in SANITIZER_CALLS:
            return _EMPTY
        if name in SOURCE_CALLS:
            return _SECRET_ONLY
        site = self.fn.call_index.get(id(expr))
        if site is not None and site.targets:
            out = _EMPTY
            for target, bound in site.targets:
                summary = self.summaries.get(target.qualname, _CLEAN_SUMMARY)
                if summary.returns_secret:
                    out |= _SECRET_ONLY
                offset = 1 if bound else 0
                if bound and 0 in summary.returns_params and isinstance(
                    func, ast.Attribute
                ):
                    out |= self.labels_of(func.value)
                for position, arg in enumerate(expr.args):
                    if position + offset in summary.returns_params:
                        arg_expr = arg.value if isinstance(arg, ast.Starred) else arg
                        out |= self.labels_of(arg_expr)
            return out
        # Unresolved call: conservative pass-through of args + receiver.
        out = _EMPTY
        for arg in expr.args:
            out |= self.labels_of(arg.value if isinstance(arg, ast.Starred) else arg)
        for keyword in expr.keywords:
            out |= self.labels_of(keyword.value)
        if isinstance(func, ast.Attribute):
            out |= self.labels_of(func.value)
        return out


def _secret_summaries(graph: CallGraph) -> dict[str, _FlowSummary]:
    """qualname → how secrets/parameters flow to the return value."""

    def analyze(fn: FunctionNode, summaries: dict[str, _FlowSummary]) -> _FlowSummary:
        scan = _TaintScan(fn, summaries)
        returns_secret = False
        returns_params: set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                labels = scan.labels_of(node.value)
                if _SECRET in labels:
                    returns_secret = True
                returns_params.update(
                    label[1]
                    for label in labels
                    if isinstance(label, tuple) and label[0] == "param"
                )
        return _FlowSummary(returns_secret, frozenset(returns_params))

    return fixpoint_summaries(graph, lambda fn: _CLEAN_SUMMARY, analyze)


# --------------------------------------------------------------------------------------
# Sinks
# --------------------------------------------------------------------------------------


@dataclass(frozen=True)
class _Sink:
    line: int
    col: int
    label: str


def _sinks_in(fn: FunctionNode, stmt: ast.stmt) -> list[_Sink]:
    """Observable events a CFG node's own statement performs."""
    from repro.lint.rules.typestate import _header_exprs

    headers = _header_exprs(stmt)
    roots: list[ast.AST] = list(headers) if headers is not None else [stmt]
    sinks: list[_Sink] = []
    stack = roots
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Lambda):
            continue
        if isinstance(current, ast.Call):
            label = _sink_label(fn, current)
            if label is not None:
                sinks.append(_Sink(current.lineno, current.col_offset, label))
        stack.extend(ast.iter_child_nodes(current))
    return sinks


def _sink_label(fn: FunctionNode, call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in STEP_CONSTRUCTORS:
            return f"plan step {func.id}(...)"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    name = func.attr
    receiver = _expr_text(func.value)
    tail = receiver.rsplit(".", 1)[-1] if receiver else ""
    if name in DEVICE_SINK_NAMES:
        return f"device call .{name}()"
    if name in STEP_CONSTRUCTORS:
        return f"plan step {name}(...)"
    if name in PRNG_METHODS and tail in PRNG_RECEIVERS:
        return f"PRNG draw {tail}.{name}()"
    site = fn.call_index.get(id(call))
    if site is not None:
        for target, _bound in site.targets:
            if target.cls is None:
                continue
            if name in TRACE_SINK_METHODS and target.cls.name == "IoTrace":
                return f"trace record .{name}()"
            if name in PRNG_METHODS and target.cls.name == "Sha256Prng":
                return f"PRNG draw .{name}()"
    return None


def _is_planner(fn: FunctionNode) -> bool:
    name = fn.name
    return name == "plan" or name.startswith(("plan_", "_plan_", "_plan"))


# --------------------------------------------------------------------------------------
# OBL002: interval count of step emissions per branch arm
# --------------------------------------------------------------------------------------

_INF = float("inf")


@dataclass(frozen=True)
class _Interval:
    lo: int
    hi: float  # int or math.inf after widening

    def plus(self, n: int) -> "_Interval":
        return _Interval(self.lo + n, self.hi + n)

    def disjoint_from(self, other: "_Interval") -> bool:
        return self.hi < other.lo or other.hi < self.lo


class _CountDomain(Domain[_Interval]):
    """Interval of plan-step emissions along paths through a region."""

    widen_after = 3

    def __init__(self, fn: FunctionNode):
        self.fn = fn

    def entry_state(self, cfg: ControlFlowGraph) -> _Interval:
        return _Interval(0, 0)

    def join(self, left: _Interval, right: _Interval) -> _Interval:
        return _Interval(min(left.lo, right.lo), max(left.hi, right.hi))

    def widen(self, older: _Interval, newer: _Interval) -> _Interval:
        lo = newer.lo if newer.lo >= older.lo else 0
        hi = newer.hi if newer.hi <= older.hi else _INF
        return _Interval(lo, hi)

    def transfer(self, node: CfgNode, state: _Interval, cfg: ControlFlowGraph) -> _Interval:
        if node.stmt is None:
            return state
        emitted = sum(
            1
            for sink in _sinks_in(self.fn, node.stmt)
            if sink.label.startswith("plan step")
        )
        return state.plus(emitted) if emitted else state


def _arm_counts(
    fn: FunctionNode, cfg: ControlFlowGraph, branch: int, stop: int | None
) -> dict[str, _Interval] | None:
    """Step-emission interval per arm of a branch, or ``None`` if unusable."""
    region = cfg.region_between(branch, stop)
    if stop is not None:
        region = region | {stop}
    arms: dict[str, _Interval] = {}
    domain = _CountDomain(fn)
    for edge in cfg.succs(branch):
        if edge.kind not in (EDGE_TRUE, EDGE_FALSE):
            continue
        if stop is not None and edge.dst == stop:
            # Empty arm: control falls straight to the join.
            interval = _Interval(0, 0)
        else:
            result = interpret(
                cfg,
                domain,
                entry=edge.dst,
                entry_state=_Interval(0, 0),
                region=region,
            )
            if stop is None:
                # No join point: measure at function exit instead.
                interval = result.state_before(cfg.exit) or result.state_after(edge.dst)
            else:
                interval = result.state_before(stop)
            if interval is None:
                return None  # arm never reaches the join (raise/return)
        held = arms.get(edge.kind)
        arms[edge.kind] = interval if held is None else domain.join(held, interval)
    if len(arms) < 2:
        return None
    return arms


# --------------------------------------------------------------------------------------
# The rules
# --------------------------------------------------------------------------------------


@dataclass(frozen=True)
class _OblReport:
    code: str
    path: str
    line: int
    col: int
    message: str


def _witness(cfg: ControlFlowGraph, branch: int, region: set[int], sink_line: int) -> str:
    """Shortest normal-edge node path branch → the sink's node, as lines."""
    target = None
    for index in region:
        node = cfg.nodes[index]
        if node.stmt is not None and node.line == sink_line:
            target = index
            break
    if target is None:
        return f"L{cfg.nodes[branch].line} -> L{sink_line}"
    parents: dict[int, int] = {branch: branch}
    frontier = [branch]
    while frontier:
        current = frontier.pop(0)
        if current == target:
            break
        for edge in cfg.succs(current):
            if edge.kind in EXCEPTIONAL_KINDS:
                continue
            if edge.dst not in parents and (edge.dst in region or edge.dst == target):
                parents[edge.dst] = current
                frontier.append(edge.dst)
    chain: list[int] = []
    current = target
    while current != branch and current in parents:
        chain.append(current)
        current = parents[current]
    chain.append(branch)
    lines: list[str] = []
    for index in reversed(chain):
        label = f"L{cfg.nodes[index].line}"
        if not lines or lines[-1] != label:
            lines.append(label)
    return " -> ".join(lines)


def _analyze_project(project: Project) -> dict[str, list[_OblReport]]:
    cached = getattr(project, "_obliviousness_reports", None)
    if cached is not None:
        return cached
    graph = project.graph
    secret_returning = _secret_summaries(graph)
    reports: dict[str, list[_OblReport]] = {OBL_SINK: [], OBL_SHAPE: []}
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        scan = _TaintScan(fn, secret_returning)
        if not scan.any_secret() and not _has_secret_syntax(fn, scan):
            continue
        cfg = graph.cfg_of(qualname)
        reachable = cfg.reachable()
        for node in cfg.nodes:
            if node.kind != NODE_BRANCH or node.index not in reachable:
                continue
            test = _branch_test(node.stmt)
            if test is None or not scan.is_tainted(test):
                continue
            stop = cfg.ipostdom(node.index)
            region = cfg.region_between(node.index, stop)
            condition = _condition_text(test)
            for index in sorted(region):
                region_node = cfg.nodes[index]
                if region_node.stmt is None:
                    continue
                for sink in _sinks_in(fn, region_node.stmt):
                    witness = _witness(cfg, node.index, region, sink.line)
                    reports[OBL_SINK].append(
                        _OblReport(
                            OBL_SINK,
                            fn.module.path,
                            sink.line,
                            sink.col,
                            f"secret-dependent control flow: {sink.label} at line "
                            f"{sink.line} executes only when the secret-derived "
                            f"condition '{condition}' (line {node.line}) holds; "
                            f"witness path: {witness} [in {fn.display}]",
                        )
                    )
            if _is_planner(fn):
                arms = _arm_counts(fn, cfg, node.index, stop)
                if arms is not None:
                    true_arm = arms.get(EDGE_TRUE)
                    false_arm = arms.get(EDGE_FALSE)
                    if (
                        true_arm is not None
                        and false_arm is not None
                        and true_arm.disjoint_from(false_arm)
                    ):
                        reports[OBL_SHAPE].append(
                            _OblReport(
                                OBL_SHAPE,
                                fn.module.path,
                                node.line,
                                0,
                                f"secret-shaped plan: '{fn.display}' emits "
                                f"{_fmt(true_arm)} plan steps when "
                                f"'{condition}' holds but {_fmt(false_arm)} "
                                "otherwise; an adversary counting device "
                                "operations distinguishes the two — pad the "
                                f"arms to equal step counts [in {fn.display}]",
                            )
                        )
    for code in reports:
        reports[code].sort(key=lambda r: (r.path, r.line, r.col, r.message))
    project._obliviousness_reports = reports  # type: ignore[attr-defined]
    return reports


def _fmt(interval: _Interval) -> str:
    if interval.lo == interval.hi:
        return str(interval.lo)
    hi = "∞" if interval.hi == _INF else str(int(interval.hi))
    return f"{interval.lo}..{hi}"


def _condition_text(test: ast.expr) -> str:
    text = ast.unparse(test)
    return text if len(text) <= 60 else text[:57] + "..."


def _branch_test(stmt: ast.stmt | None) -> ast.expr | None:
    if isinstance(stmt, (ast.If, ast.While)):
        return stmt.test
    if isinstance(stmt, ast.Match):
        return stmt.subject
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return stmt.iter
    return None


def _has_secret_syntax(fn: FunctionNode, scan: _TaintScan) -> bool:
    """Fast pre-filter: does the body read any secret source at all?"""
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Attribute) and node.attr in SOURCE_ATTRS:
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name in SOURCE_CALLS:
                return True
            site = fn.call_index.get(id(node))
            if site is not None and any(
                scan.summaries.get(target.qualname, _CLEAN_SUMMARY).returns_secret
                for target, _bound in site.targets
            ):
                return True
    return False


class _OblRule(ProjectRule):
    def check_project(self, project: Project) -> Iterable[Finding]:
        for report in _analyze_project(project)[self.code]:
            yield Finding(report.path, report.line, report.col, self.code, report.message)


@register
class SecretBranchSinkRule(_OblRule):
    code = OBL_SINK
    summary = "observable event control-dependent on a secret"
    contract = (
        "No device call, plan-step emission, trace record, or PRNG draw "
        "is control-dependent on secret-derived data: branching on a "
        "secret must not change what the adversary can observe."
    )
    rationale = (
        "The access pattern is part of the adversary's view; a write "
        "that happens only when a key matches is a one-bit oracle even "
        "though no secret byte is ever written — the snapshot-diff and "
        "trace-equivalence tests sample this, the rule proves it per "
        "branch region."
    )
    dynamic_suite = "tests/test_attacks.py, tests/test_oblivious.py"


@register
class SecretPlanShapeRule(_OblRule):
    code = OBL_SHAPE
    summary = "planner emits secret-dependent step counts across branch arms"
    contract = (
        "Every planner emits the same number of plan steps on both arms "
        "of any secret-dependent conditional, so the IoPlan shape is a "
        "function of public inputs only."
    )
    rationale = (
        "Plans are replayed against the device; two arms with provably "
        "different step counts give the adversary a calibrated counter "
        "for the secret bit — the chi-square seized-disk test would "
        "need luck to catch it, the interval analysis proves it."
    )
    dynamic_suite = "tests/test_seized_disk.py, tests/test_plan_kernel.py"
