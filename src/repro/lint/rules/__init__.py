"""Project rules; importing this package populates the rule registry."""

from repro.lint.rules import (  # noqa: F401  -- imported for registration side effects
    closedguards,
    concurrency,
    entropy,
    exceptions,
    locks,
    obliviousness,
    planpurity,
    taint,
    tracing,
    typestate,
)
