"""PLN001 — planners describe I/O; they never perform it.

PR 6's contract: a ``plan_*`` function returns an
:class:`~repro.core.plan.IoPlan` describing device work, and only the
execution layer (``execute_runs``, the engine's ``_flush_plans``) may
touch the device.  PR 8 enforced this intra-module; this version walks
the whole-program :class:`~repro.lint.graph.CallGraph` instead, so a
planner that reaches the device through a helper in *another* module —
through an import alias, a ``self.``-dispatched method, or a typed
attribute like ``self.volume.read_header()`` — is flagged with the full
cross-module chain.

Findings attach to the offending call site and name the chain from the
planner (``Session.plan_write -> StegAgent._load -> read_blocks``), so
a violation three modules deep is still one actionable line.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, Project, ProjectRule, register

#: The device primitives (RawStorage / StegDevice surface).
DEVICE_METHODS = frozenset(
    {"read_block", "read_blocks", "write_block", "write_blocks", "read_write_blocks"}
)


def _is_planner(name: str) -> bool:
    return name == "plan" or name.startswith(("plan_", "_plan_", "_plan"))


@register
class PlanPurityRule(ProjectRule):
    code = "PLN001"
    summary = "plan_* functions (and their transitive callees) performing device I/O"
    contract = (
        "plan_* functions return an IoPlan describing device work and "
        "never perform it — not directly and not through any transitive "
        "callee in any module; only the execution layer touches blocks."
    )
    rationale = (
        "The plan/fuse/execute split (PR 6) lets the kernel batch and "
        "reorder I/O and lets the snapshot-diff adversary reason about "
        "exactly which writes a plan issues; a planner that sneaks in "
        "device I/O invalidates both."
    )
    dynamic_suite = "tests/test_plan_kernel.py, tests/test_batched_io.py"

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = project.graph
        planners = [
            qualname for qualname, fn in graph.functions.items() if _is_planner(fn.name)
        ]
        reached = self._reachable(graph, planners)
        findings: dict[tuple[str, int, int], Finding] = {}
        for qualname, chain in reached.items():
            fn = graph.functions[qualname]
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Attribute):
                    method = func.attr
                elif isinstance(func, ast.Name):
                    method = func.id
                else:
                    continue
                if method not in DEVICE_METHODS:
                    continue
                location = (fn.module.path, node.lineno, node.col_offset)
                via = " -> ".join(chain)
                findings[location] = self.finding(
                    fn.module,
                    node,
                    f"device I/O '{method}' reachable from planner '{chain[0]}' "
                    f"(call chain: {via}); planners must only describe I/O in an IoPlan",
                )
        return sorted(findings.values())

    def _reachable(self, graph, seeds: list[str]) -> dict[str, tuple[str, ...]]:
        """BFS with witness chains that honours justified pragmas.

        A ``# repro-lint: ignore[PLN001]`` on a *call* line declares that
        boundary crossing sound, so traversal stops there: the callee is
        not condemned through an edge a reviewer already signed off on.
        """
        chains: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for seed in seeds:
            fn = graph.functions.get(seed)
            if fn is not None and seed not in chains:
                chains[seed] = (fn.display,)
                frontier.append(seed)
        while frontier:
            current = frontier.pop(0)
            fn = graph.functions[current]
            chain = chains[current]
            for site in fn.calls:
                if self.code in fn.module.suppressions.get(site.call.lineno, ()):
                    continue
                for target, _bound in site.targets:
                    if target.qualname not in chains:
                        chains[target.qualname] = chain + (target.display,)
                        frontier.append(target.qualname)
        return chains
