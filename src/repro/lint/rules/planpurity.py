"""PLN001 — planners describe I/O; they never perform it.

PR 6's contract: a ``plan_*`` function returns an
:class:`~repro.core.plan.IoPlan` describing device work, and only the
execution layer (``execute_runs``, the engine's ``_flush_plans``) may
touch the device.  This rule walks each module's intra-file call graph:
a function whose name marks it as a planner, plus everything it reaches
through ``self.method()`` and bare-name calls, must contain no call to
the device primitives.

Findings attach to the offending call site and name the call chain from
the planner, so a violation three helpers deep is still one actionable
line.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, Rule, SourceModule, register

#: The device primitives (RawStorage / StegDevice surface).
DEVICE_METHODS = frozenset(
    {"read_block", "read_blocks", "write_block", "write_blocks", "read_write_blocks"}
)


def _is_planner(name: str) -> bool:
    return name == "plan" or name.startswith(("plan_", "_plan_", "_plan"))


class _FunctionInfo:
    """One function/method and the calls its body makes."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef, owner: str | None):
        self.node = node
        self.owner = owner  # class name for methods, None at module level
        self.self_calls: set[str] = set()
        self.bare_calls: set[str] = set()
        self.device_calls: list[tuple[str, ast.Call]] = []
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute):
                if func.attr in DEVICE_METHODS:
                    self.device_calls.append((func.attr, sub))
                elif isinstance(func.value, ast.Name) and func.value.id == "self":
                    self.self_calls.add(func.attr)
            elif isinstance(func, ast.Name):
                if func.id in DEVICE_METHODS:
                    self.device_calls.append((func.id, sub))
                else:
                    self.bare_calls.add(func.id)


@register
class PlanPurityRule(Rule):
    code = "PLN001"
    summary = "plan_* functions (and their callees) performing device I/O"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        functions: dict[tuple[str | None, str], _FunctionInfo] = {}
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[(None, node.name)] = _FunctionInfo(node, None)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        functions[(node.name, item.name)] = _FunctionInfo(item, node.name)

        findings: dict[tuple[int, int], Finding] = {}
        for (_owner, name), info in functions.items():
            if not _is_planner(name):
                continue
            self._trace(module, functions, info, [name], set(), findings)
        return sorted(findings.values())

    def _trace(
        self,
        module: SourceModule,
        functions: dict[tuple[str | None, str], _FunctionInfo],
        info: _FunctionInfo,
        chain: list[str],
        visited: set[tuple[str | None, str]],
        findings: dict[tuple[int, int], Finding],
    ) -> None:
        key = (info.owner, info.node.name)
        if key in visited:
            return
        visited.add(key)
        for method, call in info.device_calls:
            location = (call.lineno, call.col_offset)
            if location not in findings:
                via = " -> ".join(chain)
                findings[location] = self.finding(
                    module,
                    call,
                    f"device I/O '{method}' reachable from planner '{chain[0]}' "
                    f"(call chain: {via}); planners must only describe I/O in an IoPlan",
                )
        for attr in sorted(info.self_calls):
            callee = functions.get((info.owner, attr))
            if callee is not None:
                self._trace(module, functions, callee, chain + [attr], visited, findings)
        for name in sorted(info.bare_calls):
            callee = functions.get((None, name))
            if callee is not None:
                self._trace(module, functions, callee, chain + [name], visited, findings)
