"""CLS001 — every lifecycle object refuses work after ``close()``.

PR 7's contract: a closed service, session, storage volume, backend,
journal, or engine fails loudly and typed, never half-works.  The
dynamic sweep in ``tests/test_closed_guards.py`` proves the guards
*fire*; this rule proves they *exist* on every public method, including
ones added after the sweep was written.

Each configured class carries a guard set (methods whose call implies a
closed-state check) and a whitelist (the deliberately ungated forensic
surface: constructors, ``close``/``closed``, counters).  A public method
that neither calls a guard nor sits on the whitelist is a finding — and
so is a configured class that disappears, so the rule cannot silently
rot.  :func:`static_inventory` exposes the guarded-method sets; the
dynamic sweep asserts equality against it, pinning the two enforcement
layers to each other.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.core import Finding, Rule, SourceModule, register


@dataclass(frozen=True)
class GuardSpec:
    """Closed-guard contract for one class."""

    class_name: str
    module_suffix: str
    guards: frozenset[str]
    whitelist: frozenset[str]
    #: Base class in the same module whose public methods are part of
    #: this class's surface (the backend mixin shape).
    merge_base: str | None = None


GUARD_SPECS: tuple[GuardSpec, ...] = (
    GuardSpec(
        "Session",
        "repro/service/facade.py",
        guards=frozenset({"_check_open", "_handle"}),
        whitelist=frozenset({"user", "active", "paths"}),
    ),
    GuardSpec(
        "HiddenVolumeService",
        "repro/service/facade.py",
        guards=frozenset({"_check_service_open"}),
        whitelist=frozenset(
            {
                "create",
                "open",
                "new_keyring",
                "logged_in_users",
                "session_of",
                "closed",
                "close",
                "num_blocks",
                "disclosed_block_count",
                "disclosed_dummy_block_count",
                "expected_update_overhead",
            }
        ),
    ),
    GuardSpec(
        "RawStorage",
        "repro/storage/disk.py",
        guards=frozenset({"_check_open"}),
        whitelist=frozenset({"closed", "close", "reset_counters", "reset_head_position"}),
    ),
    GuardSpec(
        "MmapFileBackend",
        "repro/storage/backend.py",
        guards=frozenset({"_blocks"}),
        whitelist=frozenset(
            {"path", "create", "open", "close", "closed", "block_size", "num_blocks"}
        ),
        merge_base="_ArrayBackend",
    ),
    GuardSpec(
        "JournalBackend",
        "repro/core/journal.py",
        guards=frozenset({"_require_open"}),
        whitelist=frozenset(
            {
                "create",
                "open",
                "path",
                "closed",
                "num_slots",
                "record_size",
                "pending_count",
                "bind",
                "close",
            }
        ),
    ),
    GuardSpec(
        "ConcurrentVolumeService",
        "repro/service/concurrent.py",
        guards=frozenset({"_run"}),
        whitelist=frozenset({"close", "closed"}),
    ),
)


def _classes(tree: ast.Module) -> dict[str, ast.ClassDef]:
    return {node.name: node for node in tree.body if isinstance(node, ast.ClassDef)}


def _public_methods(
    *class_nodes: ast.ClassDef,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """Public defs across ``class_nodes``; later classes override earlier."""
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in class_nodes:
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_"):
                continue
            methods[item.name] = item
    return methods


def _calls_guard(method: ast.FunctionDef | ast.AsyncFunctionDef, guards: frozenset[str]) -> bool:
    for sub in ast.walk(method):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Attribute):
            if (
                func.attr in guards
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                return True
        elif isinstance(func, ast.Name) and func.id in guards:
            return True
    return False


@register
class ClosedGuardRule(Rule):
    code = "CLS001"
    summary = "public lifecycle methods without a closed-state guard"
    contract = (
        "Every public I/O method on the guarded storage classes checks "
        "the closed flag before touching the device, so use-after-close "
        "raises instead of corrupting the volume image."
    )
    rationale = (
        "Crash recovery (PR 7) images a 'seized' device after the "
        "process dies; a lifecycle method that keeps writing past "
        "close() would fake durability evidence."
    )
    dynamic_suite = "tests/test_closed_guards.py, tests/test_crash_recovery.py"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        specs = [spec for spec in GUARD_SPECS if module.path.endswith(spec.module_suffix)]
        if not specs:
            return []
        return list(self._check_specs(module, specs))

    def _check_specs(self, module: SourceModule, specs: list[GuardSpec]) -> Iterator[Finding]:
        classes = _classes(module.tree)
        for spec in specs:
            node = classes.get(spec.class_name)
            if node is None:
                yield Finding(
                    module.path,
                    1,
                    0,
                    self.code,
                    f"configured class '{spec.class_name}' not found; update the "
                    "GuardSpec in repro.lint.rules.closedguards if it moved",
                )
                continue
            bases = [node]
            if spec.merge_base is not None and spec.merge_base in classes:
                bases.insert(0, classes[spec.merge_base])
            for name, method in sorted(_public_methods(*bases).items()):
                if name in spec.whitelist:
                    continue
                if not _calls_guard(method, spec.guards):
                    guard_names = ", ".join(sorted(spec.guards))
                    yield self.finding(
                        module,
                        method,
                        f"public method '{spec.class_name}.{name}' has no closed-state "
                        f"guard (expected a call to one of: {guard_names}) and is not "
                        "whitelisted as forensic surface",
                    )


def static_inventory(root: Path | str = "src") -> dict[str, tuple[str, ...]]:
    """Guarded public methods per configured class, derived from source.

    The dynamic sweep in ``tests/test_closed_guards.py`` asserts its
    call tables equal this, so neither enforcement can drift from the
    other: a new public method shows up here (it must call a guard to
    lint clean) and the sweep fails until it exercises the method.
    """
    inventory: dict[str, tuple[str, ...]] = {}
    base = Path(root)
    for spec in GUARD_SPECS:
        for path in sorted(base.rglob("*.py")):
            if not path.as_posix().endswith(spec.module_suffix):
                continue
            classes = _classes(ast.parse(path.read_text(), filename=str(path)))
            node = classes.get(spec.class_name)
            if node is None:
                continue
            bases = [node]
            if spec.merge_base is not None and spec.merge_base in classes:
                bases.insert(0, classes[spec.merge_base])
            guarded = [
                name
                for name in _public_methods(*bases)
                if name not in spec.whitelist
            ]
            inventory[spec.class_name] = tuple(sorted(guarded))
    return inventory
