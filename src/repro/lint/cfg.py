"""Per-function control-flow graphs over the raw ``ast``.

PR 9's analyses were *flow-insensitive*: the taint engine accumulates
facts over a whole function body, so it can prove "this value never
reaches that sink" but not "this value is closed *on this path* and
used on the next line".  The lifecycle-typestate rules (TYP001/TYP002)
and the implicit-flow obliviousness rules (OBL001/OBL002) both need
paths, so this module builds the substrate once per function:

* one :class:`CfgNode` per simple statement, plus branch nodes for
  ``if``/``while``/``for``/``match`` tests, synthetic ``handler`` /
  ``finally`` / ``with-exit`` / ``join`` nodes for the structured
  constructs, and three distinguished nodes — ``entry``, ``exit``
  (normal returns) and ``exc-exit`` (the function unwinding on an
  exception);
* edges are labelled: ``next``, ``true``/``false`` (branch arms),
  ``back`` (loop back edges), ``exc`` (an exception raised *during* the
  source node) and ``unwind`` (exceptional control *continuing* after
  the source node, e.g. a ``finally`` block re-raising).  ``return`` /
  ``break`` / ``continue`` route through every enclosing ``finally``
  block and ``with`` exit before reaching their targets, and a
  statement that can plausibly raise (calls, ``raise``, ``assert``)
  gets an ``exc`` edge to the innermost handler, finally, or
  ``with``-exit — or straight to ``exc-exit`` when nothing encloses it;
* :meth:`ControlFlowGraph.dominators` and
  :meth:`ControlFlowGraph.postdominators` run the standard iterative
  set algorithm.  Post-dominators are computed over the *normal* edges
  only (``exc``/``unwind`` excluded): the obliviousness rules define a
  secret-tainted region as "from the branch to its immediate
  post-dominator", and exceptional unwinding would otherwise collapse
  every region into the whole function.

The abstract interpreter (:mod:`repro.lint.absint`) relies on one edge
contract: ``exc`` edges carry the *pre*-state of their source node (the
exception interrupted the node), every other kind carries the
*post*-state.

The one deliberate over-approximation: a shared ``finally`` subgraph
joins every way of entering it (normal completion, return, break,
exception), so its exit fans out to every pending continuation.  Paths
that pair the wrong entry with the wrong exit are infeasible but
harmless — every client analysis here is a may-analysis, and a
justified pragma settles the rare false positive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

#: Edge labels (the ``kind`` of each edge).
EDGE_NEXT = "next"
EDGE_TRUE = "true"
EDGE_FALSE = "false"
EDGE_BACK = "back"
EDGE_EXC = "exc"
EDGE_UNWIND = "unwind"

#: Edge kinds excluded from post-dominator computation and regions.
EXCEPTIONAL_KINDS = frozenset({EDGE_EXC, EDGE_UNWIND})

#: Node kinds.
NODE_ENTRY = "entry"
NODE_EXIT = "exit"
NODE_EXC_EXIT = "exc-exit"
NODE_STMT = "stmt"
NODE_BRANCH = "branch"
NODE_HANDLER = "handler"
NODE_FINALLY = "finally"
NODE_WITH_EXIT = "with-exit"
NODE_JOIN = "join"

_LOOP_TYPES = (ast.While, ast.For, ast.AsyncFor)


def _handler_catches_all(handler: ast.ExceptHandler) -> bool:
    """Whether a handler provably matches every exception.

    Bare ``except:`` and ``except BaseException:`` cannot be bypassed,
    so they get no "no handler matched" unwind edge.
    """
    if handler.type is None:
        return True
    node = handler.type
    return isinstance(node, ast.Name) and node.id == "BaseException"


@dataclass
class CfgNode:
    """One program point: a statement, a branch test, or a synthetic join."""

    index: int
    kind: str
    stmt: ast.stmt | None = None

    @property
    def line(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0

    def describe(self) -> str:
        """Compact stable label the tests assert against (``L4``, ``exit``)."""
        if self.stmt is None:
            return self.kind
        if self.kind in (NODE_HANDLER, NODE_FINALLY, NODE_WITH_EXIT):
            return f"{self.kind}@L{self.stmt.lineno}"
        return f"L{self.stmt.lineno}"


@dataclass(frozen=True)
class Edge:
    """A labelled directed edge between two node indices."""

    src: int
    dst: int
    kind: str


@dataclass
class _Frame:
    """One enclosing abrupt-exit router: a ``finally`` or a ``with`` exit.

    ``pending`` holds ``(target, owner_depth, kind)`` triples: control
    that entered this frame abruptly must, once the frame's body
    completes, keep routing outward until it reaches the frame at
    ``owner_depth`` — and only then jump to ``target`` with ``kind``.
    """

    entry: int
    pending: set[tuple[int, int, str]] = field(default_factory=set)


class ControlFlowGraph:
    """CFG for one function body, with dominator/post-dominator queries."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef):
        self.fn = fn
        self.nodes: list[CfgNode] = []
        self._succs: list[list[Edge]] = []
        self._preds: list[list[Edge]] = []
        self.entry = self._new_node(NODE_ENTRY)
        self.exit = self._new_node(NODE_EXIT)
        self.exc_exit = self._new_node(NODE_EXC_EXIT)
        _Builder(self).build()
        self._doms: dict[int, frozenset[int]] | None = None
        self._postdoms: dict[int, frozenset[int]] | None = None

    # -- construction helpers (used by _Builder) ---------------------------------------

    def _new_node(self, kind: str, stmt: ast.stmt | None = None) -> int:
        node = CfgNode(index=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        self._succs.append([])
        self._preds.append([])
        return node.index

    def _add_edge(self, src: int, dst: int, kind: str) -> None:
        for edge in self._succs[src]:
            if edge.dst == dst and edge.kind == kind:
                return
        edge = Edge(src, dst, kind)
        self._succs[src].append(edge)
        self._preds[dst].append(edge)

    # -- queries -----------------------------------------------------------------------

    def succs(self, index: int) -> Sequence[Edge]:
        return self._succs[index]

    def preds(self, index: int) -> Sequence[Edge]:
        return self._preds[index]

    def statement_nodes(self) -> Iterator[CfgNode]:
        for node in self.nodes:
            if node.stmt is not None:
                yield node

    def reachable(self, start: int | None = None, *, include_exc: bool = True) -> set[int]:
        """Node indices reachable from ``start`` (default: entry)."""
        frontier = [self.entry if start is None else start]
        seen: set[int] = set(frontier)
        while frontier:
            current = frontier.pop()
            for edge in self._succs[current]:
                if not include_exc and edge.kind in EXCEPTIONAL_KINDS:
                    continue
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    frontier.append(edge.dst)
        return seen

    def dominators(self) -> dict[int, frozenset[int]]:
        """Node → the set of nodes dominating it (all edges, from entry)."""
        if self._doms is None:
            self._doms = self._solve(
                start=self.entry,
                forward=lambda n: [e.dst for e in self._succs[n]],
                backward=lambda n: [e.src for e in self._preds[n]],
            )
        return self._doms

    def postdominators(self) -> dict[int, frozenset[int]]:
        """Node → the set of nodes post-dominating it.

        Computed over normal edges only: ``exc``/``unwind`` edges are
        excluded, so a region "branch → immediate post-dominator" means
        "until the two arms re-join on the non-exceptional walk of the
        function".  Nodes with no normal path to ``exit`` are absent.
        """
        if self._postdoms is None:
            self._postdoms = self._solve(
                start=self.exit,
                forward=lambda n: [
                    e.src for e in self._preds[n] if e.kind not in EXCEPTIONAL_KINDS
                ],
                backward=lambda n: [
                    e.dst for e in self._succs[n] if e.kind not in EXCEPTIONAL_KINDS
                ],
            )
        return self._postdoms

    def ipostdom(self, index: int) -> int | None:
        """Immediate post-dominator of a node, or ``None``.

        ``None`` means the node has no proper post-dominator on the
        normal-edge graph (it cannot reach ``exit``, e.g. inside
        ``while True`` without ``break``); callers must treat the whole
        rest of the function as the region.
        """
        postdoms = self.postdominators()
        mine = postdoms.get(index)
        if mine is None:
            return None
        proper = set(mine) - {index}
        if not proper:
            return None
        # The immediate post-dominator is the unique member of `proper`
        # whose own post-dominator set covers all of `proper` — i.e. the
        # first join every path out of `index` must cross.
        for candidate in proper:
            candidate_set = postdoms.get(candidate)
            if candidate_set is not None and proper <= candidate_set:
                return candidate
        return None

    def region_between(self, branch: int, stop: int | None) -> set[int]:
        """Nodes reachable from ``branch``'s arms without crossing ``stop``.

        This is the (approximate) control-dependence region of a branch:
        everything whose execution is decided by the branch outcome,
        walked over normal edges only.  ``stop`` is typically
        ``ipostdom(branch)``; with ``None`` the region extends to the
        end of the function.
        """
        region: set[int] = set()
        frontier = [
            e.dst for e in self._succs[branch] if e.kind not in EXCEPTIONAL_KINDS
        ]
        while frontier:
            current = frontier.pop()
            if current in region or current == stop or current == branch:
                continue
            region.add(current)
            for edge in self._succs[current]:
                if edge.kind not in EXCEPTIONAL_KINDS:
                    frontier.append(edge.dst)
        return region

    def _solve(
        self,
        start: int,
        forward: Callable[[int], list[int]],
        backward: Callable[[int], list[int]],
    ) -> dict[int, frozenset[int]]:
        """Iterative dominance: dom(n) = {n} ∪ ⋂ dom(pred(n)).

        ``forward`` enumerates the flow successors of a node in the
        direction being solved (actual successors for dominators,
        actual predecessors for post-dominators); ``backward`` is the
        reverse relation.
        """
        order: list[int] = []
        seen = {start}
        frontier = [start]
        while frontier:  # BFS order converges fast on these small graphs
            current = frontier.pop(0)
            order.append(current)
            for nxt in forward(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        everything = frozenset(seen)
        dom: dict[int, frozenset[int]] = {n: everything for n in seen}
        dom[start] = frozenset({start})
        changed = True
        while changed:
            changed = False
            for n in order:
                if n == start:
                    continue
                incoming = [dom[p] for p in backward(n) if p in dom]
                if incoming:
                    new = frozenset.intersection(*incoming) | {n}
                else:
                    new = frozenset({n})
                if new != dom[n]:
                    dom[n] = new
                    changed = True
        return dom


def _expr_may_raise(*exprs: ast.expr | None) -> bool:
    for expr in exprs:
        if expr is None:
            continue
        for node in ast.walk(expr):
            if isinstance(node, (ast.Call, ast.Subscript)):
                return True
    return False


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether a statement can plausibly raise mid-function.

    The filter keeps the exception-edge count linear and the typestate
    leak check focused: calls, subscripts, explicit raises and
    assertions unwind; pure rebinding of constants does not.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Subscript)):
            return True
    return False


#: Dangling edge: (source node, edge kind) waiting for its destination.
_Dangling = tuple[int, str]


class _Builder:
    """Single-pass recursive CFG construction with finally/with routing."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        #: Stack of abrupt-exit routers: try-with-finally and with frames.
        self.frames: list[_Frame] = []
        #: Stack of (loop head, break join node, frame depth at entry).
        self.loops: list[tuple[int, int, int]] = []
        #: Stack of exception-edge target lists (innermost last).
        self.exc_targets: list[list[int]] = [[cfg.exc_exit]]

    def build(self) -> None:
        dangling = self._body(self.cfg.fn.body, [(self.cfg.entry, EDGE_NEXT)])
        self._connect(dangling, self.cfg.exit)

    # -- plumbing ----------------------------------------------------------------------

    def _connect(self, dangling: list[_Dangling], dst: int) -> None:
        for src, kind in dangling:
            self.cfg._add_edge(src, dst, kind)

    def _exc_edges(self, node: int) -> None:
        for target in self.exc_targets[-1]:
            self.cfg._add_edge(node, target, EDGE_EXC)

    def _route_abrupt(self, node: int, kind: str, target: int, owner_depth: int) -> None:
        """Send abrupt control from ``node`` toward ``target``.

        Crosses every finally/with frame between the current depth and
        ``owner_depth``; with none in between, jumps straight there.
        """
        if len(self.frames) > owner_depth:
            frame = self.frames[-1]
            self.cfg._add_edge(node, frame.entry, kind)
            frame.pending.add((target, owner_depth, kind))
        else:
            self.cfg._add_edge(node, target, kind)

    def _drain_frame(self, frame: _Frame, dangling: list[_Dangling]) -> None:
        """Propagate a completed frame's pending abrupt exits outward.

        Must be called *after* the frame is popped: ``self.frames`` then
        holds only the frames still enclosing the continuation.
        """
        for target, owner_depth, kind in frame.pending:
            if len(self.frames) > owner_depth:
                outer = self.frames[-1]
                for src, _orig in dangling:
                    self.cfg._add_edge(src, outer.entry, kind)
                outer.pending.add((target, owner_depth, kind))
            else:
                for src, _orig in dangling:
                    self.cfg._add_edge(src, target, kind)

    # -- statement dispatch ------------------------------------------------------------

    def _body(self, stmts: Sequence[ast.stmt], dangling: list[_Dangling]) -> list[_Dangling]:
        for stmt in stmts:
            dangling = self._stmt(stmt, dangling)
        return dangling

    def _stmt(self, stmt: ast.stmt, dangling: list[_Dangling]) -> list[_Dangling]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, dangling)
        if isinstance(stmt, _LOOP_TYPES):
            return self._loop(stmt, dangling)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, dangling)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, dangling)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, dangling)
        if isinstance(stmt, ast.Return):
            node = self._simple(stmt, dangling)
            self._route_abrupt(node, EDGE_NEXT, self.cfg.exit, 0)
            return []
        if isinstance(stmt, ast.Break):
            node = self._simple(stmt, dangling)
            _head, break_join, depth = self.loops[-1]
            self._route_abrupt(node, EDGE_NEXT, break_join, depth)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._simple(stmt, dangling)
            head, _break_join, depth = self.loops[-1]
            self._route_abrupt(node, EDGE_BACK, head, depth)
            return []
        if isinstance(stmt, ast.Raise):
            self._simple(stmt, dangling)  # its exc edges are the only way out
            return []
        # Simple statement (assignments, expressions, pass, nested defs…).
        node = self._simple(stmt, dangling)
        return [(node, EDGE_NEXT)]

    def _simple(self, stmt: ast.stmt, dangling: list[_Dangling]) -> int:
        node = self.cfg._new_node(NODE_STMT, stmt)
        self._connect(dangling, node)
        if _may_raise(stmt):
            self._exc_edges(node)
        return node

    def _if(self, stmt: ast.If, dangling: list[_Dangling]) -> list[_Dangling]:
        test = self.cfg._new_node(NODE_BRANCH, stmt)
        self._connect(dangling, test)
        if _expr_may_raise(stmt.test):
            self._exc_edges(test)
        out = self._body(stmt.body, [(test, EDGE_TRUE)])
        out += self._body(stmt.orelse, [(test, EDGE_FALSE)])
        return out

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, dangling: list[_Dangling]
    ) -> list[_Dangling]:
        head = self.cfg._new_node(NODE_BRANCH, stmt)
        self._connect(dangling, head)
        if isinstance(stmt, ast.While):
            if _expr_may_raise(stmt.test):
                self._exc_edges(head)
        else:
            if _expr_may_raise(stmt.iter):
                self._exc_edges(head)
        break_join = self.cfg._new_node(NODE_JOIN)
        self.loops.append((head, break_join, len(self.frames)))
        body_out = self._body(stmt.body, [(head, EDGE_TRUE)])
        self.loops.pop()
        for src, _kind in body_out:
            self.cfg._add_edge(src, head, EDGE_BACK)
        out = self._body(stmt.orelse, [(head, EDGE_FALSE)])
        if self.cfg._preds[break_join]:
            out.append((break_join, EDGE_NEXT))
        return out

    def _match(self, stmt: ast.Match, dangling: list[_Dangling]) -> list[_Dangling]:
        subject = self.cfg._new_node(NODE_BRANCH, stmt)
        self._connect(dangling, subject)
        if _expr_may_raise(stmt.subject):
            self._exc_edges(subject)
        out: list[_Dangling] = []
        for case in stmt.cases:
            out += self._body(case.body, [(subject, EDGE_TRUE)])
        # Conservatively assume no case may match (a wildcard makes this
        # edge dead, but pruning it needs pattern reasoning).
        out.append((subject, EDGE_FALSE))
        return out

    def _with(self, stmt: ast.With | ast.AsyncWith, dangling: list[_Dangling]) -> list[_Dangling]:
        enter = self.cfg._new_node(NODE_STMT, stmt)
        self._connect(dangling, enter)
        self._exc_edges(enter)  # context-manager construction can raise
        exit_node = self.cfg._new_node(NODE_WITH_EXIT, stmt)
        # __exit__ re-raises on the exceptional path: post-state flows on.
        for target in self.exc_targets[-1]:
            self.cfg._add_edge(exit_node, target, EDGE_UNWIND)
        frame = _Frame(entry=exit_node)
        self.frames.append(frame)
        self.exc_targets.append([exit_node])
        body_out = self._body(stmt.body, [(enter, EDGE_NEXT)])
        self.exc_targets.pop()
        self.frames.pop()
        self._connect(body_out, exit_node)
        out: list[_Dangling] = [(exit_node, EDGE_NEXT)]
        self._drain_frame(frame, out)
        return out

    def _try(self, stmt: ast.Try, dangling: list[_Dangling]) -> list[_Dangling]:
        outer_exc = list(self.exc_targets[-1])
        entry_depth = len(self.frames)
        handler_nodes = [
            self.cfg._new_node(NODE_HANDLER, handler) for handler in stmt.handlers
        ]
        fin_entry: int | None = None
        frame: _Frame | None = None
        if stmt.finalbody:
            fin_entry = self.cfg._new_node(NODE_FINALLY, stmt)
            frame = _Frame(entry=fin_entry)

        # Exceptions in the body dispatch to the handlers; with a
        # finally they may also bypass them (no handler matches) and
        # keep unwinding after the finally runs.
        body_targets = list(handler_nodes)
        if fin_entry is not None:
            body_targets.append(fin_entry)
            assert frame is not None
            for target in outer_exc:
                frame.pending.add((target, entry_depth, EDGE_UNWIND))
        self.exc_targets.append(body_targets)
        if frame is not None:
            self.frames.append(frame)
        body_out = self._body(stmt.body, dangling)
        self.exc_targets.pop()

        # The else clause and the handler bodies see this try's finally
        # (their exceptions still run it) but not its handlers.
        if fin_entry is not None:
            self.exc_targets.append([fin_entry])
        body_out = self._body(stmt.orelse, body_out)
        handler_out: list[_Dangling] = []
        for node, handler in zip(handler_nodes, stmt.handlers, strict=True):
            handler_out += self._body(handler.body, [(node, EDGE_NEXT)])
        # When every handler's type can be bypassed, the exception may
        # match none of them and keep unwinding — through the finally
        # when there is one.  One unwind edge from the last handler node
        # suffices: it carries the same joined body state as any other.
        if handler_nodes and not any(map(_handler_catches_all, stmt.handlers)):
            node = handler_nodes[-1]
            if fin_entry is not None:
                self.cfg._add_edge(node, fin_entry, EDGE_UNWIND)
            else:
                for target in outer_exc:
                    self.cfg._add_edge(node, target, EDGE_UNWIND)
        if fin_entry is not None:
            self.exc_targets.pop()
        if frame is not None:
            self.frames.pop()

        if fin_entry is None:
            return body_out + handler_out

        self._connect(body_out + handler_out, fin_entry)
        fin_out = self._body(stmt.finalbody, [(fin_entry, EDGE_NEXT)])
        assert frame is not None
        self._drain_frame(frame, fin_out)
        return fin_out


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """Build (and fully wire) the CFG for one function definition."""
    return ControlFlowGraph(fn)
