"""Generic abstract interpretation over :mod:`repro.lint.cfg` graphs.

PR 9's dataflow was a fact accumulator; the typestate and obliviousness
rules need *join-over-paths*: "on the path through the ``except`` arm
this backend is closed, on the fall-through it is open, so after the
merge it *may* be closed".  This module supplies the one engine both
rule families share:

* :class:`Domain` is the client contract — a lattice (``join``,
  optional ``widen``) plus a per-node ``transfer`` function;
* :func:`interpret` runs the classic worklist algorithm to a fixpoint:
  states merge at CFG join points, loop heads widen after
  :attr:`Domain.widen_after` visits so infinite-ascent domains (the
  step-count intervals of OBL002) still terminate, and ``exc`` edges
  propagate the *pre*-state of their source (the exception interrupted
  the statement, so its effect must not be assumed);
* a ``region`` restriction confines the run to one control-dependence
  region (a branch arm up to its immediate post-dominator), which is
  how OBL002 measures each arm of a secret branch in isolation;
* :func:`fixpoint_summaries` iterates a per-function summariser over
  the call graph's SCCs in reverse-topological order until each cyclic
  component stabilises — the interprocedural layer reused from PR 9,
  now shared by close-effect and secret-return summaries.

States are treated as immutable values: ``transfer`` must return a new
state, never mutate its argument, and ``None`` is reserved by the
engine for "unreachable" (bottom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generic, TypeVar

from repro.lint.cfg import EDGE_EXC, CfgNode, ControlFlowGraph, Edge

if TYPE_CHECKING:
    from repro.lint.graph import CallGraph, FunctionNode

S = TypeVar("S")
T = TypeVar("T")


class Domain(Generic[S]):
    """Client contract for :func:`interpret`.

    Subclasses provide the lattice and the transfer function.  The
    default ``widen`` falls back to ``join`` (correct for finite
    lattices such as typestate sets); domains of infinite height
    (intervals) override it to force convergence.
    """

    #: After this many joins at the same node the engine switches from
    #: ``join`` to ``widen``.  Three keeps short chains precise (a loop
    #: body is usually stable by its third visit) while bounding work.
    widen_after: int = 3

    def entry_state(self, cfg: ControlFlowGraph) -> S:
        raise NotImplementedError

    def join(self, left: S, right: S) -> S:
        raise NotImplementedError

    def widen(self, older: S, newer: S) -> S:
        return self.join(older, newer)

    def transfer(self, node: CfgNode, state: S, cfg: ControlFlowGraph) -> S:
        raise NotImplementedError

    def edge_state(self, edge: Edge, pre: S, post: S) -> S:
        """State carried by one outgoing edge.

        ``exc`` edges carry the pre-state — the exception fired *during*
        the node, so its effect may not have happened.  Everything else
        (including ``unwind``, which models control continuing *after* a
        finally/``__exit__`` completed) carries the post-state.  Domains
        may override to refine further, e.g. branch-arm filtering on
        ``true``/``false`` edges.
        """
        return pre if edge.kind == EDGE_EXC else post


@dataclass
class Interpretation(Generic[S]):
    """Fixpoint result: per-node pre/post states (absent = unreachable)."""

    pre: dict[int, S]
    post: dict[int, S]

    def state_before(self, index: int) -> S | None:
        return self.pre.get(index)

    def state_after(self, index: int) -> S | None:
        return self.post.get(index)


def interpret(
    cfg: ControlFlowGraph,
    domain: Domain[S],
    *,
    entry: int | None = None,
    entry_state: S | None = None,
    region: set[int] | None = None,
) -> Interpretation[S]:
    """Run ``domain`` over ``cfg`` to a fixpoint (worklist algorithm).

    ``entry``/``entry_state`` override the start point (default: the
    CFG entry with ``domain.entry_state``).  With ``region`` given, the
    walk never leaves ``region ∪ {entry}`` — states are still computed
    *at* the boundary nodes' entries but not propagated past them.
    """
    start = cfg.entry if entry is None else entry
    start_state = domain.entry_state(cfg) if entry_state is None else entry_state
    pre: dict[int, S] = {start: start_state}
    post: dict[int, S] = {}
    visits: dict[int, int] = {}
    worklist: list[int] = [start]
    queued: set[int] = {start}
    while worklist:
        index = worklist.pop(0)
        queued.discard(index)
        state = pre[index]
        visits[index] = visits.get(index, 0) + 1
        new_post = domain.transfer(cfg.nodes[index], state, cfg)
        if index in post and post[index] == new_post:
            # Same outgoing state as last time: successors already saw it.
            continue
        post[index] = new_post
        for edge in cfg.succs(index):
            if region is not None and edge.dst not in region and edge.dst != start:
                continue
            carried = domain.edge_state(edge, state, new_post)
            old = pre.get(edge.dst)
            if old is None:
                merged = carried
            else:
                merged = domain.join(old, carried)
                if visits.get(edge.dst, 0) >= domain.widen_after:
                    # Loop heads and oft-revisited joins widen so domains
                    # of infinite height (intervals) terminate.
                    merged = domain.widen(old, merged)
            if old is None or merged != old:
                pre[edge.dst] = merged
                if edge.dst not in queued:
                    queued.add(edge.dst)
                    worklist.append(edge.dst)
    return Interpretation(pre=pre, post=post)


def fixpoint_summaries(
    graph: "CallGraph",
    initial: Callable[["FunctionNode"], T],
    analyze: Callable[["FunctionNode", dict[str, T]], T],
    *,
    max_rounds: int = 8,
) -> dict[str, T]:
    """Interprocedural fixpoint: one summary per function, SCC by SCC.

    ``graph.sccs()`` yields components callee-first, so by the time a
    component is analysed every (acyclic) callee summary is final;
    within a cyclic component the summariser re-runs until its members
    stop changing (or ``max_rounds``, a safety valve for pathological
    recursion — summaries are may-facts, so stopping early only loses
    precision, never soundness of the clean direction).
    """
    summaries: dict[str, T] = {}
    for component in graph.sccs():
        for qualname in component:
            summaries[qualname] = initial(graph.functions[qualname])
        for _round in range(max_rounds):
            changed = False
            for qualname in component:
                updated = analyze(graph.functions[qualname], summaries)
                if updated != summaries[qualname]:
                    summaries[qualname] = updated
                    changed = True
            if not changed:
                break
    return summaries
