"""Thread-safe concurrent serving engine over a :class:`HiddenVolumeService`.

The paper's security argument (Sections 4.1.3 and 5) is about *aggregate*
traffic: each user's accesses hide inside the interleaved stream of many
concurrently logged-in users plus the agent's dummy updates.  The
sequential facade can only be driven from one thread — the whole core
(agents, volume, allocator, PRNG streams, raw storage) is
single-threaded by contract (see the locking contract in
:mod:`repro.core.agent`).  :class:`ConcurrentVolumeService` is the
serving engine that closes that gap: any number of worker threads submit
per-session operations and the engine serializes them through a fair
scheduler that *interleaves* real operations with the agent's dummy
stream.

Architecture — a dedicated scheduler over fair per-session queues
-----------------------------------------------------------------
Every operation is enqueued on its session's FIFO and executed by one
dedicated scheduler thread; submitting threads sleep on their request's
own completion event.  Per scheduling quantum the scheduler

* **gathers** briefly until the queues hold one request per active
  client thread (the engine is a closed loop — fulfilled clients
  resubmit within microseconds), so batches reach worker-pool width;
* pops up to ``quantum`` requests **fairly**: round-robin across
  sessions, FIFO within each session, so one chatty user cannot starve
  the others;
* **plans read, write and append requests** into declarative
  :class:`~repro.core.plan.IoPlan` objects and **fuses adjacent steps
  across sessions** — batched reads, batched writes, batched Figure-6
  read/write cycles — via the plan kernel's
  :func:`~repro.core.plan.fuse`, with per-event stream labels keeping
  per-session trace attribution intact; the plan buffer survives across
  quanta, so fusion also happens across scheduling quanta;
* **interleaves dummy updates** at ``dummy_to_real_ratio`` dummies per
  real operation (Section 4.1.3), coalescing each flush into one
  batched burst (:meth:`~repro.core.agent.StegAgent.dummy_update_batch`);
* executes creates, deletes and session management one at a time —
  they mutate directory and key state the planners do not model.

Fusing across sessions is safe because the buffer order is the plan
(bookkeeping) order: :func:`~repro.core.plan.fuse` never reorders steps
across plans, different sessions' file blocks are disjoint (the
allocator hands each block to one file), and the only cross-session
touches — Figure-6 reseals — preserve the plaintext, so any flush is a
legal serialization of the buffered requests.  A session's *own*
pending mutations are flushed before planning its next write or append
(their boundary reads touch the device at plan time), and before any of
its non-plannable requests, so no session observes its operations out
of order.

Because every core touch happens on the scheduler thread, the
single-threaded contract of the agents is never violated; worker
threads only ever block on their own request's completion event.  The
batching is where multi-worker throughput comes from: every batched
device call pays a fixed accounting cost (vectorized latency charging,
columnar trace append, numpy data movement) that the batch width
divides.

Quickstart::

    service = HiddenVolumeService.create("nonvolatile", volume_mib=16, seed=7)
    engine = service.concurrent(dummy_to_real_ratio=2.0)
    alice = engine.login(service.new_keyring("alice"))
    alice.create("/alice/report", b"secret" * 100)     # callable from any thread
    assert alice.read("/alice/report", at=6, size=6) == b"secret"
    engine.close()
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.plan import (
    KIND_CYCLE,
    KIND_WRITE,
    PlanJournal,
    PlannedOp,
    execute_runs,
    fuse,
)
from repro.crypto.keys import KeyRing
from repro.errors import NotLoggedInError, ServiceClosedError
from repro.service.facade import FileStat, HiddenVolumeService, Session

#: Request kinds that count as *real* operations for the dummy-to-real
#: ratio (Section 4.1.3).  Session management and metadata lookups do not
#: consume dummy credit.
_REAL_OPS = frozenset({"read", "write", "append", "create", "create_decoy", "delete"})

#: Safety-net timeout (seconds) for client waits: fulfilment sets the
#: request's own event, so clients normally wake instantly; the timeout
#: only bounds how long a client sleeps before noticing the scheduler
#: thread died (a bug, not a normal path).
_CLIENT_WAIT_TIMEOUT_S = 0.05

#: How long close() waits for the scheduler thread to wind down.
_SCHEDULER_JOIN_TIMEOUT_S = 10.0

#: A registered client whose last submit is older than this (seconds)
#: is pruned from the gather registry when a gather times out.  An
#: active client submits every few hundred microseconds, so a few
#: milliseconds of silence means the thread left (or was a one-off,
#: e.g. the set-up thread); it re-registers for free on its next
#: submit.
_CLIENT_PRUNE_S = 0.002

#: How long (seconds) the scheduler waits for just-fulfilled clients to
#: resubmit before serving the next (possibly narrower) batch.  The
#: engine is a closed loop — a fulfilled worker's next request arrives
#: within microseconds once its thread gets scheduled — so a short
#: bounded wait trades a sliver of latency for much wider device
#: batches.  A single client never triggers a wait (its own request is
#: already queued).
_GATHER_TIMEOUT_S = 0.0005


class _Request:
    """One queued operation: inputs, a completion event, and the outcome.

    ``plan_call`` is set on plannable requests (reads; writes and
    appends when write fusion is on); it is what lets the scheduler
    turn them into :class:`~repro.core.plan.IoPlan` objects and fuse
    them across sessions instead of running ``execute`` (the unbatched
    fallback semantics).
    """

    __slots__ = ("kind", "user", "execute", "done", "result", "error", "plan_call")

    def __init__(
        self,
        kind: str,
        user: str,
        execute: Callable[[], Any],
        plan_call: Callable[[], PlannedOp] | None = None,
    ):
        self.kind = kind
        self.user = user
        self.execute = execute
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.plan_call = plan_call

    def fulfil(self, result: Any = None, error: BaseException | None = None) -> None:
        self.result = result
        self.error = error
        self.done.set()

    def outcome(self) -> Any:
        if self.error is not None:
            raise self.error
        return self.result


@dataclass
class EngineStats:
    """Scheduler observability: how much work ran, and how well it batched."""

    real_ops: int = 0
    dummy_updates: int = 0
    quanta: int = 0
    read_batches: int = 0
    batched_read_requests: int = 0
    largest_read_batch: int = 0
    write_fusions: int = 0
    fused_write_steps: int = 0
    largest_write_fusion: int = 0

    def snapshot(self) -> "EngineStats":
        """An independent copy, useful for measuring deltas."""
        return EngineStats(
            self.real_ops,
            self.dummy_updates,
            self.quanta,
            self.read_batches,
            self.batched_read_requests,
            self.largest_read_batch,
            self.write_fusions,
            self.fused_write_steps,
            self.largest_write_fusion,
        )


@dataclass
class _Planned:
    """A planned request buffered for the next fused flush."""

    request: _Request
    op: PlannedOp


class ConcurrentSession:
    """Thread-safe proxy for one logged-in user's :class:`Session`.

    Every call is submitted to the engine's scheduler thread and blocks
    until it has been executed; results and exceptions are relayed
    unchanged from the underlying session.
    """

    def __init__(self, engine: "ConcurrentVolumeService", session: Session):
        self._engine = engine
        self._session = session

    @property
    def user(self) -> str:
        """Name of the user who opened this session."""
        return self._session.user

    @property
    def active(self) -> bool:
        """Whether the session is still logged in."""
        return self._session.active

    @property
    def paths(self) -> list[str]:
        """Paths of the files this session has open, sorted."""
        return self._session.paths

    def stat(self, path: str) -> FileStat:
        """Size and shape of one open file."""
        return self._engine._run("stat", self.user, lambda s=self._session: s.stat(path))

    def create(self, path: str, data: bytes) -> FileStat:
        """Hide a new file at ``path`` (see :meth:`Session.create`)."""
        return self._engine._run("create", self.user, lambda s=self._session: s.create(path, data))

    def create_decoy(self, path: str, size_bytes: int) -> FileStat:
        """Create a dummy file for plausible deniability."""
        return self._engine._run(
            "create_decoy", self.user, lambda s=self._session: s.create_decoy(path, size_bytes)
        )

    def read(
        self, path: str, at: int = 0, size: int | None = None, oblivious: bool = False
    ) -> bytes:
        """Read ``size`` bytes at offset ``at`` (whole file by default).

        Plain reads are eligible for the scheduler's cross-session
        fusion; oblivious reads run unbatched through the hierarchy.
        """
        if oblivious:
            return self._engine._run(
                "read", self.user, lambda s=self._session: s.read(path, at, size, oblivious=True)
            )
        return self._engine._run(
            "read",
            self.user,
            lambda s=self._session: s.read(path, at, size),
            plan_call=lambda s=self._session: s.plan_read(path, at, size),
        )

    def write(self, path: str, data: bytes, at: int = 0):
        """Overwrite ``data`` at offset ``at`` through the Figure-6 path.

        With write fusion on (the default), the update is planned and
        its steps fuse with adjacent sessions' reads, writes and cycles.
        """
        return self._engine._run(
            "write",
            self.user,
            lambda s=self._session: s.write(path, data, at),
            plan_call=(
                (lambda s=self._session: s.plan_write(path, data, at))
                if self._engine.fuse_writes
                else None
            ),
        )

    def append(self, path: str, data: bytes) -> FileStat:
        """Grow the file by ``data`` bytes at its end."""
        return self._engine._run(
            "append",
            self.user,
            lambda s=self._session: s.append(path, data),
            plan_call=(
                (lambda s=self._session: s.plan_append(path, data))
                if self._engine.fuse_writes
                else None
            ),
        )

    def delete(self, path: str) -> None:
        """Delete a file: free its blocks, drop its key (no device I/O)."""
        return self._engine._run("delete", self.user, lambda s=self._session: s.delete(path))

    def logout(self) -> None:
        """Close every file and forget this user's keys."""
        return self._engine._run("logout", self.user, lambda s=self._session: s.logout())

    def deniable_view(self) -> KeyRing:
        """A key ring this user could plausibly disclose under coercion."""
        return self._engine._run(
            "deniable_view", self.user, lambda s=self._session: s.deniable_view()
        )

    def __enter__(self) -> "ConcurrentSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._session.active:
            self.logout()


class ConcurrentVolumeService:
    """Fair, batching, thread-safe scheduler over a :class:`HiddenVolumeService`.

    Parameters
    ----------
    service:
        The sequential facade to serve.  The engine becomes the only
        legal way to drive it; bypassing the engine from another thread
        violates the core's locking contract (and will usually trip the
        agent's :class:`~repro.errors.ConcurrentAccessError` tripwire).
    dummy_to_real_ratio:
        Dummy updates injected per real operation (Section 4.1.3).
        Fractional ratios accrue: at ``0.5`` every second real operation
        is followed by one dummy update.
    quantum:
        Maximum requests the scheduler pops per scheduling quantum (and
        the cap on one fused plan buffer).  Within a quantum, adjacent
        planned steps fuse into batched device calls, and the quantum's
        dummy credit flushes as batched bursts.
    fuse_writes:
        When True (default), writes and appends are planned through the
        plan kernel and fuse across sessions like reads do; ``False``
        executes them one at a time (the pre-plan-kernel engine), which
        is the baseline the fusion benchmarks compare against.
    gather_timeout_s:
        How long the scheduler waits for just-fulfilled clients to
        resubmit before serving a narrower batch; ``None`` keeps the
        tuned default, ``0`` disables gathering (each request is served
        as soon as it is popped, preserving per-session FIFO order but
        forfeiting batch width).
    journal:
        Optional :class:`~repro.core.plan.PlanJournal`; when given,
        every plan — fused flushes and the agent's direct executions
        alike — is recorded before its first device request and marked
        committed after its last.  Defaults to the wrapped service's
        own durable journal (``service.journal``) when it has one.
    """

    def __init__(
        self,
        service: HiddenVolumeService,
        dummy_to_real_ratio: float = 1.0,
        quantum: int = 16,
        fuse_writes: bool = True,
        gather_timeout_s: float | None = None,
        journal: PlanJournal | None = None,
    ):
        if dummy_to_real_ratio < 0:
            raise ValueError("dummy_to_real_ratio must be non-negative")
        if quantum < 1:
            raise ValueError("quantum must be at least 1")
        if gather_timeout_s is not None and gather_timeout_s < 0:
            raise ValueError("gather_timeout_s must be non-negative")
        self.service = service
        self.dummy_to_real_ratio = dummy_to_real_ratio
        self.quantum = quantum
        self.fuse_writes = fuse_writes
        self.gather_timeout_s = (
            _GATHER_TIMEOUT_S if gather_timeout_s is None else gather_timeout_s
        )
        # A file-backed service already carries its durable intent log;
        # inherit it so fused flushes stay journalled (and recoverable)
        # through the engine too.
        self.journal = journal if journal is not None else service.journal
        if self.journal is not None:
            # Direct agent executions (creates, dummy bursts, unfused
            # writes) journal at the agent seam; fused flushes journal
            # in _flush_plans.  Together the intent log is complete.
            service.agent.plan_journal = self.journal
        self.stats = EngineStats()
        self._queue_lock = threading.Lock()
        # The scheduler thread is the only waiter on this condition;
        # clients wake on their own request's completion event instead,
        # so a fulfilment is a targeted wake, not a thundering herd.
        self._cond = threading.Condition(self._queue_lock)
        self._queues: dict[str, deque[_Request]] = {}
        self._rotation: deque[str] = deque()
        self._pending_count = 0
        # Registry of client threads (ident -> monotonic time of last
        # submit), maintained with one dict store under the enqueue
        # lock.  The scheduler gathers until the queues hold one request
        # per registered client before popping — that is what makes
        # device batches as wide as the worker pool — and lazily prunes
        # clients that stopped submitting (see _prune_clients).
        self._clients: dict[int, float] = {}
        # True only while the scheduler blocks on the condition; submits
        # skip the (futex-touching) notify when the scheduler is busy
        # executing anyway — it will re-check the queues on its own.
        self._scheduler_waiting = False
        self._dummy_credit = 0.0
        self._closed = False
        self._shutdown = False
        self._broken: BaseException | None = None
        self._scheduler = threading.Thread(
            target=self._serve_loop, name="hidden-volume-scheduler", daemon=True
        )
        self._scheduler.start()

    # -- public surface ---------------------------------------------------------------

    def login(self, keyring: KeyRing, stream: str | None = None) -> ConcurrentSession:
        """Open a session (thread-safe); returns a :class:`ConcurrentSession`.

        ``stream`` defaults to the key ring's owner name, so each user's
        requests carry their own trace stream — the attribution the
        attacker experiments slice on.
        """
        label = stream if stream is not None else keyring.owner
        session = self._run(
            "login", keyring.owner, lambda: self.service.login(keyring, label)
        )
        return ConcurrentSession(self, session)

    def idle(self, num_dummy_updates: int) -> None:
        """Run a burst of dummy updates through the scheduler (batched).

        ``idle(0)`` is a useful no-op barrier: requests execute in
        order, so its return guarantees every previously submitted
        operation *and its trailing dummy burst* have finished.
        """

        def burst() -> None:
            done = self.service.agent.dummy_update_batch(num_dummy_updates)
            self.stats.dummy_updates += len(done)

        self._run("idle", "<idle>", burst)

    def flush(self) -> None:
        """Persist all state (see :meth:`HiddenVolumeService.flush`)."""
        self._run("flush", "<service>", self.service.flush)

    def close(self) -> None:
        """Drain pending requests, close the service, stop the scheduler.

        Idempotent.  Requests submitted after ``close`` raise
        :class:`~repro.errors.ServiceClosedError`.
        """
        with self._queue_lock:
            already = self._closed
            self._closed = True
        if already:
            self._scheduler.join(timeout=_SCHEDULER_JOIN_TIMEOUT_S)
            return
        # The close request joins the queue *after* everything already
        # submitted, so the scheduler finishes outstanding work first.
        try:
            self._execute(_Request("close", "<service>", self.service.close))
        except ServiceClosedError:
            # The scheduler died earlier; nothing else can touch the
            # core any more, so closing the service directly is safe.
            self.service.close()
        finally:
            with self._cond:
                self._shutdown = True
                self._cond.notify_all()
            self._scheduler.join(timeout=_SCHEDULER_JOIN_TIMEOUT_S)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has shut this engine down."""
        return self._closed

    def __enter__(self) -> "ConcurrentVolumeService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request intake ---------------------------------------------------------------

    def _run(
        self,
        kind: str,
        user: str,
        execute: Callable[[], Any],
        plan_call: Callable[[], PlannedOp] | None = None,
    ) -> Any:
        return self._execute(_Request(kind, user, execute, plan_call))

    def _execute(self, request: _Request) -> Any:
        """Enqueue one request and block until the scheduler fulfils it.

        The submitting thread never touches the core: it enqueues, wakes
        the scheduler and sleeps on its request's own completion event —
        a targeted wake with no shared-lock thundering herd.  The timed
        wait is a safety net, not a polling loop: it bounds how long a
        client sleeps before noticing the scheduler thread died.
        """
        with self._cond:
            if self._closed and request.kind != "close":
                raise ServiceClosedError("this ConcurrentVolumeService has been closed")
            if self._broken is not None:
                raise ServiceClosedError(
                    "this ConcurrentVolumeService's scheduler died"
                ) from self._broken
            self._clients[threading.get_ident()] = time.monotonic()
            queue = self._queues.get(request.user)
            if queue is None:
                self._queues[request.user] = queue = deque()
                self._rotation.append(request.user)
            queue.append(request)
            self._pending_count += 1
            if self._scheduler_waiting:
                self._cond.notify_all()
        while not request.done.wait(timeout=_CLIENT_WAIT_TIMEOUT_S):
            if not self._scheduler.is_alive() and not request.done.is_set():
                raise ServiceClosedError(
                    "this ConcurrentVolumeService's scheduler died"
                ) from self._broken
        return request.outcome()

    # -- the scheduler ----------------------------------------------------------------

    def _pop_quantum(self) -> list[_Request]:
        """Pop up to ``quantum`` requests: round-robin across sessions."""
        with self._queue_lock:
            return self._pop_locked()

    def _pop_locked(self) -> list[_Request]:
        """:meth:`_pop_quantum` body; caller must hold the queue lock."""
        popped: list[_Request] = []
        while self._rotation and len(popped) < self.quantum:
            user = self._rotation[0]
            queue = self._queues[user]
            popped.append(queue.popleft())
            if queue:
                self._rotation.rotate(-1)
            else:
                self._rotation.popleft()
                del self._queues[user]
        self._pending_count -= len(popped)
        return popped

    def _serve_loop(self) -> None:
        """The scheduler thread: gather, pop fairly, plan, fuse, execute.

        The plan buffer survives across pops, so fusion happens across
        scheduling quanta.  Buffer order is plan order and ``fuse``
        never reorders across plans, so every flush replays a legal
        serialization of the buffered requests; a request from a session
        *with buffered plans* forces a flush first where ordering could
        be observed (see :meth:`_route_batch`), so a session never sees
        its own operations out of order.  All core state is touched
        exclusively from this thread, which is what upholds the agents'
        single-threaded locking contract (see :mod:`repro.core.agent`).
        """
        pending: list[_Planned] = []
        try:
            while True:
                # One critical section per quantum: wait for work,
                # gather arrivals, pop — three logical steps, one lock
                # acquisition (locks here are contended futexes; every
                # acquisition shaved is wall-clock off the serial path).
                with self._cond:
                    while self._pending_count == 0 and not pending and not self._shutdown:
                        self._scheduler_waiting = True
                        try:
                            self._cond.wait()
                        finally:
                            self._scheduler_waiting = False
                    if self._shutdown and self._pending_count == 0 and not pending:
                        return
                    # Gather: every registered client (except those
                    # whose plans sit in our buffer) has or is about to
                    # enqueue a request — a brief bounded wait for their
                    # arrivals makes the batch as wide as the client
                    # pool instead of racing ahead and serving
                    # stragglers one by one.  While the scheduler waits
                    # it holds no GIL, which is precisely what lets
                    # just-fulfilled clients run and resubmit.  A single
                    # client never triggers a wait: its own request is
                    # already queued, so the target is immediately met.
                    target = min(len(self._clients) - len(pending), self.quantum)
                    if (
                        target >= 2
                        and self._pending_count < target
                        and self.gather_timeout_s > 0
                    ):
                        self._scheduler_waiting = True
                        try:
                            arrived = self._cond.wait_for(
                                lambda: self._pending_count >= target or self._shutdown,
                                timeout=self.gather_timeout_s,
                            )
                        finally:
                            self._scheduler_waiting = False
                        if not arrived:
                            self._prune_clients()
                    batch = self._pop_locked()
                if batch:
                    self.stats.quanta += 1
                    self._route_batch(batch, pending)
                    continue
                if pending:
                    self._flush_plans(pending)
        except BaseException as error:  # pragma: no cover - scheduler bug safety net
            # A failure outside _route_batch's per-request handling is an
            # engine bug; make it loud for every current and future
            # client instead of hanging them.
            with self._cond:
                self._broken = error
                stranded = [
                    request for queue in self._queues.values() for request in queue
                ]
                self._queues.clear()
                self._rotation.clear()
                self._pending_count = 0
            for request in stranded + [planned.request for planned in pending]:
                if not request.done.is_set():
                    request.fulfil(error=error)
            raise

    def _prune_clients(self) -> None:
        """Drop registry entries of threads that stopped submitting.

        Called (under the lock) when a gather times out; a client whose
        last submit is older than the prune window is gone or idle, and
        waiting for it would only stall every future batch.
        """
        horizon = time.monotonic() - _CLIENT_PRUNE_S
        stale = [ident for ident, last in self._clients.items() if last < horizon]
        for ident in stale:
            del self._clients[ident]

    def _route_batch(self, batch: list[_Request], pending: list[_Planned]) -> int:
        """Plan or execute one popped batch; returns how many requests completed.

        Plannable requests are planned *at pop time* (bookkeeping order
        = buffer order) and buffered for a fused flush.  A write or
        append is planned only after the same session's earlier
        mutations have flushed: its planner reads boundary blocks from
        the device, and those bytes must reflect the session's own
        pending writes.  Reads need no such flush — their device I/O is
        entirely deferred, and fusion preserves the buffer order — so a
        session's read-after-write stays a read-after-write.
        """
        fulfilled = 0
        try:
            for request in batch:
                if request.plan_call is not None:
                    if request.kind in ("write", "append") and any(
                        planned.request.user == request.user
                        and planned.request.kind in ("write", "append")
                        for planned in pending
                    ):
                        fulfilled += self._flush_plans(pending)
                    try:
                        op = request.plan_call()
                    except BaseException as error:  # relayed, like execute errors
                        request.fulfil(error=error)
                        fulfilled += 1
                        continue
                    pending.append(_Planned(request, op))
                    if len(pending) >= self.quantum:
                        fulfilled += self._flush_plans(pending)
                    continue
                if request.kind in ("flush", "close", "idle") or any(
                    planned.request.user == request.user for planned in pending
                ):
                    fulfilled += self._flush_plans(pending)
                self._execute_one(request)
                fulfilled += 1
                if request.kind in _REAL_OPS:
                    self._accrue_dummies(1)
            return fulfilled
        except BaseException as error:
            # A scheduler-level failure (e.g. the backend closed under a
            # dummy burst) must never strand an already-popped request:
            # its submitter is no longer in any queue, so nothing else
            # would ever wake it.  Relay the error to every unfinished
            # request of this batch (buffered plans included) instead of
            # killing the scheduler.
            for request in batch + [planned.request for planned in pending]:
                if not request.done.is_set():
                    request.fulfil(error=error)
                    fulfilled += 1
            pending.clear()
            return fulfilled

    def _execute_one(self, request: _Request) -> None:
        try:
            result = request.execute()
        except BaseException as error:  # relayed to the submitting thread
            request.fulfil(error=error)
        else:
            self.stats.real_ops += request.kind in _REAL_OPS
            request.fulfil(result)

    # -- dummy interleave -------------------------------------------------------------

    def _accrue_dummies(self, real_ops: int) -> None:
        self._dummy_credit += real_ops * self.dummy_to_real_ratio
        count = int(self._dummy_credit)
        if count <= 0:
            return
        self._dummy_credit -= count
        try:
            self.stats.dummy_updates += len(self.service.agent.dummy_update_batch(count))
        except NotLoggedInError:
            # Volatile agent with an empty selection space (no files
            # disclosed yet): there is nothing to dummy-update, and no
            # real data whose updates would need hiding either.
            pass

    # -- fused flushes ----------------------------------------------------------------

    def _flush_plans(self, pending: list[_Planned]) -> int:
        """Fuse and execute the buffered plans as batched device calls.

        The device sees every plan's steps in submission order — the
        same requests, in the same order, a serial execution would
        issue — with per-event stream labels preserving per-session
        trace attribution; :func:`~repro.core.plan.fuse` only widens
        adjacent same-kind steps into batched calls.  Payload decryption
        runs per (file) key through the vectorized cipher path inside
        the executor.  Returns how many requests completed.
        """
        if not pending:
            return 0
        flushed = len(pending)
        plans = [planned.op.plan for planned in pending]
        if self.journal is not None:
            for plan in plans:
                self.journal.record(plan)
        runs = fuse(plans)
        read_requests = sum(1 for planned in pending if planned.request.kind == "read")
        if read_requests:
            self.stats.read_batches += 1
            self.stats.batched_read_requests += read_requests
            self.stats.largest_read_batch = max(self.stats.largest_read_batch, read_requests)
        for run in runs:
            if run.kind in (KIND_WRITE, KIND_CYCLE) and run.source_count >= 2:
                self.stats.write_fusions += 1
                self.stats.fused_write_steps += len(run.steps)
                self.stats.largest_write_fusion = max(
                    self.stats.largest_write_fusion, run.source_count
                )
        count = sum(1 for planned in pending if planned.request.kind in _REAL_OPS)
        self.stats.real_ops += count
        try:
            payloads = execute_runs(runs, self.service.volume.device, self.service.volume.cipher_for)
        except BaseException as error:
            for planned in pending:
                if not planned.request.done.is_set():
                    planned.request.fulfil(error=error)
            pending.clear()
            self._accrue_dummies(count)
            return flushed
        if self.journal is not None:
            # Every plan of the batch has fully landed; a surfaced error
            # above deliberately leaves the entries uncommitted so a
            # durable journal rolls the partial progress back on the
            # next open.
            self.journal.mark_committed()
        for position, planned in enumerate(pending):
            try:
                result = planned.op.finish(payloads.get(position, []))
            except BaseException as error:  # pragma: no cover - finisher bug safety net
                planned.request.fulfil(error=error)
            else:
                planned.request.fulfil(result)
        pending.clear()
        self._accrue_dummies(count)
        return flushed
