"""Session-oriented service facade and declarative scenario runner.

This package is the public face of the reproduction: a
:class:`HiddenVolumeService` serves byte-granular :class:`Session`
traffic over a hidden volume (the paper's Figure-3 agent seen as a
multi-user service), and :func:`run_experiment` executes declarative
:class:`Scenario` descriptions that unify system construction,
workloads, the round-robin simulator and the attackers.
"""

from repro.service.concurrent import (
    ConcurrentSession,
    ConcurrentVolumeService,
    EngineStats,
)
from repro.service.facade import (
    CONSTRUCTIONS,
    FileStat,
    HiddenVolumeService,
    ObliviousConfig,
    Session,
)
from repro.service.scenario import (
    ExperimentResult,
    Retrieval,
    Scenario,
    TableUpdates,
    TrafficAnalysisProbe,
    UpdateAnalysisProbe,
    Updates,
    run_experiment,
)
from repro.sim.engine import ConcurrencyScenario, CrashScenario

__all__ = [
    "CONSTRUCTIONS",
    "HiddenVolumeService",
    "Session",
    "FileStat",
    "ObliviousConfig",
    "ConcurrentVolumeService",
    "ConcurrentSession",
    "EngineStats",
    "Scenario",
    "ConcurrencyScenario",
    "CrashScenario",
    "Retrieval",
    "Updates",
    "TableUpdates",
    "UpdateAnalysisProbe",
    "TrafficAnalysisProbe",
    "ExperimentResult",
    "run_experiment",
]
