"""The session-oriented service facade over a hidden volume.

The paper's constructions are ultimately a *service* (Sections 4.1-4.2,
Figure 6): many users log in, issue byte-granular reads and updates
against hidden files, and log out, while the agent hides the access
patterns.  :class:`HiddenVolumeService` is that service — it bundles the
simulated storage, the StegFS volume, one of the two update-hiding
agents and (optionally) the hierarchical oblivious read path, and hands
out :class:`Session` objects that speak in *paths and byte ranges*.

No caller of this module ever touches ``data_field_bytes``, block
indices or ``FileAccessKey`` plumbing: the session translates byte
ranges to Figure-6 block updates internally, and key custody follows the
construction (FAK-held keys for the volatile agent, the master key for
the non-volatile agent).

Quickstart::

    service = HiddenVolumeService.create("volatile", volume_mib=16, seed=7)
    alice = service.login(service.new_keyring("alice"))
    alice.create("/alice/report.txt", b"top secret")
    alice.write("/alice/report.txt", b"TOP", at=0)
    assert alice.read("/alice/report.txt", size=3) == b"TOP"
    alice.logout()           # the agent forgets alice's keys
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.core.agent import StegAgent, UpdateResult
from repro.core.journal import JournalBackend, journal_sidecar_path
from repro.core.nonvolatile import NonVolatileAgent
from repro.core.oblivious.reader import ObliviousReader
from repro.core.oblivious.store import ObliviousStore, ObliviousStoreConfig
from repro.core.plan import IoPlan, PlanJournal, PlannedOp, Step
from repro.core.volatile import VolatileAgent
from repro.crypto.keys import FileAccessKey, KeyRing
from repro.crypto.prng import Sha256Prng
from repro.errors import (
    ByteRangeError,
    ServiceClosedError,
    ServiceError,
    SessionClosedError,
    SessionConflictError,
)
from repro.stegfs.file import HiddenFile
from repro.stegfs.filesystem import StegFsVolume
from repro.storage.backend import BlockBackend, MmapFileBackend
from repro.storage.device import RawDevice, split_volume
from repro.storage.disk import MIB, RawStorage, StorageGeometry
from repro.storage.latency import DiskLatencyModel

CONSTRUCTIONS = ("volatile", "nonvolatile")


@dataclass(frozen=True)
class ObliviousConfig:
    """Declarative shape of the optional oblivious read path (Section 5).

    When passed to :meth:`HiddenVolumeService.create`, the raw volume is
    split into a StegFS partition and an oblivious partition, and
    sessions gain ``read(..., oblivious=True)``.

    Attributes
    ----------
    buffer_blocks:
        Size of the hierarchy's first level (the paper's buffer knob).
    last_level_blocks:
        Capacity of the deepest level; together with ``buffer_blocks``
        this fixes the hierarchy height.
    partition_blocks:
        Blocks reserved for the oblivious partition; defaults to half
        the volume.
    """

    buffer_blocks: int = 8
    last_level_blocks: int = 256
    partition_blocks: int | None = None


@dataclass(frozen=True)
class FileStat:
    """Public metadata of one file visible to a session."""

    path: str
    size_bytes: int
    num_blocks: int
    is_decoy: bool


class Session:
    """One logged-in user's handle on the service.

    A session owns the user's :class:`~repro.crypto.keys.KeyRing`, keeps
    the user's files open with the agent, and exposes byte-granular
    ``read``/``write``/``append`` that are translated into block
    operations (the Figure-6 update algorithm for writes) internally.
    Sessions are created by :meth:`HiddenVolumeService.login` only.
    """

    def __init__(self, service: "HiddenVolumeService", keyring: KeyRing, stream: str):
        self._service = service
        self.keyring = keyring
        self.stream = stream
        self._handles: dict[str, HiddenFile] = {}
        self._closed = False

    # -- introspection ---------------------------------------------------------------

    @property
    def user(self) -> str:
        """Name of the user who opened this session."""
        return self.keyring.owner

    @property
    def active(self) -> bool:
        """Whether the session is still logged in."""
        return not self._closed

    @property
    def paths(self) -> list[str]:
        """Paths of the files this session has open, sorted."""
        return sorted(self._handles)

    def stat(self, path: str) -> FileStat:
        """Size and shape of one open file."""
        handle = self._handle(path)
        return FileStat(
            path=path,
            size_bytes=handle.size_bytes,
            num_blocks=handle.num_blocks,
            is_decoy=handle.is_dummy,
        )

    # -- internals -------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(f"session of {self.user!r} has logged out")

    def _handle(self, path: str) -> HiddenFile:
        self._check_open()
        handle = self._handles.get(path)
        if handle is None:
            raise ServiceError(f"session of {self.user!r} has no file at {path!r}")
        return handle

    def _attach(self, path: str, handle: HiddenFile) -> None:
        handle.owner = self.user
        self._handles[path] = handle

    # -- file lifecycle --------------------------------------------------------------

    def create(self, path: str, data: bytes) -> FileStat:
        """Hide a new file at ``path`` and register its key in the key ring."""
        self._check_open()
        if path in self._handles:
            raise ServiceError(f"session of {self.user!r} already has a file at {path!r}")
        fak = self._service._generate_fak(self.user, path, is_dummy=False)
        handle = self._service.agent.create_file(fak, path, data, self.stream)
        self.keyring.add_hidden(path, fak)
        self._attach(path, handle)
        return self.stat(path)

    def create_decoy(self, path: str, size_bytes: int) -> FileStat:
        """Create a dummy file of random bytes for plausible deniability.

        The decoy's blocks widen the agent's dummy-selection space
        (Section 4.2.1: dummy files of approximately data-file size are
        distributed to the users).
        """
        self._check_open()
        if path in self._handles:
            raise ServiceError(f"session of {self.user!r} already has a file at {path!r}")
        service = self._service
        fak = service._generate_fak(self.user, path, is_dummy=True)
        num_blocks = service.volume.blocks_for_size(max(0, size_bytes))
        content = service._decoy_prng.spawn(f"decoy:{self.user}:{path}").random_bytes(
            num_blocks * service.volume.data_field_bytes
        )
        handle = service.agent.create_file(fak, path, content, self.stream)
        self.keyring.add_dummy(path, fak)
        self._attach(path, handle)
        return self.stat(path)

    def delete(self, path: str) -> None:
        """Delete a file (real or decoy): free its blocks, drop its key.

        Deletion routes to
        :meth:`~repro.stegfs.filesystem.StegFsVolume.delete_file`: every
        block returns to the dummy pool with its ciphertext intact, so
        — exactly as the paper requires — deleting leaves **no device
        I/O** and no on-disk trace distinguishable from dummy data.  The
        path's FAK is removed from the session's key ring; without it
        the file is unrecoverable.
        """
        handle = self._handle(path)
        self._service.agent.delete_file(handle, self.stream)
        del self._handles[path]
        self.keyring.remove(path)

    def logout(self) -> None:
        """Save dirty headers, close every file and forget the keys.

        After logout the agent retains nothing about this user; for the
        volatile agent the selection space shrinks accordingly.
        """
        self._check_open()
        for handle in self._handles.values():
            self._service.agent.close_file(handle, self.stream)
        self._handles.clear()
        self._closed = True
        self._service._forget_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._closed:
            self.logout()

    # -- byte-granular data path -----------------------------------------------------

    def read(
        self, path: str, at: int = 0, size: int | None = None, oblivious: bool = False
    ) -> bytes:
        """Read ``size`` bytes at byte offset ``at`` (the whole file by default).

        With ``oblivious=True`` the blocks are served through the
        hierarchical oblivious store (requires a service created with an
        :class:`ObliviousConfig`), hiding the read pattern from a
        traffic-analysis attacker.
        """
        handle = self._handle(path)
        if at < 0:
            raise ByteRangeError("read offset must be non-negative")
        if size is not None and size < 0:
            raise ByteRangeError("read size must be non-negative")
        if size is None:
            size = max(0, handle.size_bytes - at)
        end = at + size
        if end > handle.size_bytes:
            raise ByteRangeError(
                f"read of [{at}, {end}) exceeds the {handle.size_bytes}-byte file {path!r}"
            )
        if size == 0:
            return b""
        if oblivious:
            reader = self._service._require_oblivious()
            if at == 0 and end == handle.size_bytes:
                return reader.read_file(handle, self.stream)
            return self._read_range(handle, at, end, reader.read_block)
        if at == 0 and end == handle.size_bytes:
            return self._service.agent.read_file(handle, self.stream)
        # Multi-block ranges go through the batched agent read: the device
        # sees the same per-block requests in the same (ascending logical)
        # order as a read_block loop — trace-identical — without the
        # per-block Python round trips.
        payload_bytes = self._service.volume.data_field_bytes
        first = at // payload_bytes
        last = (end - 1) // payload_bytes
        pieces = self._service.agent.read_blocks(handle, range(first, last + 1), self.stream)
        joined = b"".join(pieces)
        return joined[at - first * payload_bytes : end - first * payload_bytes]

    def plan_read(self, path: str, at: int = 0, size: int | None = None) -> PlannedOp:
        """Plan a byte-range read without executing it (the engine's path).

        Validation mirrors :meth:`read` exactly (same errors, same
        messages); the returned plan's steps carry the content cipher so
        the executor decrypts them grouped per file key, and ``finish``
        slices the partial boundary blocks off the joined payloads.
        Unlike :meth:`read` there is no whole-file fast path: every
        planned read goes block-by-block so it can join a fused batch.
        """
        handle = self._handle(path)
        if at < 0:
            raise ByteRangeError("read offset must be non-negative")
        if size is not None and size < 0:
            raise ByteRangeError("read size must be non-negative")
        if size is None:
            size = max(0, handle.size_bytes - at)
        end = at + size
        if end > handle.size_bytes:
            raise ByteRangeError(
                f"read of [{at}, {end}) exceeds the {handle.size_bytes}-byte file {path!r}"
            )
        if size == 0:
            return PlannedOp(IoPlan([], label="session_read"), lambda payloads: b"")
        payload_bytes = self._service.volume.data_field_bytes
        first = at // payload_bytes
        last = (end - 1) // payload_bytes
        plan = self._service.agent.plan_read_blocks(handle, range(first, last + 1), self.stream)
        head = at - first * payload_bytes
        tail = end - first * payload_bytes

        def finish(payloads: list[bytes]) -> bytes:
            return b"".join(payloads)[head:tail]

        return PlannedOp(IoPlan(plan.steps, label="session_read"), finish)

    def plan_write(self, path: str, data: bytes, at: int = 0) -> PlannedOp:
        """Plan a byte-range write without executing it (the engine's path).

        Partially covered boundary blocks are read back *at plan time*
        (the one place a planner touches the device), which is sound
        inside the engine because pending plans of *other* sessions can
        only reseal this file's blocks — plaintext-preserving — and the
        engine flushes this session's own pending writes first.  The
        Figure-6 draws and bookkeeping all run now, via
        :meth:`~repro.core.agent.StegAgent.plan_update_range`; executing
        the returned plan later commits the same bytes in the same
        order a direct :meth:`write` would.
        """
        handle = self._handle(path)
        if at < 0:
            raise ByteRangeError("write offset must be non-negative")
        if not data:
            return PlannedOp(IoPlan([], label="session_write"), lambda payloads: [])
        end = at + len(data)
        if end > handle.size_bytes:
            raise ByteRangeError(
                f"write of [{at}, {end}) exceeds the {handle.size_bytes}-byte file {path!r}; "
                "use append() to grow a file"
            )
        agent = self._service.agent
        payload_bytes = self._service.volume.data_field_bytes
        first = at // payload_bytes
        last = (end - 1) // payload_bytes
        head_pad = at - first * payload_bytes
        tail_pad = (last + 1) * payload_bytes - end

        region = bytearray()
        first_current: bytes | None = None
        if head_pad:
            # repro-lint: ignore[PLN001] -- documented plan-time boundary read; sound per docstring
            first_current = agent.read_block(handle, first, self.stream)
            region += first_current[:head_pad]
        region += data
        if tail_pad:
            if last == first and first_current is not None:
                last_current = first_current
            else:
                # repro-lint: ignore[PLN001] -- documented plan-time boundary read; see docstring
                last_current = agent.read_block(handle, last, self.stream)
            region += last_current[payload_bytes - tail_pad :]

        payloads = [
            bytes(region[offset : offset + payload_bytes])
            for offset in range(0, len(region), payload_bytes)
        ]
        plan, results = agent.plan_update_range(handle, first, payloads, self.stream)
        return PlannedOp(IoPlan(plan.steps, label="session_write"), lambda payloads: results)

    def plan_append(self, path: str, data: bytes) -> PlannedOp:
        """Plan an append without executing it (the engine's path).

        Combines the tail-block Figure-6 update, the whole-block appends
        and the grown header's save into one plan; the file-size
        bookkeeping happens now, so ``finish`` just stats the file.  The
        tail block, when partially filled, is read back at plan time
        (see :meth:`plan_write` for why that is sound in the engine).
        """
        handle = self._handle(path)
        if not data:
            return PlannedOp(IoPlan([], label="session_append"), lambda payloads: self.stat(path))
        agent = self._service.agent
        payload_bytes = self._service.volume.data_field_bytes
        old_size = handle.size_bytes
        tail_used = old_size % payload_bytes
        steps: list[Step] = []

        remaining = data
        if tail_used:
            tail_logical = old_size // payload_bytes
            tail_room = payload_bytes - tail_used
            # repro-lint: ignore[PLN001] -- documented plan-time tail read; sound per plan_write
            current = agent.read_block(handle, tail_logical, self.stream)
            merged = current[:tail_used] + remaining[:tail_room]
            tail_plan, _ = agent.plan_update_range(handle, tail_logical, [merged], self.stream)
            steps.extend(tail_plan.steps)
            remaining = remaining[tail_room:]
        if remaining:
            chunks = [
                remaining[offset : offset + payload_bytes]
                for offset in range(0, len(remaining), payload_bytes)
            ]
            grow_plan, _ = agent.plan_append_blocks(handle, chunks, self.stream)
            steps.extend(grow_plan.steps)
        handle.header.file_size = old_size + len(data)
        handle.mark_dirty()
        steps.extend(agent.plan_save_file(handle, self.stream).steps)
        return PlannedOp(IoPlan(steps, label="session_append"), lambda payloads: self.stat(path))

    def _read_range(self, handle: HiddenFile, at: int, end: int, read_block) -> bytes:
        payload_bytes = self._service.volume.data_field_bytes
        first = at // payload_bytes
        last = (end - 1) // payload_bytes
        pieces = [read_block(handle, logical, self.stream) for logical in range(first, last + 1)]
        joined = b"".join(pieces)
        return joined[at - first * payload_bytes : end - first * payload_bytes]

    def write(self, path: str, data: bytes, at: int = 0) -> list[UpdateResult]:
        """Overwrite ``data`` at byte offset ``at`` through the Figure-6 path.

        The byte range is translated into a run of logical-block updates:
        partially covered boundary blocks are read back and merged, then
        the whole run goes through
        :meth:`~repro.core.agent.StegAgent.update_range`, so every
        touched block is relocated/dummy-mixed exactly as a hand-wired
        caller would see.  The range must lie within the file's current
        extent; use :meth:`append` to grow it.
        """
        handle = self._handle(path)
        if at < 0:
            raise ByteRangeError("write offset must be non-negative")
        if not data:
            return []
        end = at + len(data)
        if end > handle.size_bytes:
            raise ByteRangeError(
                f"write of [{at}, {end}) exceeds the {handle.size_bytes}-byte file {path!r}; "
                "use append() to grow a file"
            )
        agent = self._service.agent
        payload_bytes = self._service.volume.data_field_bytes
        first = at // payload_bytes
        last = (end - 1) // payload_bytes
        head_pad = at - first * payload_bytes
        tail_pad = (last + 1) * payload_bytes - end

        region = bytearray()
        first_current: bytes | None = None
        if head_pad:
            first_current = agent.read_block(handle, first, self.stream)
            region += first_current[:head_pad]
        region += data
        if tail_pad:
            if last == first and first_current is not None:
                last_current = first_current
            else:
                last_current = agent.read_block(handle, last, self.stream)
            region += last_current[payload_bytes - tail_pad :]

        payloads = [
            bytes(region[offset : offset + payload_bytes])
            for offset in range(0, len(region), payload_bytes)
        ]
        return agent.update_range(handle, first, payloads, self.stream)

    def append(self, path: str, data: bytes) -> FileStat:
        """Grow the file by ``data`` bytes at its end.

        A partially filled tail block is completed through the Figure-6
        update path; whole new blocks are allocated at uniformly random
        free locations, exactly like the blocks of a fresh file.
        """
        handle = self._handle(path)
        if not data:
            return self.stat(path)
        agent = self._service.agent
        payload_bytes = self._service.volume.data_field_bytes
        old_size = handle.size_bytes
        tail_used = old_size % payload_bytes

        remaining = data
        if tail_used:
            tail_logical = old_size // payload_bytes
            tail_room = payload_bytes - tail_used
            current = agent.read_block(handle, tail_logical, self.stream)
            merged = current[:tail_used] + remaining[:tail_room]
            agent.update_range(handle, tail_logical, [merged], self.stream)
            remaining = remaining[tail_room:]
        if remaining:
            chunks = [
                remaining[offset : offset + payload_bytes]
                for offset in range(0, len(remaining), payload_bytes)
            ]
            agent.append_blocks(handle, chunks, self.stream)
        handle.header.file_size = old_size + len(data)
        handle.mark_dirty()
        agent.save_file(handle, self.stream)
        return self.stat(path)

    # -- coercion --------------------------------------------------------------------

    def deniable_view(self) -> KeyRing:
        """A key ring this user could plausibly disclose under coercion.

        Decoy keys are revealed as-is; hidden-file keys are shown in
        their "claimed dummy" form with the content key withheld
        (Section 4.2.1).  The returned ring is fully functional — a
        coercer can :meth:`HiddenVolumeService.login` with it — but it
        opens every file as a dummy and never yields the hidden
        plaintext.
        """
        self._check_open()
        disclosed = KeyRing(owner=self.user)
        for path, fak in self.keyring.deniable_view().items():
            disclosed.add_dummy(path, fak)
        return disclosed


class HiddenVolumeService:
    """Facade bundling storage, volume, agent and key management.

    Wraps existing parts (``HiddenVolumeService(storage, volume, agent,
    prng)``) or builds a fresh system (:meth:`create`).  All user-facing
    work goes through :class:`Session` objects handed out by
    :meth:`login`.
    """

    def __init__(
        self,
        storage: RawStorage,
        volume: StegFsVolume,
        agent: StegAgent,
        prng: Sha256Prng,
        oblivious_store: ObliviousStore | None = None,
        oblivious_reader: ObliviousReader | None = None,
        fak_entropy: bytes | None = None,
    ):
        self.storage = storage
        self.volume = volume
        self.agent = agent
        self.prng = prng
        self.oblivious_store = oblivious_store
        self.oblivious_reader = oblivious_reader
        # By default new-file FAKs derive deterministically from the
        # service PRNG — reproducible, but it makes the create seed a
        # master secret (anyone knowing seed+owner+path can re-derive
        # the keys).  Deployments pass ``fak_entropy`` (e.g.
        # ``os.urandom(32)``) to root key generation in real entropy.
        fak_root = prng if fak_entropy is None else Sha256Prng(fak_entropy)
        self._fak_prng = fak_root.spawn("service-faks")
        self._decoy_prng = prng.spawn("service-decoys")
        self._sessions: dict[str, Session] = {}
        self._service_closed = False
        #: Durable intent log for file-backed volumes; attached by
        #: :meth:`create`/:meth:`open`, ``None`` for in-memory services.
        self.journal: JournalBackend | None = None

    # -- construction ----------------------------------------------------------------

    @classmethod
    def create(
        cls,
        construction: str = "volatile",
        volume_mib: int = 64,
        seed: int = 0,
        block_size: int = 4096,
        latency: DiskLatencyModel | None = None,
        oblivious: ObliviousConfig | None = None,
        path: str | os.PathLike | None = None,
        fak_entropy: bytes | None = None,
        journal: bool = True,
    ) -> "HiddenVolumeService":
        """Build a ready-to-serve hidden volume.

        ``construction`` selects the agent: ``"volatile"`` is the
        paper's Construction 2 ("StegHide", per-user keys, login/logout)
        and ``"nonvolatile"`` is Construction 1 ("StegHide*", agent-held
        master key).  The wiring and PRNG derivation are identical to
        the legacy ``build_steghide_system`` helpers, so a service built
        here produces bit-identical device traces to the old hand-wired
        path.

        With ``path`` the volume is formatted onto a durable
        memory-mapped file instead of process memory: the file receives
        the same random fill and thereafter every encrypted block, and
        nothing else — no geometry, no bitmaps, no directory — so a
        seized file is indistinguishable from random bytes.  Reopen it
        later with :meth:`open` (same ``block_size`` and, for the
        non-volatile construction, the same ``seed``).

        **Treat the seed as a secret.**  Under the default derivation
        the FAK of every file a session creates is a deterministic
        function of ``(seed, owner, path)``, so anyone holding the seed
        can re-derive the keys of guessable paths — and re-creating a
        deleted path mints the same FAK again.  Pass ``fak_entropy``
        (e.g. ``os.urandom(32)``, kept with the key rings) to root key
        generation in real entropy instead; reproduce a session's keys
        by passing the same entropy to :meth:`open`.

        File-backed volumes also get a durable intent log by default: a
        fixed-size, cipher-sealed ``<path>.journal`` sidecar that lets
        :meth:`open` roll a crash-torn plan back to its pre-plan bytes
        (see :mod:`repro.core.journal`).  Pass ``journal=False`` to opt
        out; in-memory services ignore the flag (nothing survives the
        process anyway).
        """
        if construction not in CONSTRUCTIONS:
            raise ValueError(
                f"unknown construction {construction!r}; expected one of {CONSTRUCTIONS}"
            )
        prng = Sha256Prng(seed)
        geometry = StorageGeometry.from_capacity(volume_mib * MIB, block_size)
        backend = None
        journal_backend = None
        if path is not None:
            backend = MmapFileBackend.create(path, geometry.block_size, geometry.num_blocks)
            if journal:
                try:
                    journal_backend = JournalBackend.create(
                        journal_sidecar_path(path), cls._journal_key(prng)
                    )
                except BaseException:
                    backend.close()
                    os.unlink(path)
                    raise
        storage = RawStorage(geometry, latency=latency, backend=backend)
        storage.fill_random(seed)
        service = cls._wire(storage, construction, prng, oblivious, fak_entropy=fak_entropy)
        if journal_backend is not None:
            service._attach_journal(journal_backend, backend)
        return service

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        construction: str = "volatile",
        seed: int = 0,
        block_size: int = 4096,
        latency: DiskLatencyModel | None = None,
        oblivious: ObliviousConfig | None = None,
        session_nonce: int | str = 0,
        fak_entropy: bytes | None = None,
        journal: bool | None = None,
        wrap_backend: Callable[[BlockBackend], BlockBackend] | None = None,
    ) -> "HiddenVolumeService":
        """Reopen a durable volume file in a fresh process.

        The volume file carries no plaintext metadata, so everything
        needed to serve it again is supplied by the owner: the
        ``block_size`` it was formatted with (the block count is
        inferred from the file size), the ``construction``, and — for
        the non-volatile agent — the original ``seed``, from which the
        agent's master key and dummy-file FAK re-derive.  Directory
        state and the allocation bitmap are *reconstructed from the
        on-disk headers* as users :meth:`login`: each key ring's FAKs
        re-locate their header chains through the Section-4.1.2 probe
        sequences, and every opened file re-registers its blocks with
        the allocator.  A wrong key ring locates nothing.

        Consequently, log every known key ring in **before** creating
        new files: a fresh allocator cannot know about blocks whose keys
        it has not yet seen, so creating files first may overwrite
        hidden data of key rings not yet disclosed — the same trade-off
        the paper's StegFS substrate makes.

        ``session_nonce`` salts this serving session's IV, allocation
        and dummy-selection streams so a reopened service does not
        replay the create-session's draws (IV reuse); pass a value you
        have not used before when serving the same volume repeatedly
        (the nonce's type is part of the salt, so ``0`` and ``"0"``
        are distinct).  ``fak_entropy`` has the same meaning as in
        :meth:`create` and governs the keys of files created *in this
        session* — pass fresh entropy unless you need to re-derive a
        previous session's keys.

        A ``<path>.journal`` sidecar (written by :meth:`create`) is
        detected automatically: its uncommitted entries are rolled back
        to their before-images *before* the service is wired, so a
        volume whose last process died mid-plan reads either the old or
        the new bytes of every plan — never a torn mixture.  Recovery
        issues only plain sealed-block writes and consumes no PRNG
        stream, so a recovered service is draw-for-draw identical to
        one that never crashed.  ``journal=True`` forces a sidecar into
        existence, ``journal=False`` ignores one (skipping recovery —
        only for forensics); ``wrap_backend`` interposes on the block
        backend *after* recovery (the fault-injection hook — see
        :class:`~repro.storage.backend.FaultInjectingBackend`).
        """
        if construction not in CONSTRUCTIONS:
            raise ValueError(
                f"unknown construction {construction!r}; expected one of {CONSTRUCTIONS}"
            )
        backend = MmapFileBackend.open(path, block_size)
        prng = Sha256Prng(seed)
        sidecar = journal_sidecar_path(path)
        journal_backend = None
        use_journal = os.path.exists(sidecar) if journal is None else journal
        if use_journal:
            key = cls._journal_key(prng)
            if os.path.exists(sidecar):
                journal_backend = JournalBackend.open(sidecar, key)
                journal_backend.recover(backend)
            else:
                journal_backend = JournalBackend.create(sidecar, key)
        device_backend = backend if wrap_backend is None else wrap_backend(backend)
        geometry = StorageGeometry(block_size=block_size, num_blocks=backend.num_blocks)
        storage = RawStorage(geometry, latency=latency, backend=device_backend)
        # The salt embeds the nonce's type: int 0 and str "0" stringify
        # identically but must not yield the same serving-session stream.
        salt = f"reopen:{type(session_nonce).__name__}:{session_nonce}"
        service = cls._wire(
            storage,
            construction,
            prng,
            oblivious,
            wiring_prng=prng.spawn(salt),
            fak_entropy=fak_entropy,
        )
        if journal_backend is not None:
            service._attach_journal(journal_backend, backend)
        return service

    @staticmethod
    def _journal_key(prng: Sha256Prng) -> bytes:
        # spawn() is a pure derivation (no parent state consumed), so
        # attaching a journal never perturbs the volume's own streams.
        return prng.spawn("journal").random_bytes(32)

    def _attach_journal(self, journal_backend: JournalBackend, backend: BlockBackend) -> None:
        journal_backend.bind(backend)
        self.journal = journal_backend
        self.agent.plan_journal = journal_backend

    @classmethod
    def _wire(
        cls,
        storage: RawStorage,
        construction: str,
        prng: Sha256Prng,
        oblivious: ObliviousConfig | None,
        wiring_prng: Sha256Prng | None = None,
        fak_entropy: bytes | None = None,
    ) -> "HiddenVolumeService":
        """Assemble volume, agent and oblivious path over prepared storage.

        ``wiring_prng`` (reopen only) feeds the streams that must *not*
        replay the create-session's draws — IVs, allocation, dummy
        selection — while the construction keys (the non-volatile
        master key) keep deriving from the root ``prng`` so that a
        reopened agent can decrypt what the original wrote.
        """
        fresh = wiring_prng is None
        wiring = prng if fresh else wiring_prng
        geometry = storage.geometry

        store = reader = None
        if oblivious is not None:
            oblivious_blocks = (
                oblivious.partition_blocks
                if oblivious.partition_blocks is not None
                else geometry.num_blocks // 2
            )
            if not 0 < oblivious_blocks < geometry.num_blocks:
                raise ValueError("oblivious partition must leave room for the StegFS partition")
            steg_part, obli_part = split_volume(storage, geometry.num_blocks - oblivious_blocks)
            device = steg_part
        else:
            device = RawDevice(storage)

        volume = StegFsVolume(device, wiring.spawn("volume"))
        # On reopen the construction keys (the non-volatile master key)
        # must re-derive from the original seed, but the selection
        # stream must be fresh per serving session.
        selection = None if fresh else wiring.spawn("agent")
        agent: StegAgent
        if construction == "volatile":
            agent = VolatileAgent(volume, prng.spawn("agent"), selection_prng=selection)
        else:
            agent = NonVolatileAgent(volume, prng.spawn("agent"), selection_prng=selection)

        if oblivious is not None:
            store = ObliviousStore(
                obli_part,
                ObliviousStoreConfig(
                    buffer_blocks=oblivious.buffer_blocks,
                    last_level_blocks=oblivious.last_level_blocks,
                ),
                wiring.spawn("store"),
            )
            reader = ObliviousReader(volume, store, wiring.spawn("reader"))
        return cls(storage, volume, agent, prng, store, reader, fak_entropy=fak_entropy)

    # -- key management --------------------------------------------------------------

    def new_keyring(self, owner: str) -> KeyRing:
        """A fresh, empty key ring for one user."""
        return KeyRing(owner=owner)

    def _generate_fak(self, owner: str, path: str, is_dummy: bool) -> FileAccessKey:
        return FileAccessKey.generate(self._fak_prng.spawn(f"{owner}:{path}"), is_dummy)

    # -- sessions --------------------------------------------------------------------

    @property
    def logged_in_users(self) -> list[str]:
        """Names of the users with an active session, sorted."""
        return sorted(self._sessions)

    def session_of(self, user: str) -> Session:
        """The active session of ``user``."""
        session = self._sessions.get(user)
        if session is None:
            raise ServiceError(f"user {user!r} has no active session")
        return session

    def login(self, keyring: KeyRing, stream: str = "default") -> Session:
        """Open a session: disclose the ring's keys and open all its files.

        Opening the files is what teaches the agent which physical
        blocks it may touch; for the volatile agent every login widens
        the dummy-selection space and every logout shrinks it.  On a
        reopened durable volume this is also what reconstructs the
        allocation bitmap: every file located through the ring's FAKs
        re-registers its blocks.
        """
        self._check_service_open()
        if keyring.owner in self._sessions:
            raise SessionConflictError(f"user {keyring.owner!r} is already logged in")
        session = Session(self, keyring, stream)
        try:
            for path, fak in keyring.all_keys().items():
                handle = self.agent.open_file(fak, path, stream)
                session._attach(path, handle)
        except Exception:
            # A stale or corrupt ring must not leave half the user's
            # blocks disclosed with no session able to close them.
            for handle in session._handles.values():
                self.agent.close_file(handle, stream)
            raise
        self._sessions[keyring.owner] = session
        return session

    def _forget_session(self, session: Session) -> None:
        self._sessions.pop(session.user, None)

    def idle(self, num_dummy_updates: int) -> None:
        """Let the agent run a burst of dummy updates, as it does between requests.

        Dummy updates are what make real Figure-6 updates statistically
        invisible; services representing a live deployment should call
        this between request bursts (Section 4.1.3).
        """
        self._check_service_open()
        self.agent.idle(num_dummy_updates)

    def concurrent(
        self,
        dummy_to_real_ratio: float = 1.0,
        quantum: int = 16,
        fuse_writes: bool = True,
        gather_timeout_s: float | None = None,
        journal: "PlanJournal | None" = None,
    ) -> "ConcurrentVolumeService":
        """Wrap this service in the thread-safe concurrent serving engine.

        The facade itself is single-threaded (the whole core is — see
        the locking contract in :mod:`repro.core.agent`); the returned
        :class:`~repro.service.concurrent.ConcurrentVolumeService`
        accepts per-session operations from any number of worker
        threads, serializes them through a fair scheduler, interleaves
        the agent's dummy stream at ``dummy_to_real_ratio`` and fuses
        adjacent block I/O — reads, writes and read/write cycles, across
        sessions — per scheduling quantum.  ``fuse_writes=False``
        restricts fusion to reads (the pre-plan-kernel behaviour);
        ``gather_timeout_s`` overrides how long the scheduler waits for
        client arrivals before serving a narrower batch (``0`` disables
        gathering entirely); ``journal`` hooks a
        :class:`~repro.core.plan.PlanJournal` recording every plan
        before its first device request.
        """
        self._check_service_open()
        from repro.service.concurrent import ConcurrentVolumeService

        return ConcurrentVolumeService(
            self,
            dummy_to_real_ratio=dummy_to_real_ratio,
            quantum=quantum,
            fuse_writes=fuse_writes,
            gather_timeout_s=gather_timeout_s,
            journal=journal,
        )

    # -- durability lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has shut this service down."""
        return self._service_closed

    def _check_service_open(self) -> None:
        if self._service_closed:
            raise ServiceClosedError("this HiddenVolumeService has been closed")

    def flush(self) -> None:
        """Persist all state: save dirty headers, push bytes to the backend.

        After a flush the volume file (for a file-backed service) holds
        everything needed to :meth:`open` it again — the process can die
        without losing hidden files, even while sessions stay logged in.
        """
        self._check_service_open()
        for session in self._sessions.values():
            for handle in session._handles.values():
                if handle.dirty:
                    self.agent.save_file(handle, session.stream)
        self.storage.flush()
        if self.journal is not None and not self.journal.closed:
            # Every committed plan's bytes are now durable, so the
            # journal can retire (trim) their entries.
            self.journal.checkpoint()
            self.journal.flush()

    def close(self) -> None:
        """Log every session out (saving dirty headers) and close the backend.

        Idempotent.  After close the service accepts no logins and the
        storage raises on block access; counters and the recorded trace
        stay readable for analysis.
        """
        if self._service_closed:
            return
        for user in list(self._sessions):
            self._sessions[user].logout()
        self.storage.close()
        if self.journal is not None and not self.journal.closed:
            self.journal.checkpoint()
            self.journal.close()
        self._service_closed = True

    def __enter__(self) -> "HiddenVolumeService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- oblivious read path ---------------------------------------------------------

    def _require_oblivious(self) -> ObliviousReader:
        if self.oblivious_reader is None:
            raise ServiceError(
                "this service was created without an ObliviousConfig; "
                "pass oblivious=ObliviousConfig(...) to HiddenVolumeService.create"
            )
        return self.oblivious_reader

    def dummy_oblivious_read(self, stream: str = "dummy") -> None:
        """Issue one dummy read against the oblivious hierarchy."""
        self._check_service_open()
        self._require_oblivious().dummy_oblivious_read(stream)

    # -- observability ---------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Blocks in the StegFS partition the agent manages."""
        return self.volume.num_blocks

    def disclosed_block_count(self) -> int:
        """Blocks currently in the agent's selection space.

        For the volatile agent this is the union of all logged-in users'
        file blocks; for the non-volatile agent the selection space is
        the whole volume.
        """
        if isinstance(self.agent, VolatileAgent):
            return self.agent.disclosed_block_count()
        return self.volume.num_blocks

    def disclosed_dummy_block_count(self) -> int:
        """Dummy blocks currently available as Figure-6 swap targets."""
        if isinstance(self.agent, VolatileAgent):
            return self.agent.disclosed_dummy_block_count()
        return self.volume.allocator.free_blocks

    def expected_update_overhead(self) -> float:
        """The paper's E = N/D expected I/O overhead at the current state."""
        return self.agent.expected_update_overhead()
