"""The session-oriented service facade over a hidden volume.

The paper's constructions are ultimately a *service* (Sections 4.1-4.2,
Figure 6): many users log in, issue byte-granular reads and updates
against hidden files, and log out, while the agent hides the access
patterns.  :class:`HiddenVolumeService` is that service — it bundles the
simulated storage, the StegFS volume, one of the two update-hiding
agents and (optionally) the hierarchical oblivious read path, and hands
out :class:`Session` objects that speak in *paths and byte ranges*.

No caller of this module ever touches ``data_field_bytes``, block
indices or ``FileAccessKey`` plumbing: the session translates byte
ranges to Figure-6 block updates internally, and key custody follows the
construction (FAK-held keys for the volatile agent, the master key for
the non-volatile agent).

Quickstart::

    service = HiddenVolumeService.create("volatile", volume_mib=16, seed=7)
    alice = service.login(service.new_keyring("alice"))
    alice.create("/alice/report.txt", b"top secret")
    alice.write("/alice/report.txt", b"TOP", at=0)
    assert alice.read("/alice/report.txt", size=3) == b"TOP"
    alice.logout()           # the agent forgets alice's keys
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import StegAgent, UpdateResult
from repro.core.nonvolatile import NonVolatileAgent
from repro.core.oblivious.reader import ObliviousReader
from repro.core.oblivious.store import ObliviousStore, ObliviousStoreConfig
from repro.core.volatile import VolatileAgent
from repro.crypto.keys import FileAccessKey, KeyRing
from repro.crypto.prng import Sha256Prng
from repro.errors import (
    ByteRangeError,
    ServiceError,
    SessionClosedError,
    SessionConflictError,
)
from repro.stegfs.file import HiddenFile
from repro.stegfs.filesystem import StegFsVolume
from repro.storage.device import RawDevice, split_volume
from repro.storage.disk import MIB, RawStorage, StorageGeometry
from repro.storage.latency import DiskLatencyModel

CONSTRUCTIONS = ("volatile", "nonvolatile")


@dataclass(frozen=True)
class ObliviousConfig:
    """Declarative shape of the optional oblivious read path (Section 5).

    When passed to :meth:`HiddenVolumeService.create`, the raw volume is
    split into a StegFS partition and an oblivious partition, and
    sessions gain ``read(..., oblivious=True)``.

    Attributes
    ----------
    buffer_blocks:
        Size of the hierarchy's first level (the paper's buffer knob).
    last_level_blocks:
        Capacity of the deepest level; together with ``buffer_blocks``
        this fixes the hierarchy height.
    partition_blocks:
        Blocks reserved for the oblivious partition; defaults to half
        the volume.
    """

    buffer_blocks: int = 8
    last_level_blocks: int = 256
    partition_blocks: int | None = None


@dataclass(frozen=True)
class FileStat:
    """Public metadata of one file visible to a session."""

    path: str
    size_bytes: int
    num_blocks: int
    is_decoy: bool


class Session:
    """One logged-in user's handle on the service.

    A session owns the user's :class:`~repro.crypto.keys.KeyRing`, keeps
    the user's files open with the agent, and exposes byte-granular
    ``read``/``write``/``append`` that are translated into block
    operations (the Figure-6 update algorithm for writes) internally.
    Sessions are created by :meth:`HiddenVolumeService.login` only.
    """

    def __init__(self, service: "HiddenVolumeService", keyring: KeyRing, stream: str):
        self._service = service
        self.keyring = keyring
        self.stream = stream
        self._handles: dict[str, HiddenFile] = {}
        self._closed = False

    # -- introspection ---------------------------------------------------------------

    @property
    def user(self) -> str:
        """Name of the user who opened this session."""
        return self.keyring.owner

    @property
    def active(self) -> bool:
        """Whether the session is still logged in."""
        return not self._closed

    @property
    def paths(self) -> list[str]:
        """Paths of the files this session has open, sorted."""
        return sorted(self._handles)

    def stat(self, path: str) -> FileStat:
        """Size and shape of one open file."""
        handle = self._handle(path)
        return FileStat(
            path=path,
            size_bytes=handle.size_bytes,
            num_blocks=handle.num_blocks,
            is_decoy=handle.is_dummy,
        )

    # -- internals -------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(f"session of {self.user!r} has logged out")

    def _handle(self, path: str) -> HiddenFile:
        self._check_open()
        handle = self._handles.get(path)
        if handle is None:
            raise ServiceError(f"session of {self.user!r} has no file at {path!r}")
        return handle

    def _attach(self, path: str, handle: HiddenFile) -> None:
        handle.owner = self.user
        self._handles[path] = handle

    # -- file lifecycle --------------------------------------------------------------

    def create(self, path: str, data: bytes) -> FileStat:
        """Hide a new file at ``path`` and register its key in the key ring."""
        self._check_open()
        if path in self._handles:
            raise ServiceError(f"session of {self.user!r} already has a file at {path!r}")
        fak = self._service._generate_fak(self.user, path, is_dummy=False)
        handle = self._service.agent.create_file(fak, path, data, self.stream)
        self.keyring.add_hidden(path, fak)
        self._attach(path, handle)
        return self.stat(path)

    def create_decoy(self, path: str, size_bytes: int) -> FileStat:
        """Create a dummy file of random bytes for plausible deniability.

        The decoy's blocks widen the agent's dummy-selection space
        (Section 4.2.1: dummy files of approximately data-file size are
        distributed to the users).
        """
        self._check_open()
        if path in self._handles:
            raise ServiceError(f"session of {self.user!r} already has a file at {path!r}")
        service = self._service
        fak = service._generate_fak(self.user, path, is_dummy=True)
        num_blocks = service.volume.blocks_for_size(max(0, size_bytes))
        content = service._decoy_prng.spawn(f"decoy:{self.user}:{path}").random_bytes(
            num_blocks * service.volume.data_field_bytes
        )
        handle = service.agent.create_file(fak, path, content, self.stream)
        self.keyring.add_dummy(path, fak)
        self._attach(path, handle)
        return self.stat(path)

    def logout(self) -> None:
        """Save dirty headers, close every file and forget the keys.

        After logout the agent retains nothing about this user; for the
        volatile agent the selection space shrinks accordingly.
        """
        self._check_open()
        for handle in self._handles.values():
            self._service.agent.close_file(handle, self.stream)
        self._handles.clear()
        self._closed = True
        self._service._forget_session(self)

    # -- byte-granular data path -----------------------------------------------------

    def read(
        self, path: str, at: int = 0, size: int | None = None, oblivious: bool = False
    ) -> bytes:
        """Read ``size`` bytes at byte offset ``at`` (the whole file by default).

        With ``oblivious=True`` the blocks are served through the
        hierarchical oblivious store (requires a service created with an
        :class:`ObliviousConfig`), hiding the read pattern from a
        traffic-analysis attacker.
        """
        handle = self._handle(path)
        if at < 0:
            raise ByteRangeError("read offset must be non-negative")
        if size is not None and size < 0:
            raise ByteRangeError("read size must be non-negative")
        if size is None:
            size = max(0, handle.size_bytes - at)
        end = at + size
        if end > handle.size_bytes:
            raise ByteRangeError(
                f"read of [{at}, {end}) exceeds the {handle.size_bytes}-byte file {path!r}"
            )
        if size == 0:
            return b""
        if oblivious:
            reader = self._service._require_oblivious()
            if at == 0 and end == handle.size_bytes:
                return reader.read_file(handle, self.stream)
            return self._read_range(handle, at, end, reader.read_block)
        if at == 0 and end == handle.size_bytes:
            return self._service.agent.read_file(handle, self.stream)
        return self._read_range(handle, at, end, self._service.agent.read_block)

    def _read_range(self, handle: HiddenFile, at: int, end: int, read_block) -> bytes:
        payload_bytes = self._service.volume.data_field_bytes
        first = at // payload_bytes
        last = (end - 1) // payload_bytes
        pieces = [read_block(handle, logical, self.stream) for logical in range(first, last + 1)]
        joined = b"".join(pieces)
        return joined[at - first * payload_bytes : end - first * payload_bytes]

    def write(self, path: str, data: bytes, at: int = 0) -> list[UpdateResult]:
        """Overwrite ``data`` at byte offset ``at`` through the Figure-6 path.

        The byte range is translated into a run of logical-block updates:
        partially covered boundary blocks are read back and merged, then
        the whole run goes through
        :meth:`~repro.core.agent.StegAgent.update_range`, so every
        touched block is relocated/dummy-mixed exactly as a hand-wired
        caller would see.  The range must lie within the file's current
        extent; use :meth:`append` to grow it.
        """
        handle = self._handle(path)
        if at < 0:
            raise ByteRangeError("write offset must be non-negative")
        if not data:
            return []
        end = at + len(data)
        if end > handle.size_bytes:
            raise ByteRangeError(
                f"write of [{at}, {end}) exceeds the {handle.size_bytes}-byte file {path!r}; "
                "use append() to grow a file"
            )
        agent = self._service.agent
        payload_bytes = self._service.volume.data_field_bytes
        first = at // payload_bytes
        last = (end - 1) // payload_bytes
        head_pad = at - first * payload_bytes
        tail_pad = (last + 1) * payload_bytes - end

        region = bytearray()
        first_current: bytes | None = None
        if head_pad:
            first_current = agent.read_block(handle, first, self.stream)
            region += first_current[:head_pad]
        region += data
        if tail_pad:
            if last == first and first_current is not None:
                last_current = first_current
            else:
                last_current = agent.read_block(handle, last, self.stream)
            region += last_current[payload_bytes - tail_pad :]

        payloads = [
            bytes(region[offset : offset + payload_bytes])
            for offset in range(0, len(region), payload_bytes)
        ]
        return agent.update_range(handle, first, payloads, self.stream)

    def append(self, path: str, data: bytes) -> FileStat:
        """Grow the file by ``data`` bytes at its end.

        A partially filled tail block is completed through the Figure-6
        update path; whole new blocks are allocated at uniformly random
        free locations, exactly like the blocks of a fresh file.
        """
        handle = self._handle(path)
        if not data:
            return self.stat(path)
        agent = self._service.agent
        payload_bytes = self._service.volume.data_field_bytes
        old_size = handle.size_bytes
        tail_used = old_size % payload_bytes

        remaining = data
        if tail_used:
            tail_logical = old_size // payload_bytes
            tail_room = payload_bytes - tail_used
            current = agent.read_block(handle, tail_logical, self.stream)
            merged = current[:tail_used] + remaining[:tail_room]
            agent.update_range(handle, tail_logical, [merged], self.stream)
            remaining = remaining[tail_room:]
        if remaining:
            chunks = [
                remaining[offset : offset + payload_bytes]
                for offset in range(0, len(remaining), payload_bytes)
            ]
            agent.append_blocks(handle, chunks, self.stream)
        handle.header.file_size = old_size + len(data)
        handle.mark_dirty()
        agent.save_file(handle, self.stream)
        return self.stat(path)

    # -- coercion --------------------------------------------------------------------

    def deniable_view(self) -> KeyRing:
        """A key ring this user could plausibly disclose under coercion.

        Decoy keys are revealed as-is; hidden-file keys are shown in
        their "claimed dummy" form with the content key withheld
        (Section 4.2.1).  The returned ring is fully functional — a
        coercer can :meth:`HiddenVolumeService.login` with it — but it
        opens every file as a dummy and never yields the hidden
        plaintext.
        """
        self._check_open()
        disclosed = KeyRing(owner=self.user)
        for path, fak in self.keyring.deniable_view().items():
            disclosed.add_dummy(path, fak)
        return disclosed


class HiddenVolumeService:
    """Facade bundling storage, volume, agent and key management.

    Wraps existing parts (``HiddenVolumeService(storage, volume, agent,
    prng)``) or builds a fresh system (:meth:`create`).  All user-facing
    work goes through :class:`Session` objects handed out by
    :meth:`login`.
    """

    def __init__(
        self,
        storage: RawStorage,
        volume: StegFsVolume,
        agent: StegAgent,
        prng: Sha256Prng,
        oblivious_store: ObliviousStore | None = None,
        oblivious_reader: ObliviousReader | None = None,
    ):
        self.storage = storage
        self.volume = volume
        self.agent = agent
        self.prng = prng
        self.oblivious_store = oblivious_store
        self.oblivious_reader = oblivious_reader
        self._fak_prng = prng.spawn("service-faks")
        self._decoy_prng = prng.spawn("service-decoys")
        self._sessions: dict[str, Session] = {}

    # -- construction ----------------------------------------------------------------

    @classmethod
    def create(
        cls,
        construction: str = "volatile",
        volume_mib: int = 64,
        seed: int = 0,
        block_size: int = 4096,
        latency: DiskLatencyModel | None = None,
        oblivious: ObliviousConfig | None = None,
    ) -> "HiddenVolumeService":
        """Build a ready-to-serve hidden volume.

        ``construction`` selects the agent: ``"volatile"`` is the
        paper's Construction 2 ("StegHide", per-user keys, login/logout)
        and ``"nonvolatile"`` is Construction 1 ("StegHide*", agent-held
        master key).  The wiring and PRNG derivation are identical to
        the legacy ``build_steghide_system`` helpers, so a service built
        here produces bit-identical device traces to the old hand-wired
        path.
        """
        if construction not in CONSTRUCTIONS:
            raise ValueError(
                f"unknown construction {construction!r}; expected one of {CONSTRUCTIONS}"
            )
        prng = Sha256Prng(seed)
        geometry = StorageGeometry.from_capacity(volume_mib * MIB, block_size)
        storage = RawStorage(geometry, latency=latency)
        storage.fill_random(seed)

        store = reader = None
        if oblivious is not None:
            oblivious_blocks = (
                oblivious.partition_blocks
                if oblivious.partition_blocks is not None
                else geometry.num_blocks // 2
            )
            if not 0 < oblivious_blocks < geometry.num_blocks:
                raise ValueError("oblivious partition must leave room for the StegFS partition")
            steg_part, obli_part = split_volume(storage, geometry.num_blocks - oblivious_blocks)
            device = steg_part
        else:
            device = RawDevice(storage)

        volume = StegFsVolume(device, prng.spawn("volume"))
        agent: StegAgent
        if construction == "volatile":
            agent = VolatileAgent(volume, prng.spawn("agent"))
        else:
            agent = NonVolatileAgent(volume, prng.spawn("agent"))

        if oblivious is not None:
            store = ObliviousStore(
                obli_part,
                ObliviousStoreConfig(
                    buffer_blocks=oblivious.buffer_blocks,
                    last_level_blocks=oblivious.last_level_blocks,
                ),
                prng.spawn("store"),
            )
            reader = ObliviousReader(volume, store, prng.spawn("reader"))
        return cls(storage, volume, agent, prng, store, reader)

    # -- key management --------------------------------------------------------------

    def new_keyring(self, owner: str) -> KeyRing:
        """A fresh, empty key ring for one user."""
        return KeyRing(owner=owner)

    def _generate_fak(self, owner: str, path: str, is_dummy: bool) -> FileAccessKey:
        return FileAccessKey.generate(self._fak_prng.spawn(f"{owner}:{path}"), is_dummy)

    # -- sessions --------------------------------------------------------------------

    @property
    def logged_in_users(self) -> list[str]:
        """Names of the users with an active session, sorted."""
        return sorted(self._sessions)

    def session_of(self, user: str) -> Session:
        """The active session of ``user``."""
        session = self._sessions.get(user)
        if session is None:
            raise ServiceError(f"user {user!r} has no active session")
        return session

    def login(self, keyring: KeyRing, stream: str = "default") -> Session:
        """Open a session: disclose the ring's keys and open all its files.

        Opening the files is what teaches the agent which physical
        blocks it may touch; for the volatile agent every login widens
        the dummy-selection space and every logout shrinks it.
        """
        if keyring.owner in self._sessions:
            raise SessionConflictError(f"user {keyring.owner!r} is already logged in")
        session = Session(self, keyring, stream)
        try:
            for path, fak in keyring.all_keys().items():
                handle = self.agent.open_file(fak, path, stream)
                session._attach(path, handle)
        except Exception:
            # A stale or corrupt ring must not leave half the user's
            # blocks disclosed with no session able to close them.
            for handle in session._handles.values():
                self.agent.close_file(handle, stream)
            raise
        self._sessions[keyring.owner] = session
        return session

    def _forget_session(self, session: Session) -> None:
        self._sessions.pop(session.user, None)

    def idle(self, num_dummy_updates: int) -> None:
        """Let the agent run a burst of dummy updates, as it does between requests.

        Dummy updates are what make real Figure-6 updates statistically
        invisible; services representing a live deployment should call
        this between request bursts (Section 4.1.3).
        """
        self.agent.idle(num_dummy_updates)

    # -- oblivious read path ---------------------------------------------------------

    def _require_oblivious(self) -> ObliviousReader:
        if self.oblivious_reader is None:
            raise ServiceError(
                "this service was created without an ObliviousConfig; "
                "pass oblivious=ObliviousConfig(...) to HiddenVolumeService.create"
            )
        return self.oblivious_reader

    def dummy_oblivious_read(self, stream: str = "dummy") -> None:
        """Issue one dummy read against the oblivious hierarchy."""
        self._require_oblivious().dummy_oblivious_read(stream)

    # -- observability ---------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Blocks in the StegFS partition the agent manages."""
        return self.volume.num_blocks

    def disclosed_block_count(self) -> int:
        """Blocks currently in the agent's selection space.

        For the volatile agent this is the union of all logged-in users'
        file blocks; for the non-volatile agent the selection space is
        the whole volume.
        """
        if isinstance(self.agent, VolatileAgent):
            return self.agent.disclosed_block_count()
        return self.volume.num_blocks

    def disclosed_dummy_block_count(self) -> int:
        """Dummy blocks currently available as Figure-6 swap targets."""
        if isinstance(self.agent, VolatileAgent):
            return self.agent.disclosed_dummy_block_count()
        return self.volume.allocator.free_blocks

    def expected_update_overhead(self) -> float:
        """The paper's E = N/D expected I/O overhead at the current state."""
        return self.agent.expected_update_overhead()
