"""Declarative experiments: one entrypoint for systems, workloads and attackers.

Every evaluation in the paper is the same sentence: *build one of the
Table-3 systems, run a workload against it (alone or with N concurrent
users), and measure time and/or let an attacker watch*.  A
:class:`Scenario` states that sentence declaratively and
:func:`run_experiment` executes it, unifying
:func:`repro.sim.builders.build_system`, the workload generators, the
:class:`~repro.sim.engine.RoundRobinSimulator` and the attacker classes
behind one call::

    result = run_experiment(
        Scenario(
            system="StegHide",
            volume_mib=16,
            files=(FileSpec("/bench/target", 512 * 1024),),
            utilisation=0.25,
            workload=Updates(count=20, range_blocks=(1, 2, 3, 4, 5)),
        )
    )
    result.series(["range=1", "range=5"])   # -> [ms, ms]

Each benchmark module then shrinks to a scenario declaration plus shape
assertions on the returned measurements.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Union

from repro.attacks.observer import SnapshotObserver, TraceObserver
from repro.attacks.traffic_analysis import TrafficAnalysisAttacker
from repro.attacks.update_analysis import UpdateAnalysisAttacker
from repro.crypto.prng import Sha256Prng
from repro.errors import WorkloadError
from repro.sim.builders import SYSTEM_LABELS, SystemUnderTest, build_system
from repro.sim.engine import (
    ClientJob,
    ConcurrencyScenario,
    CrashScenario,
    RoundRobinSimulator,
    SimulationResult,
)
from repro.storage.latency import DiskLatencyModel
from repro.workloads.filegen import FileSpec
from repro.workloads.retrieval import file_read_job, measure_file_read
from repro.workloads.tableupdate import SalaryTable, TableUpdateWorkload
from repro.workloads.update import (
    block_update_job,
    measure_range_update,
    random_update_requests,
)

# -- workload declarations ---------------------------------------------------------


@dataclass(frozen=True)
class Retrieval:
    """Whole-file reads (the Figure-10 workload).

    With a single user each target is read once and measured separately
    (keyed by its path).  With a concurrency sweep, user ``i`` reads
    ``targets[i]`` and the disk serves everyone round-robin (keyed
    ``"users=N"``).
    """

    targets: tuple[str, ...] | None = None


@dataclass(frozen=True)
class Updates:
    """Random block updates (the Figure-11 workload).

    With a single user, ``count`` updates of ``range_blocks`` consecutive
    blocks are issued at random starting positions and their mean cost is
    recorded; ``range_blocks`` may be a tuple to sweep the update range
    against one built system (keyed ``"range=N"``).  With a concurrency
    sweep, each user issues one ``range_blocks``-block update against his
    own target file (keyed ``"users=N"``).
    """

    count: int = 1
    range_blocks: int | tuple[int, ...] = 1
    targets: tuple[str, ...] | None = None
    seed: str = "updates"


@dataclass(frozen=True)
class TableUpdates:
    """The Figure-1 salary-table scenario: row updates observed in intervals.

    A fixed-width table is stored through the system's adapter; each
    interval issues ``updates_per_interval`` random row updates (plus
    optional idle dummy updates when the system has an agent) and then
    lets any attached attacker observe.  The byte-to-block translation
    is the workload's job — callers never do block math.
    """

    rows: int = 500
    intervals: int = 8
    updates_per_interval: int = 3
    idle_dummy_updates: int = 0
    path: str = "/db/sal_table"
    seed: str = "table"


Workload = Union[Retrieval, Updates, TableUpdates]


# -- attacker probes ---------------------------------------------------------------


class UpdateAnalysisProbe:
    """Snapshot-diffing attacker attached to a scenario (Section 4.1.4).

    Takes a snapshot before the workload and after every interval, then
    renders an :class:`~repro.attacks.update_analysis.UpdateAnalysisAttacker`
    verdict.
    """

    name = "update-analysis"

    def __init__(self) -> None:
        self._observer: SnapshotObserver | None = None

    def start(self, system: SystemUnderTest) -> None:
        self._observer = SnapshotObserver(system.storage)
        self._observer.observe()

    def interval(self, system: SystemUnderTest) -> None:
        assert self._observer is not None
        self._observer.observe()

    def finish(self, system: SystemUnderTest) -> Any:
        assert self._observer is not None
        attacker = UpdateAnalysisAttacker(num_blocks=system.storage.geometry.num_blocks)
        return attacker.analyse(self._observer.changed_blocks_per_interval())


class TrafficAnalysisProbe:
    """Request-trace attacker attached to a scenario (Section 3.2.2)."""

    name = "traffic-analysis"

    def __init__(self) -> None:
        self._observer: TraceObserver | None = None

    def start(self, system: SystemUnderTest) -> None:
        self._observer = TraceObserver(system.storage)
        self._observer.start()

    def interval(self, system: SystemUnderTest) -> None:
        return None

    def finish(self, system: SystemUnderTest) -> Any:
        assert self._observer is not None
        attacker = TrafficAnalysisAttacker(num_blocks=system.storage.geometry.num_blocks)
        return attacker.analyse(self._observer.capture())


_PROBES = {
    UpdateAnalysisProbe.name: UpdateAnalysisProbe,
    TrafficAnalysisProbe.name: TrafficAnalysisProbe,
}


def _make_probes(specs: tuple) -> list:
    probes = []
    for spec in specs:
        if isinstance(spec, str):
            try:
                probes.append(_PROBES[spec]())
            except KeyError:
                raise WorkloadError(
                    f"unknown attacker {spec!r}; expected one of {sorted(_PROBES)}"
                ) from None
        else:
            probes.append(spec)
    return probes


# -- the scenario and its result ---------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One declaratively specified experiment.

    Attributes
    ----------
    system:
        A Table-3 label (``repro.sim.builders.SYSTEM_LABELS``).
    files:
        Files created at build time; empty means the builder's default.
    utilisation:
        Target space utilisation for the steganographic systems.
    users:
        A single user count (measured directly) or a tuple of counts (a
        concurrency sweep through the round-robin simulator).
    workload:
        A :class:`Retrieval`, :class:`Updates` or :class:`TableUpdates`.
    attackers:
        Probe names (``"update-analysis"``, ``"traffic-analysis"``) or
        probe instances observing the run.
    """

    system: str
    volume_mib: int = 32
    block_size: int = 4096
    files: tuple[FileSpec, ...] = ()
    utilisation: float | None = None
    seed: int = 0
    users: int | tuple[int, ...] = 1
    workload: Workload | None = None
    attackers: tuple = ()
    latency: DiskLatencyModel | None = None

    def __post_init__(self) -> None:
        if self.system not in SYSTEM_LABELS:
            raise ValueError(
                f"unknown system label {self.system!r}; expected one of {SYSTEM_LABELS}"
            )


@dataclass
class ExperimentResult:
    """Everything one scenario run produced.

    ``measurements`` maps point labels (a target path, ``"users=N"`` or
    ``"range=N"``) to simulated milliseconds; ``verdicts`` maps attacker
    names to their verdict objects; ``simulations`` keeps the raw
    round-robin results of a concurrency sweep.  For a
    :class:`~repro.sim.engine.ConcurrencyScenario`, ``system`` is the
    :class:`~repro.service.HiddenVolumeService` that served the run and
    the measurements are wall-clock (``ops``, ``ops_per_sec``,
    ``dummy_updates``).  For a
    :class:`~repro.sim.engine.CrashScenario`, ``system`` is the (closed)
    service of the final verification run, the measurements count
    ``ops``, ``crashes``, ``mean_change_fraction``, ``advantage`` and
    ``recovered_bytes``, and ``verdicts["snapshot-diff"]`` holds the
    adversary's :class:`~repro.attacks.SnapshotDiffVerdict`.
    """

    scenario: Scenario | ConcurrencyScenario | CrashScenario
    system: SystemUnderTest | Any
    measurements: dict[str, float] = field(default_factory=dict)
    verdicts: dict[str, Any] = field(default_factory=dict)
    simulations: dict[int, SimulationResult] = field(default_factory=dict)

    @property
    def mean_ms(self) -> float:
        """Mean over all measurement points (the value of a one-point run)."""
        if not self.measurements:
            return 0.0
        return sum(self.measurements.values()) / len(self.measurements)

    def series(self, keys: list) -> list[float]:
        """Measurements for ``keys``, in order (for sweep tables)."""
        return [self.measurements[str(key)] for key in keys]

    def verdict(self, name: str) -> Any:
        """The verdict of one attached attacker."""
        return self.verdicts[name]


# -- the runner --------------------------------------------------------------------


def _user_levels(users: int | tuple[int, ...]) -> tuple[tuple[int, ...], bool]:
    """Normalise the ``users`` field; the bool says whether to simulate."""
    if isinstance(users, tuple):
        return users, True
    if users != 1:
        return (users,), True
    return (1,), False


def _per_user_targets(
    system: SystemUnderTest, targets: tuple[str, ...] | None, needed: int
) -> list[str]:
    names = list(targets) if targets is not None else list(system.handles)
    if len(names) < needed:
        raise WorkloadError(
            f"{needed} users need {needed} target files but only {len(names)} are available"
        )
    return names


def _run_retrieval(
    scenario: Scenario,
    system: SystemUnderTest,
    workload: Retrieval,
    result: ExperimentResult,
    probes,
) -> None:
    levels, simulate = _user_levels(scenario.users)
    if not simulate:
        targets = workload.targets or tuple(system.handles)
        for target in targets:
            elapsed = measure_file_read(system.adapter, system.handle(target))
            result.measurements[target] = elapsed
            for probe in probes:
                probe.interval(system)
        return
    names = _per_user_targets(system, workload.targets, max(levels))
    for level in levels:
        system.storage.reset_counters()
        jobs = [
            ClientJob(
                f"user{i}",
                file_read_job(system.adapter, system.handle(names[i]), f"user{i}"),
            )
            for i in range(level)
        ]
        sim = RoundRobinSimulator(system.storage).run(jobs)
        result.simulations[level] = sim
        result.measurements[f"users={level}"] = sim.mean_elapsed_ms
        for probe in probes:
            probe.interval(system)


def _run_updates(
    scenario: Scenario, system: SystemUnderTest, workload: Updates, result: ExperimentResult, probes
) -> None:
    levels, simulate = _user_levels(scenario.users)
    label = scenario.system
    if not simulate:
        ranges = (
            workload.range_blocks
            if isinstance(workload.range_blocks, tuple)
            else (workload.range_blocks,)
        )
        sweep_ranges = len(ranges) > 1
        targets = workload.targets or (next(iter(system.handles)),)
        for target in targets:
            handle = system.handle(target)
            for range_blocks in ranges:
                prng = Sha256Prng(f"{workload.seed}:{label}:{target}:{range_blocks}")
                starts = random_update_requests(handle, workload.count, prng, range_blocks)
                total = 0.0
                for request_index, start in enumerate(starts):
                    total += measure_range_update(
                        system.adapter, handle, start, range_blocks, seed=request_index
                    )
                if not sweep_ranges:
                    key = target
                elif len(targets) > 1:
                    key = f"{target}|range={range_blocks}"
                else:
                    key = f"range={range_blocks}"
                result.measurements[key] = total / max(1, workload.count)
                for probe in probes:
                    probe.interval(system)
        return
    if isinstance(workload.range_blocks, tuple):
        raise WorkloadError("a concurrency sweep needs a single update range per scenario")
    range_blocks = workload.range_blocks
    names = _per_user_targets(system, workload.targets, max(levels))
    for level in levels:
        system.storage.reset_counters()
        jobs = []
        for user in range(level):
            handle = system.handle(names[user])
            upper = handle.num_blocks - range_blocks + 1
            if upper <= 0:
                raise WorkloadError(
                    f"file {names[user]!r} too small for a {range_blocks}-block update"
                )
            start = Sha256Prng(f"{workload.seed}:{label}:{level}:{user}").randrange(upper)
            jobs.append(
                ClientJob(
                    f"user{user}",
                    block_update_job(
                        system.adapter,
                        handle,
                        start,
                        range_blocks,
                        seed=user,
                        stream=f"user{user}",
                    ),
                )
            )
        sim = RoundRobinSimulator(system.storage).run(jobs)
        result.simulations[level] = sim
        result.measurements[f"users={level}"] = sim.mean_elapsed_ms
        for probe in probes:
            probe.interval(system)


def _run_table_updates(
    scenario: Scenario,
    system: SystemUnderTest,
    workload: TableUpdates,
    result: ExperimentResult,
    probes,
) -> None:
    prng = Sha256Prng(f"{workload.seed}:{scenario.system}")
    table = SalaryTable.generate(workload.rows, prng.spawn("rows"))
    runner = TableUpdateWorkload(system.adapter, table, name=workload.path)
    # Attackers observe steady-state update activity, not the initial load.
    for probe in probes:
        probe.start(system)
    update_prng = prng.spawn("updates")
    touched = 0
    for _ in range(workload.intervals):
        touched += len(runner.run_random_updates(workload.updates_per_interval, update_prng))
        if workload.idle_dummy_updates and system.agent is not None:
            system.agent.idle(workload.idle_dummy_updates)
        for probe in probes:
            probe.interval(system)
    result.measurements["blocks-touched"] = float(touched)


def _concurrency_ops(
    scenario: ConcurrencyScenario, user: str, file_size: int
) -> list[tuple[str, int, int]]:
    """The deterministic mixed op stream of one user: (kind, at, size)."""
    prng = Sha256Prng(f"concurrency:{scenario.seed}:{user}")
    ops: list[tuple[str, int, int]] = []
    for _ in range(scenario.ops_per_user):
        size = 1 + prng.randrange(max(1, min(file_size, 3 * scenario.block_size)))
        at = prng.randrange(max(1, file_size - size + 1))
        kind = "read" if prng.random() < scenario.read_fraction else "write"
        ops.append((kind, at, size))
    return ops


def _run_concurrency_scenario(scenario: ConcurrencyScenario) -> ExperimentResult:
    """Drive the thread-safe serving engine with real worker threads.

    Lives here (not in :mod:`repro.sim.engine`) because it needs the
    service facade; the declarative shape stays with the simulation
    layer.  Latency defaults to the facade's paper-era disk model; the
    reported ``ops_per_sec`` is wall-clock engine throughput, not
    simulated milliseconds.
    """
    from repro.service.facade import HiddenVolumeService

    service = HiddenVolumeService.create(
        scenario.construction,
        volume_mib=scenario.volume_mib,
        seed=scenario.seed,
        block_size=scenario.block_size,
        latency=scenario.latency,
    )
    engine = service.concurrent(
        dummy_to_real_ratio=scenario.dummy_to_real_ratio,
        quantum=scenario.quantum,
        fuse_writes=scenario.fuse_writes,
        gather_timeout_s=scenario.gather_timeout_s,
    )
    result = ExperimentResult(scenario=scenario, system=service)
    probes = _make_probes(scenario.attackers)

    content_prng = Sha256Prng(f"concurrency-content:{scenario.seed}")
    file_size = scenario.file_blocks * service.volume.data_field_bytes
    sessions = []
    streams: dict[str, list[tuple[str, int, int]]] = {}
    for index in range(scenario.users):
        user = f"user{index}"
        session = engine.login(service.new_keyring(user))
        session.create(f"/{user}/data", content_prng.spawn(user).random_bytes(file_size))
        session.create_decoy(f"/{user}/decoy", size_bytes=file_size)
        sessions.append(session)
        streams[user] = _concurrency_ops(scenario, user, file_size)

    # Attackers observe steady-state serving, not the enrolment burst.
    engine.idle(0)  # quiesce the enrolment ops' trailing dummy bursts
    for probe in probes:
        probe.start(service)

    write_prng = Sha256Prng(f"concurrency-writes:{scenario.seed}")
    errors: list[BaseException] = []
    executed = 0
    elapsed = 0.0
    try:
        per_interval = -(-scenario.ops_per_user // scenario.intervals)
        for interval in range(scenario.intervals):
            lo = interval * per_interval
            hi = min(scenario.ops_per_user, lo + per_interval)
            tasks = [
                (session, streams[session.user][position])
                for position in range(lo, hi)
                for session in sessions
            ]
            task_iter = iter(tasks)
            task_lock = threading.Lock()

            def worker() -> None:
                while True:
                    with task_lock:
                        try:
                            session, (kind, at, size) = next(task_iter)
                        except StopIteration:
                            return
                    try:
                        if kind == "read":
                            session.read(f"/{session.user}/data", at=at, size=size)
                        else:
                            payload = write_prng.spawn(f"{session.user}:{at}").random_bytes(size)
                            session.write(f"/{session.user}/data", payload, at=at)
                    except BaseException as error:  # pragma: no cover - surfaced below
                        errors.append(error)
                        return

            threads = [threading.Thread(target=worker) for _ in range(scenario.workers)]
            began = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed += time.perf_counter() - began
            executed += len(tasks)
            if errors:
                raise errors[0]
            # Quiesce before observing: an op's dummy burst runs after
            # its fulfilment, so without this barrier a snapshot could
            # race the scheduler's trailing device writes.
            engine.idle(0)
            for probe in probes:
                probe.interval(service)

        result.measurements["ops"] = float(executed)
        result.measurements["ops_per_sec"] = executed / elapsed if elapsed > 0 else float("inf")
        result.measurements["dummy_updates"] = float(engine.stats.dummy_updates)
        for probe in probes:
            result.verdicts[probe.name] = probe.finish(service)
        return result
    finally:
        # The engine owns a scheduler thread; never leak it (the trace
        # and counters stay readable on the closed service).
        engine.close()


def _run_crash_scenario(scenario: CrashScenario) -> ExperimentResult:
    """Serve a durable volume across process runs, killing some mid-plan.

    Each interval is one "process": open the volume file, log the owner
    in, issue deterministic byte-range writes interleaved with the dummy
    stream, and exit.  Crash intervals die inside their final write via
    an armed :class:`~repro.storage.backend.FaultInjectingBackend`
    (optionally tearing the doomed block), after which the volume and
    journal handles are simply dropped — no flush, no logout — exactly
    as a killed process leaves them.  The snapshot-diff adversary images
    the volume file between runs; a final clean run proves the file is
    still readable after recovery.
    """
    import pathlib
    import shutil
    import tempfile

    from repro.attacks.snapshot_diff import SnapshotDiffAttacker
    from repro.crypto.keys import KeyRing
    from repro.errors import InjectedCrashError
    from repro.service.facade import HiddenVolumeService
    from repro.storage.backend import BlockBackend, FaultInjectingBackend, TornWrite
    from repro.storage.snapshot import Snapshot

    workdir = tempfile.mkdtemp(prefix="crash-scenario-")
    volume_path = f"{workdir}/volume.img"
    try:
        service = HiddenVolumeService.create(
            scenario.construction,
            volume_mib=scenario.volume_mib,
            seed=scenario.seed,
            block_size=scenario.block_size,
            latency=scenario.latency,
            path=volume_path,
        )
        try:
            session = service.login(service.new_keyring("owner"))
            file_size = scenario.file_blocks * service.volume.data_field_bytes
            content_prng = Sha256Prng(f"crash-content:{scenario.seed}")
            session.create("/crash/data", content_prng.random_bytes(file_size))
            ring_json = session.keyring.to_json()
            service.flush()
        finally:
            service.close()

        def image(label: str) -> Snapshot:
            return Snapshot.of_bytes(
                pathlib.Path(volume_path).read_bytes(), scenario.block_size, label=label
            )

        snapshots = [image("format")]
        crash_flags: list[bool] = []
        ops = 0
        crashes = 0
        for interval in range(scenario.intervals):
            crash_here = interval in scenario.crash_intervals
            injector: FaultInjectingBackend | None = None

            def wrap(backend: BlockBackend) -> BlockBackend:
                nonlocal injector
                injector = FaultInjectingBackend(backend)
                return injector

            op_prng = Sha256Prng(f"crash-ops:{scenario.seed}:{interval}")
            dummy_credit = 0.0
            crashed = False
            svc = HiddenVolumeService.open(
                volume_path,
                scenario.construction,
                seed=scenario.seed,
                block_size=scenario.block_size,
                latency=scenario.latency,
                session_nonce=f"crash:{interval}",
                wrap_backend=wrap if crash_here else None,
            )
            try:
                sess = svc.login(KeyRing.from_json(ring_json))
                payload_bytes = svc.volume.data_field_bytes
                for op in range(scenario.ops_per_interval):
                    size = 1 + op_prng.randrange(payload_bytes)
                    at = op_prng.randrange(file_size - size + 1)
                    data = op_prng.random_bytes(size)
                    doomed = crash_here and op == scenario.ops_per_interval - 1
                    if doomed and injector is not None:
                        injector.arm(
                            scenario.crash_call_index,
                            TornWrite() if scenario.torn_write else None,
                        )
                    sess.write("/crash/data", data, at=at)
                    ops += 1
                    dummy_credit += scenario.dummy_to_real_ratio
                    if dummy_credit >= 1.0:
                        burst = int(dummy_credit)
                        dummy_credit -= burst
                        svc.idle(burst)
                if injector is not None:
                    injector.disarm()
                svc.flush()
                svc.close()
            except InjectedCrashError:
                # The crash may land in the doomed write itself or in
                # the dummy burst / flush that follows it — whichever
                # device call the index falls on.  Either way the
                # process is dead: drop the mapping and the journal
                # handle without flushing or saving.
                crashed = True
                crashes += 1
                svc.storage.close()
                if svc.journal is not None:
                    svc.journal.close()
            except BaseException:
                # An unexpected error is a harness bug, not a simulated
                # crash: release the raw handles, then let it propagate.
                svc.storage.close()
                if svc.journal is not None:
                    svc.journal.close()
                raise
            crash_flags.append(crashed)
            snapshots.append(image(f"interval:{interval}"))

        # Final clean run: recovery must have left the file readable.
        final = HiddenVolumeService.open(
            volume_path,
            scenario.construction,
            seed=scenario.seed,
            block_size=scenario.block_size,
            latency=scenario.latency,
            session_nonce="crash:final",
        )
        final_session = final.login(KeyRing.from_json(ring_json))
        recovered = final_session.read("/crash/data")
        final.close()

        attacker = SnapshotDiffAttacker(num_blocks=snapshots[0].num_blocks)
        verdict = attacker.analyse(snapshots, crash_flags=crash_flags)
        result = ExperimentResult(scenario=scenario, system=final)
        result.measurements["ops"] = float(ops)
        result.measurements["crashes"] = float(crashes)
        result.measurements["mean_change_fraction"] = verdict.mean_change_fraction
        result.measurements["advantage"] = verdict.advantage
        result.measurements["recovered_bytes"] = float(len(recovered))
        result.verdicts["snapshot-diff"] = verdict
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_experiment(
    scenario: Scenario | ConcurrencyScenario | CrashScenario,
) -> ExperimentResult:
    """Build the system, run the workload, collect measurements and verdicts."""
    if isinstance(scenario, CrashScenario):
        return _run_crash_scenario(scenario)
    if isinstance(scenario, ConcurrencyScenario):
        return _run_concurrency_scenario(scenario)
    system = build_system(
        scenario.system,
        volume_mib=scenario.volume_mib,
        block_size=scenario.block_size,
        file_specs=list(scenario.files) if scenario.files else None,
        target_utilisation=scenario.utilisation,
        seed=scenario.seed,
        latency=scenario.latency,
    )
    result = ExperimentResult(scenario=scenario, system=system)
    probes = _make_probes(scenario.attackers)
    workload = scenario.workload

    # TableUpdates manages its own probe start (after the table is loaded).
    if not isinstance(workload, TableUpdates):
        for probe in probes:
            probe.start(system)

    if workload is None:
        pass
    elif isinstance(workload, Retrieval):
        _run_retrieval(scenario, system, workload, result, probes)
    elif isinstance(workload, Updates):
        _run_updates(scenario, system, workload, result, probes)
    elif isinstance(workload, TableUpdates):
        _run_table_updates(scenario, system, workload, result, probes)
    else:
        raise WorkloadError(f"unsupported workload type {type(workload).__name__}")

    for probe in probes:
        result.verdicts[probe.name] = probe.finish(system)
    return result
