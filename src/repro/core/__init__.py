"""The paper's primary contribution: access-hiding agents and oblivious storage.

* :mod:`repro.core.agent` — the shared agent machinery, including the
  Figure-6 update algorithm that relocates a data block on every update
  and the dummy-update primitive.
* :mod:`repro.core.nonvolatile` — Construction 1 ("StegHide*"): the
  agent keeps a master encryption key and the dummy file's FAK in
  non-volatile memory.
* :mod:`repro.core.volatile` — Construction 2 ("StegHide"): no secrets
  persist in the agent; users disclose FAKs at login.
* :mod:`repro.core.oblivious` — the hierarchical oblivious storage that
  hides read traffic (Section 5).
* :mod:`repro.core.security` — the Definition-1 security notion and the
  distribution-similarity measures used to test it.
"""

from repro.core.agent import StegAgent, UpdateResult
from repro.core.nonvolatile import NonVolatileAgent
from repro.core.oblivious import (
    ObliviousStore,
    ObliviousStoreConfig,
    oblivious_height,
    overhead_factor,
)
from repro.core.security import (
    access_distribution,
    kl_divergence,
    total_variation_distance,
    uniformity_chi_square,
)
from repro.core.volatile import VolatileAgent

__all__ = [
    "StegAgent",
    "UpdateResult",
    "NonVolatileAgent",
    "VolatileAgent",
    "ObliviousStore",
    "ObliviousStoreConfig",
    "oblivious_height",
    "overhead_factor",
    "access_distribution",
    "total_variation_distance",
    "kl_divergence",
    "uniformity_chi_square",
]
