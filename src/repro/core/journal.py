"""Durable, cipher-sealed plan journal: the crash-consistency intent log.

:class:`JournalBackend` persists every :class:`~repro.core.plan.PlanJournal`
entry to a fixed-size sidecar file next to the volume image
(``<volume>.journal``) so that a process killed mid-plan can be rolled
back to the plan's pre-image on the next
:meth:`~repro.service.HiddenVolumeService.open`.

Design constraints, in the paper's threat model:

* **Zero plaintext.**  The sidecar is formatted with a deterministic
  pseudo-random fill derived from the journal key, and every record is
  a fresh-IV :class:`~repro.crypto.FastFieldCipher` seal over a
  digest-protected body.  To an adversary without the key the file is
  byte-uniform noise of constant size — it passes the same seized-disk
  chi-square scan as the volume image, and dummy plans are journalled
  exactly like real ones, so the journal leaks no update-rate signal.
* **Old-or-new, not redo.**  Records carry *before-images* (undo), not
  replay instructions: replaying a reseal against a block the crash
  tore would reseal garbage, while writing back the captured pre-image
  is correct no matter how torn the block is.  Rollback restores every
  block a torn plan touched to its pre-plan bytes.
* **Write-ahead ordering.**  :meth:`record` runs strictly before the
  plan's first device request (the :class:`PlanJournal` contract) and
  :meth:`mark_committed` strictly after its last, so an entry that is
  on disk, complete and uncommitted brackets exactly the plans a crash
  may have left half-applied.  A journal record that is itself torn
  marks a plan whose execution never started — it is ignored.
* **Indistinguishable recovery.**  Recovery happens below the storage
  accounting layer (direct backend writes of sealed ciphertext,
  pre-login, untraced) and consumes no PRNG stream, so a recovered
  service is draw-for-draw identical to one that never crashed.

Layout
------
The file is a ring of ``num_slots`` constant-size records; record
``seq`` lives in slot ``seq % num_slots``.  On disk each slot is::

    iv (16) || seal( digest (32) || seq (8) || kind (1) || entry_id (8)
                     || aux (8, signed) || part_index (4) || part_count (4)
                     || frag_len (4) || fragment || zero pad )

The IV is a pure PRF of the journal key and ``seq`` (no PRNG stream is
consumed), and the digest binds body and IV, so the scan on
:meth:`open` can tell real records from format fill or torn writes
without any plaintext marker.  Entries larger than one record chain
over consecutive sequence numbers.  ``kind`` is an entry part, a
commit marker, or a checkpoint whose ``aux`` is the *kill sequence*:
every record with ``seq <= aux`` is dead.  Checkpoints never advance
the kill sequence past a recorded-but-uncommitted entry, which is the
invariant that makes slot reuse safe.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import BinaryIO, Sequence

from repro.core.plan import (
    CycleStep,
    IoPlan,
    JournalEntry,
    PlanJournal,
    ReadStep,
    ResealStep,
    Step,
    WriteStep,
)
from repro.crypto import FastFieldCipher, Sha256Prng
from repro.errors import JournalError
from repro.storage.backend import BlockBackend

_IV_SIZE = 16
_DIGEST_SIZE = 32
#: seq(8) + kind(1) + entry_id(8) + aux(8) + part_index(4) + part_count(4) + frag_len(4)
_BODY_HEADER_SIZE = 37
_HEADER_SIZE = _IV_SIZE + _DIGEST_SIZE + _BODY_HEADER_SIZE

_KIND_ENTRY = 0
_KIND_COMMIT = 1
_KIND_CHECKPOINT = 2

_STEP_READ = 0
_STEP_WRITE = 1
_STEP_CYCLE = 2
_STEP_RESEAL = 3

DEFAULT_NUM_SLOTS = 256
DEFAULT_RECORD_SIZE = 4096


def journal_sidecar_path(volume_path: str | os.PathLike) -> str:
    """The canonical journal location for a volume file: ``<volume>.journal``."""
    return f"{os.fspath(volume_path)}.journal"


def _derive_iv(key: bytes, seq: int) -> bytes:
    return hashlib.sha256(key + b"/journal-iv/" + seq.to_bytes(8, "big")).digest()[:_IV_SIZE]


def _digest(iv: bytes, body: bytes) -> bytes:
    return hashlib.sha256(b"plan-journal" + iv + body).digest()


# -- entry payload serialisation ----------------------------------------------------


def _pack_bytes(out: bytearray, data: bytes) -> None:
    out += len(data).to_bytes(4, "big")
    out += data


def _pack_str(out: bytearray, text: str) -> None:
    encoded = text.encode("utf-8")
    out += len(encoded).to_bytes(2, "big")
    out += encoded


class _Reader:
    """Bounds-checked cursor over an entry payload."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise JournalError("truncated journal entry payload")
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self.take(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self.take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self.take(8), "big")

    def raw(self) -> bytes:
        return self.take(self.u32())

    def text(self) -> str:
        return self.take(self.u16()).decode("utf-8")


def _encode_step(out: bytearray, step: Step) -> None:
    if isinstance(step, ReadStep):
        out += bytes([_STEP_READ])
        out += step.index.to_bytes(8, "big")
        out += bytes([1 if step.keep else 0, 1 if step.cipher is not None else 0])
        _pack_str(out, step.stream)
    elif isinstance(step, WriteStep):
        out += bytes([_STEP_WRITE])
        out += step.index.to_bytes(8, "big")
        _pack_str(out, step.stream)
        _pack_bytes(out, step.data)
    elif isinstance(step, CycleStep):
        out += bytes([_STEP_CYCLE])
        out += step.read_index.to_bytes(8, "big")
        out += step.write_index.to_bytes(8, "big")
        _pack_str(out, step.stream)
        _pack_bytes(out, step.data)
    elif isinstance(step, ResealStep):
        out += bytes([_STEP_RESEAL])
        out += step.index.to_bytes(8, "big")
        out += bytes([1 if step.batched else 0])
        _pack_str(out, step.stream)
        _pack_bytes(out, step.key)
        _pack_bytes(out, step.new_iv)
    else:  # pragma: no cover - the Step union is closed
        raise TypeError(f"not a journallable step: {step!r}")


def _decode_step(reader: _Reader) -> Step:
    tag = reader.u8()
    if tag == _STEP_READ:
        index = reader.u64()
        keep = reader.u8() != 0
        reader.u8()  # had a cipher; the object itself is not persistable
        return ReadStep(index, stream=reader.text(), cipher=None, keep=keep)
    if tag == _STEP_WRITE:
        index = reader.u64()
        stream = reader.text()
        return WriteStep(index, data=reader.raw(), stream=stream)
    if tag == _STEP_CYCLE:
        read_index = reader.u64()
        write_index = reader.u64()
        stream = reader.text()
        return CycleStep(read_index, write_index, data=reader.raw(), stream=stream)
    if tag == _STEP_RESEAL:
        index = reader.u64()
        batched = reader.u8() != 0
        stream = reader.text()
        key = reader.raw()
        return ResealStep(index, key=key, new_iv=reader.raw(), stream=stream, batched=batched)
    raise JournalError(f"unknown journal step tag {tag}")


def _encode_entry(
    label: str, steps: Sequence[Step], undo: Sequence[tuple[int, bytes]]
) -> bytes:
    out = bytearray()
    _pack_str(out, label)
    out += len(steps).to_bytes(4, "big")
    for step in steps:
        _encode_step(out, step)
    out += len(undo).to_bytes(4, "big")
    for index, raw in undo:
        out += index.to_bytes(8, "big")
        _pack_bytes(out, raw)
    return bytes(out)


def _decode_entry(payload: bytes) -> tuple[str, tuple[Step, ...], list[tuple[int, bytes]]]:
    reader = _Reader(payload)
    label = reader.text()
    steps = tuple(_decode_step(reader) for _ in range(reader.u32()))
    undo = [(reader.u64(), reader.raw()) for _ in range(reader.u32())]
    return label, steps, undo


def _write_targets(step: Step) -> tuple[int, ...]:
    if isinstance(step, WriteStep):
        return (step.index,)
    if isinstance(step, CycleStep):
        return (step.write_index,)
    if isinstance(step, ResealStep):
        return (step.index,)
    return ()


@dataclass(frozen=True)
class _ParsedRecord:
    seq: int
    kind: int
    entry_id: int
    aux: int
    part_index: int
    part_count: int
    fragment: bytes


@dataclass(frozen=True)
class _UncommittedEntry:
    entry_id: int
    label: str
    undo: tuple[tuple[int, bytes], ...]


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`JournalBackend.recover` found and did."""

    scanned_slots: int
    valid_records: int
    live_entries: int
    committed_entries: int
    incomplete_entries: int
    rolled_back: tuple[str, ...]
    restored_blocks: int


class JournalBackend(PlanJournal):
    """A :class:`PlanJournal` persisted to a sealed, fixed-size sidecar file.

    Build one with :meth:`create` (format a fresh sidecar) or
    :meth:`open` (scan an existing one, e.g. after a crash), then
    :meth:`bind` it to the volume's block backend so :meth:`record` can
    capture before-images.  The in-memory entry list mirrors the live
    (since the last checkpoint) window for introspection; durability
    comes from the file.

    Lifecycle per plan: ``record`` (before any device I/O) →
    ``mark_committed`` (after all of it).  A plan whose error surfaces
    *without* killing the process stays uncommitted and is rolled back
    on the next open — the partial-progress bytes it managed to write
    are undone along with the tear they might contain.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        file: BinaryIO,
        key: bytes,
        num_slots: int,
        record_size: int,
    ):
        super().__init__()
        self._path = os.fspath(path)
        self._file: BinaryIO | None = file
        self._key = key
        self._cipher = FastFieldCipher(key)
        self._num_slots = num_slots
        self._record_size = record_size
        self._backend: BlockBackend | None = None
        self._next_seq = 0
        self._kill_seq = -1
        self._pending: list[int] = []
        self._uncommitted: list[_UncommittedEntry] = []
        self._scan_stats = (num_slots, 0, 0, 0, 0)

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | os.PathLike,
        key: bytes,
        *,
        num_slots: int = DEFAULT_NUM_SLOTS,
        record_size: int = DEFAULT_RECORD_SIZE,
    ) -> "JournalBackend":
        """Format a fresh journal sidecar of ``num_slots * record_size`` bytes.

        The file is filled with a deterministic pseudo-random stream
        derived from ``key`` so that empty slots are indistinguishable
        from sealed records.  Refuses to clobber an existing file for
        the same reason the volume backend does.
        """
        if num_slots < 2:
            raise ValueError(f"num_slots must be at least 2, got {num_slots}")
        if record_size < _HEADER_SIZE + 64:
            raise ValueError(f"record_size must be at least {_HEADER_SIZE + 64} bytes")
        fill = Sha256Prng(key).spawn("journal-format").random_bytes(num_slots * record_size)
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        try:
            os.write(fd, fill)
            file = os.fdopen(fd, "r+b")
        except BaseException:
            os.close(fd)
            os.unlink(path)
            raise
        return cls(path, file, key, num_slots, record_size)

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        key: bytes,
        *,
        record_size: int = DEFAULT_RECORD_SIZE,
    ) -> "JournalBackend":
        """Scan an existing sidecar and reconstruct its live window.

        Validates every slot cryptographically (digest + IV binding):
        format fill and torn record writes simply fail validation and
        are treated as empty.  Complete, uncommitted entries become the
        rollback set that :meth:`recover` consumes.
        """
        file = open(path, "r+b")
        try:
            data = file.read()
            if len(data) == 0 or len(data) % record_size != 0:
                raise JournalError(
                    f"{os.fspath(path)!r} is {len(data)} bytes, not a positive "
                    f"multiple of the {record_size}-byte record size"
                )
            num_slots = len(data) // record_size
            if num_slots < 2:
                raise JournalError(f"{os.fspath(path)!r} holds fewer than 2 journal slots")
            self = cls(path, file, key, num_slots, record_size)
        except BaseException:
            file.close()
            raise
        self._scan(data)
        return self

    def _parse_record(self, slot_bytes: bytes) -> _ParsedRecord | None:
        iv = slot_bytes[:_IV_SIZE]
        plaintext = self._cipher.decrypt(iv, slot_bytes[_IV_SIZE:])
        digest, body = plaintext[:_DIGEST_SIZE], plaintext[_DIGEST_SIZE:]
        if _digest(iv, body) != digest:
            return None
        seq = int.from_bytes(body[0:8], "big")
        kind = body[8]
        entry_id = int.from_bytes(body[9:17], "big")
        aux = int.from_bytes(body[17:25], "big", signed=True)
        part_index = int.from_bytes(body[25:29], "big")
        part_count = int.from_bytes(body[29:33], "big")
        frag_len = int.from_bytes(body[33:37], "big")
        if kind not in (_KIND_ENTRY, _KIND_COMMIT, _KIND_CHECKPOINT):
            return None
        if iv != _derive_iv(self._key, seq):
            return None
        if frag_len > len(body) - _BODY_HEADER_SIZE:
            return None
        fragment = body[_BODY_HEADER_SIZE : _BODY_HEADER_SIZE + frag_len]
        return _ParsedRecord(seq, kind, entry_id, aux, part_index, part_count, fragment)

    def _scan(self, data: bytes) -> None:
        records: list[_ParsedRecord] = []
        for slot in range(self._num_slots):
            parsed = self._parse_record(data[slot * self._record_size :][: self._record_size])
            if parsed is not None and parsed.seq % self._num_slots == slot:
                records.append(parsed)
        self._next_seq = max((r.seq for r in records), default=-1) + 1
        self._kill_seq = max(
            (r.aux for r in records if r.kind == _KIND_CHECKPOINT), default=-1
        )
        live = [r for r in records if r.seq > self._kill_seq]
        committed = {r.entry_id for r in live if r.kind == _KIND_COMMIT}
        parts: dict[int, dict[int, _ParsedRecord]] = {}
        for record in live:
            if record.kind == _KIND_ENTRY:
                parts.setdefault(record.entry_id, {})[record.part_index] = record
        incomplete = 0
        mirror: list[JournalEntry] = []
        uncommitted: list[_UncommittedEntry] = []
        for entry_id in sorted(parts):
            by_index = parts[entry_id]
            first = by_index.get(0)
            if first is None or set(by_index) != set(range(first.part_count)):
                # The journal write itself was torn: the plan's first
                # device request never happened, so there is nothing to
                # roll back.
                incomplete += 1
                continue
            payload = b"".join(by_index[i].fragment for i in range(first.part_count))
            label, steps, undo = _decode_entry(payload)
            mirror.append(JournalEntry(label, steps))
            if entry_id not in committed:
                uncommitted.append(_UncommittedEntry(entry_id, label, tuple(undo)))
        self._entries[:] = mirror
        self._total_recorded = len(mirror)
        self._uncommitted = uncommitted
        self._pending = [entry.entry_id for entry in uncommitted]
        self._scan_stats = (
            self._num_slots,
            len(records),
            len(parts) - incomplete,
            len(committed & set(parts)),
            incomplete,
        )

    # -- journal protocol --------------------------------------------------

    @property
    def path(self) -> str:
        """Filesystem location of the journal sidecar."""
        return self._path

    @property
    def closed(self) -> bool:
        return self._file is None

    @property
    def num_slots(self) -> int:
        return self._num_slots

    @property
    def record_size(self) -> int:
        return self._record_size

    @property
    def pending_count(self) -> int:
        """Entries recorded but not yet marked committed."""
        return len(self._pending)

    def bind(self, backend: BlockBackend) -> None:
        """Attach the volume backend whose before-images :meth:`record` captures."""
        self._backend = backend

    def _require_open(self) -> BinaryIO:
        if self._file is None:
            raise JournalError("journal is closed")
        return self._file

    def _checkpoint_floor(self) -> int:
        # Never kill a recorded-but-uncommitted entry: its records are
        # exactly what recovery needs if the process dies mid-plan.
        if self._pending:
            return min(self._pending) - 1
        return self._next_seq - 1

    def _write_record(
        self,
        kind: int,
        entry_id: int,
        aux: int,
        fragment: bytes,
        part_index: int,
        part_count: int,
        *,
        auto_checkpoint: bool = True,
    ) -> None:
        file = self._require_open()
        seq = self._next_seq
        occupant = seq - self._num_slots
        if occupant >= 0 and occupant > self._kill_seq:
            if auto_checkpoint:
                # The live window filled the ring.  Make every committed
                # entry's effects durable, then checkpoint them away.
                if self._backend is not None and not self._backend.closed:
                    self._backend.flush()
                self.checkpoint()
                seq = self._next_seq
                occupant = seq - self._num_slots
            if occupant >= 0 and occupant > self._kill_seq:
                raise JournalError(
                    f"journal ring full: {len(self._pending)} uncommitted entries span "
                    f"all {self._num_slots} slots; commit more often or enlarge the journal"
                )
        iv = _derive_iv(self._key, seq)
        body = bytearray()
        body += seq.to_bytes(8, "big")
        body += bytes([kind])
        body += entry_id.to_bytes(8, "big")
        body += aux.to_bytes(8, "big", signed=True)
        body += part_index.to_bytes(4, "big")
        body += part_count.to_bytes(4, "big")
        body += len(fragment).to_bytes(4, "big")
        body += fragment
        body += bytes(self._record_size - _IV_SIZE - _DIGEST_SIZE - len(body))
        body = bytes(body)
        sealed = self._cipher.encrypt(iv, _digest(iv, body) + body)
        file.seek((seq % self._num_slots) * self._record_size)
        file.write(iv + sealed)
        self._next_seq = seq + 1

    @property
    def _payload_capacity(self) -> int:
        return self._record_size - _HEADER_SIZE

    def record(self, plan: IoPlan) -> None:
        """Persist the plan's steps plus before-images of every block it writes.

        The write-ahead contract makes this run strictly before the
        plan's first device request, so the captured images are the
        pre-plan bytes rollback must restore.
        """
        self._require_open()
        if self._backend is None:
            raise JournalError("bind() a block backend before recording plans")
        targets: list[int] = []
        seen: set[int] = set()
        for step in plan.steps:
            for index in _write_targets(step):
                if index not in seen:
                    seen.add(index)
                    targets.append(index)
        undo = [(index, self._backend.read(index)) for index in targets]
        payload = _encode_entry(plan.label, plan.steps, undo)
        capacity = self._payload_capacity
        fragments = [payload[i : i + capacity] for i in range(0, len(payload), capacity)] or [b""]
        entry_id = self._next_seq
        # Register before writing parts: an auto-checkpoint triggered by
        # a later part must not kill the earlier ones.
        self._pending.append(entry_id)
        for part_index, fragment in enumerate(fragments):
            self._write_record(_KIND_ENTRY, entry_id, 0, fragment, part_index, len(fragments))
        self._require_open().flush()
        super().record(plan)

    def mark_committed(self) -> None:
        """Write a commit marker for every pending entry (their I/O landed)."""
        self._require_open()
        for entry_id in list(self._pending):
            self._write_record(_KIND_COMMIT, entry_id, 0, b"", 0, 1)
        self._pending.clear()
        self._require_open().flush()

    def checkpoint(self) -> None:
        """Advance the kill sequence over every committed entry and trim.

        Called by the service on ``flush()``/``close()``; also invoked
        automatically when the ring fills.  Never advances past an
        uncommitted entry, and clears the in-memory mirror of the
        entries it retired.
        """
        self._require_open()
        self._kill_seq = max(self._kill_seq, self._checkpoint_floor())
        self._write_record(_KIND_CHECKPOINT, 0, self._kill_seq, b"", 0, 1, auto_checkpoint=False)
        self.clear()
        self._require_open().flush()

    def recover(self, backend: BlockBackend) -> RecoveryReport:
        """Roll every complete, uncommitted entry back to its before-images.

        Newest first, so overlapping writes unwind to the oldest
        pre-image.  The restores are plain sealed-ciphertext block
        writes issued directly against the backend — no accounting, no
        trace, no PRNG draws — so recovery is invisible to both the
        trace adversary and the PRNG-twin check.  Idempotent: a crash
        during recovery leaves the entries uncommitted and the next
        open simply rolls them back again.
        """
        self._require_open()
        restored = 0
        labels: list[str] = []
        for entry in sorted(self._uncommitted, key=lambda e: e.entry_id, reverse=True):
            for index, raw in reversed(entry.undo):
                backend.write(index, raw)
                restored += 1
            labels.append(entry.label)
        if restored:
            backend.flush()
        scanned, valid, complete, committed, incomplete = self._scan_stats
        report = RecoveryReport(
            scanned_slots=scanned,
            valid_records=valid,
            live_entries=complete,
            committed_entries=committed,
            incomplete_entries=incomplete,
            rolled_back=tuple(labels),
            restored_blocks=restored,
        )
        self._uncommitted = []
        self._pending = []
        # Only now is it safe to retire the rolled-back entries.
        self.checkpoint()
        return report

    def flush(self) -> None:
        """Push buffered records to the file."""
        self._require_open().flush()

    def close(self) -> None:
        """Flush and release the sidecar; idempotent."""
        file, self._file = self._file, None
        if file is not None:
            file.flush()
            file.close()
