"""The Definition-1 security notion and distribution-similarity measures.

Definition 1 (Section 3.2.4): let ``X`` be the sequence of accesses the
agent performs on the raw storage, ``Y`` the user requests.  The system
is secure iff ``P(X|Y)`` and ``P(X|Ø)`` (the dummy-only distribution)
are computationally indistinguishable, and perfectly secure iff they
are identical.

These helpers turn observed I/O traces into empirical access
distributions and quantify how far apart two distributions are.  They
are the measurement side of the security experiments; the attacker
strategies themselves live in :mod:`repro.attacks`.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np

from repro.storage.trace import IoTrace


def _as_index_array(indices: IoTrace | Sequence[int] | np.ndarray) -> np.ndarray:
    """Block indices as an int64 array, straight off the trace columns."""
    if isinstance(indices, IoTrace):
        return indices.index_column()
    return np.asarray(indices, dtype=np.int64)


def access_distribution(trace: IoTrace | Sequence[int], num_blocks: int) -> np.ndarray:
    """Empirical probability distribution of accesses over block indices.

    Accepts an :class:`~repro.storage.trace.IoTrace`, a plain sequence of
    block indices, or a numpy index array (the trace's index column).
    """
    indices = _as_index_array(trace)
    if indices.size and (indices.min() < 0 or indices.max() >= num_blocks):
        raise IndexError(f"access index outside volume of {num_blocks} blocks")
    histogram = np.bincount(indices, minlength=num_blocks).astype(float)
    total = histogram.sum()
    if total == 0:
        return histogram
    return histogram / total


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance between two distributions on the same support."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must share the same support")
    return 0.5 * float(np.abs(p - q).sum())


def kl_divergence(p: np.ndarray, q: np.ndarray, epsilon: float = 1e-12) -> float:
    """Kullback-Leibler divergence D(p || q) with epsilon-smoothing."""
    p = np.asarray(p, dtype=float) + epsilon
    q = np.asarray(q, dtype=float) + epsilon
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))


def uniformity_chi_square(
    indices: Sequence[int], num_blocks: int, bins: int = 64
) -> tuple[float, float]:
    """Chi-square test of the access indices against the uniform distribution.

    The indices are bucketed into ``bins`` equal-width bins over the
    volume (testing per-block counts directly would need enormous
    samples).  Returns ``(statistic, p_value)``; a small p-value means
    the accesses are distinguishable from uniform.
    """
    indices = _as_index_array(indices)
    if indices.size == 0:
        raise ValueError("cannot test an empty access sequence")
    bins = min(bins, num_blocks)
    counts = _binned_counts(indices, num_blocks, bins)
    expected = indices.size / bins
    statistic = float(np.sum((counts - expected) ** 2 / expected))
    p_value = _chi_square_sf(statistic, bins - 1)
    return statistic, p_value


def _binned_counts(indices: np.ndarray, num_blocks: int, bins: int) -> np.ndarray:
    """Per-bin access counts over ``bins`` equal-width bins of the volume.

    Out-of-range indices (possible in hand-built traces) clip to the
    edge bins, so the statistics always produce a verdict.
    """
    positions = np.clip(indices * bins // num_blocks, 0, bins - 1)
    return np.bincount(positions, minlength=bins).astype(float)


def _chi_square_sf(statistic: float, dof: int) -> float:
    """Survival function of the chi-square distribution.

    Uses scipy when available and falls back to the Wilson-Hilferty
    normal approximation otherwise, which is accurate enough for the
    coarse secure / not-secure decisions made in the experiments.
    """
    try:
        from scipy import stats

        return float(stats.chi2.sf(statistic, dof))
    except ImportError:  # pragma: no cover - scipy is installed in this environment
        if dof <= 0:
            return 1.0
        z = ((statistic / dof) ** (1.0 / 3.0) - (1.0 - 2.0 / (9.0 * dof))) / math.sqrt(
            2.0 / (9.0 * dof)
        )
        return 0.5 * math.erfc(z / math.sqrt(2.0))


def distinguishing_advantage(
    with_data: Sequence[int],
    dummy_only: Sequence[int],
    num_blocks: int,
    bins: int = 64,
) -> float:
    """Empirical advantage of a distinguisher between two access traces.

    Both traces are reduced to binned empirical distributions and the
    advantage is half the L1 distance between them — the best possible
    advantage of a distinguisher that only looks at marginal access
    frequencies.  A value near 0 means the traces look alike; near 1
    means trivially distinguishable.
    """
    bins = min(bins, num_blocks)

    def binned(indices: Sequence[int]) -> np.ndarray:
        counts = _binned_counts(_as_index_array(indices), num_blocks, bins)
        total = counts.sum()
        return counts / total if total else counts

    return total_variation_distance(binned(with_data), binned(dummy_only))


def repeat_access_counts(indices: Sequence[int]) -> Counter:
    """How many blocks were touched once, twice, three times, ...

    Useful for spotting the signature of *unprotected* workloads: a
    conventional file system updates the same physical block repeatedly,
    while the Figure-6 algorithm spreads updates uniformly.
    """
    indices = _as_index_array(indices)
    if indices.size == 0:
        return Counter()
    _, per_block = np.unique(indices, return_counts=True)
    times, blocks = np.unique(per_block, return_counts=True)
    return Counter(dict(zip(times.tolist(), blocks.tolist(), strict=True)))
