"""Construction 1: the non-volatile agent ("StegHide*", Section 4.1).

The agent runs in a safe environment and keeps two secrets in
non-volatile memory: the FAK of the single dummy file that owns every
dummy block, and the master key under which *all* storage blocks are
encrypted.  Because the agent holds the master key it can decrypt and
re-encrypt any block in the volume, so its random-selection space for
dummy updates and for the Figure-6 algorithm is the entire volume.

The cost of this convenience is the paper's stated drawback: the system
administrator could be coerced into disclosing the hidden data, which is
what Construction 2 removes.
"""

from __future__ import annotations

from repro.core.agent import StegAgent
from repro.crypto.keys import KEY_SIZE, FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.stegfs.filesystem import StegFsVolume


class NonVolatileAgent(StegAgent):
    """The non-volatile agent of Construction 1.

    Parameters
    ----------
    volume:
        The StegFS volume the agent manages.
    prng:
        Source of randomness for block selection and IVs.
    master_key:
        The agent's persistent encryption key; generated when omitted.
    """

    def __init__(
        self,
        volume: StegFsVolume,
        prng: Sha256Prng,
        master_key: bytes | None = None,
        selection_prng: Sha256Prng | None = None,
    ):
        super().__init__(volume, prng, selection_prng)
        key_prng = prng.spawn("nonvolatile-keys")
        self.master_key = master_key if master_key is not None else key_prng.random_bytes(KEY_SIZE)
        # The single dummy file covering every dummy block.  Its FAK is a
        # persistent secret of the agent; the dummy blocks themselves are
        # simply every block the allocation table marks as free, so the
        # dummy file's pointer list is implicit rather than materialised.
        self.dummy_file_fak = FileAccessKey.generate(key_prng.spawn("dummy-fak"), is_dummy=True)

    # -- key policy: one master key for everything -----------------------------------

    def header_key_for(self, fak: FileAccessKey) -> bytes:
        return self.master_key

    def content_key_for(self, fak: FileAccessKey) -> bytes:
        return self.master_key

    def key_for_block(self, index: int) -> bytes:
        return self.master_key

    # -- selection space: the whole volume ----------------------------------------------

    def select_random_block(self) -> int:
        return self._prng.randrange(self.volume.num_blocks)

    def is_dummy_block(self, index: int) -> bool:
        return not self.volume.allocator.is_allocated(index)

    def claim_dummy_block(self, new_data_block: int, released_block: int) -> None:
        # Dummy membership is implicit in the allocation table, which the
        # shared update path has already adjusted; nothing else to track.
        return None

    # -- analytic overhead ---------------------------------------------------------------

    def expected_update_overhead(self) -> float:
        """The paper's E = N / D expected I/O overhead at current utilisation."""
        free = self.volume.allocator.free_blocks
        if free == 0:
            return float("inf")
        return self.volume.num_blocks / free
