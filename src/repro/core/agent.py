"""Shared agent machinery for the two update-hiding constructions.

The agent sits between the users and the raw storage (Figure 3).  Both
constructions hide data updates the same way (Section 4.1.3–4.1.4):

* **Dummy updates** — when idle, the agent picks a uniformly random
  block, decrypts it, assigns a fresh IV, re-encrypts and writes it
  back.  Content is unchanged; every ciphertext byte changes.
* **Data updates (Figure 6)** — to update block ``B1`` the agent keeps
  drawing uniformly random blocks ``B2``:

  - if ``B2 == B1`` the update happens in place;
  - if ``B2`` is a dummy block, the new data is written at ``B2`` and
    ``B1`` becomes a dummy block (the file header is re-pointed);
  - otherwise ``B2`` gets a dummy update and the draw repeats.

  Every draw costs one read and one write, so the expected I/O overhead
  over a conventional update is ``E = N / D`` (Section 4.1.5).

The two constructions differ only in key custody and in which blocks the
agent may touch; those policy decisions are the abstract methods here.

Plan → fuse → execute
---------------------
Every reading/mutating primitive is split into a pure *planner* (PRNG
draws, allocator transfers, header relocation, sealing — no device I/O)
emitting an :class:`~repro.core.plan.IoPlan`, and the generic executor
of :mod:`repro.core.plan`, which fuses adjacent steps and replays them
through the batched device paths.  Hoisting the draws is sound because
the selection, IV and allocator PRNGs are independent spawned streams
and no Figure-6 decision depends on device contents; the twin-trace
suite (``tests/test_plan_kernel.py``) pins that every planned primitive
is draw-, byte- and trace-identical to the loop it replaced.  Assign a
:class:`~repro.core.plan.PlanJournal` to :attr:`StegAgent.plan_journal`
to record each plan before its first device request (the intent-log
seam).

Locking contract
----------------
Agents (and everything below them: volume, allocator, PRNG streams,
raw storage) are **deliberately single-threaded**.  Every public method
mutates shared state non-atomically — the Figure-6 loop interleaves
PRNG draws, allocator transfers, header relocation and device I/O — so
two overlapping calls would corrupt the bitmap and the selection space.
Callers must serialize *all* agent entry points behind one lock;
:class:`repro.service.ConcurrentVolumeService` is the engine that does
this for multi-threaded serving.  The mutating primitives carry a cheap
re-entrancy tripwire (:meth:`StegAgent._exclusive`) that raises
:class:`~repro.errors.ConcurrentAccessError` instead of corrupting
state when the contract is violated.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.plan import (
    CycleStep,
    IoPlan,
    PlanJournal,
    ReadStep,
    ResealStep,
    WriteStep,
    execute_plan,
)
from repro.crypto.keys import FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.errors import ConcurrentAccessError, UnknownFileError
from repro.stegfs.file import HiddenFile
from repro.stegfs.filesystem import StegFsVolume


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one Figure-6 data update."""

    iterations: int
    reads: int
    writes: int
    moved_from: int
    moved_to: int

    @property
    def relocated(self) -> bool:
        """Whether the block ended up at a new physical location."""
        return self.moved_from != self.moved_to

    @property
    def io_operations(self) -> int:
        """Total device operations the update needed."""
        return self.reads + self.writes


class StegAgent(ABC):
    """Base class for the update-hiding agents (Constructions 1 and 2).

    ``selection_prng``, when given, replaces the source of the agent's
    *stochastic* stream (dummy/Figure-6 block draws) while ``prng``
    keeps feeding any persistent key derivation a construction does.
    A service reopening a durable volume uses this split: keys must
    re-derive from the original seed, draws must not replay the
    create-session's stream.
    """

    def __init__(
        self,
        volume: StegFsVolume,
        prng: Sha256Prng,
        selection_prng: Sha256Prng | None = None,
    ):
        self.volume = volume
        source = selection_prng if selection_prng is not None else prng
        self._prng = source.spawn("agent")
        # physical block index -> (owning handle, role) for every block the
        # agent currently knows about; role is "data" or "header".
        self._block_owner: dict[int, tuple[HiddenFile, str]] = {}
        # Name of the mutating primitive currently executing; the
        # re-entrancy tripwire of the locking contract (module docstring).
        self._active_op: str | None = None
        # Optional intent-log hook: when set, every plan is recorded
        # here before its first device request executes.
        self.plan_journal: PlanJournal | None = None

    def _execute(self, plan: IoPlan) -> list[bytes]:
        """Journal (if hooked) and execute one plan against the volume's device."""
        return execute_plan(
            plan, self.volume.device, self.volume.cipher_for, self.plan_journal
        )

    @contextmanager
    def _exclusive(self, operation: str) -> Iterator[None]:
        """Tripwire enforcing the single-threaded locking contract.

        Mutating primitives run inside this guard; entering it while
        another primitive is mid-flight (re-entrant callback or an
        unsynchronized second thread) raises
        :class:`~repro.errors.ConcurrentAccessError` instead of letting
        the interleaved PRNG draws and bitmap mutations corrupt state.
        """
        if self._active_op is not None:
            raise ConcurrentAccessError(
                f"agent entered {operation!r} while {self._active_op!r} is still in "
                "progress; serialize agent calls (see repro.core.agent locking contract) "
                "or serve through ConcurrentVolumeService"
            )
        self._active_op = operation
        try:
            yield
        finally:
            self._active_op = None

    # -- policy hooks implemented by the constructions -------------------------

    @abstractmethod
    def header_key_for(self, fak: FileAccessKey) -> bytes:
        """Key used to encrypt header blocks of a file opened with ``fak``."""

    @abstractmethod
    def content_key_for(self, fak: FileAccessKey) -> bytes:
        """Key used to encrypt data blocks of a file opened with ``fak``."""

    @abstractmethod
    def select_random_block(self) -> int:
        """Draw a uniformly random block from the agent's selection space.

        Construction 1 draws over the whole volume; Construction 2 draws
        over the blocks of the files disclosed to it.
        """

    @abstractmethod
    def is_dummy_block(self, index: int) -> bool:
        """Whether ``index`` currently holds no useful data."""

    @abstractmethod
    def key_for_block(self, index: int) -> bytes:
        """Key under which block ``index`` is encrypted (for dummy updates)."""

    @abstractmethod
    def claim_dummy_block(self, new_data_block: int, released_block: int) -> None:
        """Account for a Figure-6 swap.

        ``new_data_block`` stops being a dummy block (it now holds the
        updated data); ``released_block`` becomes a dummy block.
        """

    # -- block ownership bookkeeping ----------------------------------------------

    def _track_block(self, index: int, handle: HiddenFile, role: str) -> None:
        """Record that ``index`` belongs to ``handle`` (subclasses may extend)."""
        self._block_owner[index] = (handle, role)

    def _untrack_block(self, index: int) -> None:
        """Forget the ownership of ``index`` (subclasses may extend)."""
        self._block_owner.pop(index, None)

    def _register_handle(self, handle: HiddenFile) -> None:
        for index in handle.header.block_pointers:
            self._track_block(index, handle, "data")
        for index in handle.header.header_blocks:
            self._track_block(index, handle, "header")

    def _unregister_handle(self, handle: HiddenFile) -> None:
        for index in list(self._block_owner):
            owner, _ = self._block_owner[index]
            if owner is handle:
                self._untrack_block(index)

    def owner_of(self, index: int) -> tuple[HiddenFile, str] | None:
        """The handle owning a block the agent knows about, if any."""
        return self._block_owner.get(index)

    @property
    def known_blocks(self) -> set[int]:
        """All physical blocks of files the agent currently has open."""
        return set(self._block_owner)

    # -- file lifecycle -------------------------------------------------------------

    def create_file(
        self, fak: FileAccessKey, path: str, content: bytes, stream: str = "default"
    ) -> HiddenFile:
        """Create a hidden file under this construction's key policy."""
        handle = self.volume.create_file(
            fak,
            path,
            content,
            header_key=self.header_key_for(fak),
            content_key=self.content_key_for(fak),
            is_dummy=fak.is_dummy,
            stream=stream,
        )
        self._register_handle(handle)
        return handle

    def open_file(self, fak: FileAccessKey, path: str, stream: str = "default") -> HiddenFile:
        """Open an existing hidden file under this construction's key policy."""
        handle = self.volume.open_file(
            fak,
            path,
            header_key=self.header_key_for(fak),
            content_key=self.content_key_for(fak),
            stream=stream,
        )
        self._register_handle(handle)
        return handle

    def read_file(self, handle: HiddenFile, stream: str = "default") -> bytes:
        """Read a whole hidden file."""
        return self.volume.read_file(handle, stream)

    def read_block(self, handle: HiddenFile, logical_index: int, stream: str = "default") -> bytes:
        """Read one logical block of a hidden file."""
        return self.volume.read_block(handle, logical_index, stream)

    def plan_read_blocks(
        self, handle: HiddenFile, logical_indices: Iterable[int], stream: str = "default"
    ) -> IoPlan:
        """Plan a run of logical-block reads (steps carry the content cipher)."""
        cipher = self.volume.cipher_for(handle.content_key)
        return IoPlan(
            [
                ReadStep(handle.header.physical_block(logical), stream, cipher=cipher)
                for logical in logical_indices
            ],
            label="read_blocks",
        )

    def read_blocks(
        self, handle: HiddenFile, logical_indices: Iterable[int], stream: str = "default"
    ) -> list[bytes]:
        """Read a run of logical blocks through the batched device path.

        Trace-identical to a loop of :meth:`read_block` over
        ``logical_indices`` — the device sees the same block requests in
        the same order — planned as one read run and executed through
        the batched pipeline in one call.
        """
        return self._execute(self.plan_read_blocks(handle, logical_indices, stream))

    def plan_save_file(self, handle: HiddenFile, stream: str = "default") -> IoPlan:
        """Plan a header-chain save: allocator/IV draws and sealing, no device I/O."""
        indices, datas = self.volume.plan_header_save(handle)
        self._register_handle(handle)
        return IoPlan(
            [WriteStep(index, data, stream) for index, data in zip(indices, datas, strict=True)],
            label="save_file",
        )

    def save_file(self, handle: HiddenFile, stream: str = "default") -> None:
        """Flush the cached header chain of an open file to the device."""
        self._execute(self.plan_save_file(handle, stream))

    def close_file(self, handle: HiddenFile, stream: str = "default") -> None:
        """Save (if dirty) and forget an open file."""
        if handle.dirty:
            self.save_file(handle, stream)
        self._unregister_handle(handle)

    def delete_file(self, handle: HiddenFile, stream: str = "default") -> None:
        """Delete an open file: free its blocks and drop it from the selection space.

        Deletion performs **no device I/O** — the freed blocks keep
        their now-meaningless ciphertext, so an attacker comparing
        snapshots cannot tell a deletion happened.  The handle is left
        empty and must not be used afterwards.
        """
        if self.plan_journal is not None:
            # Deletion is pure bookkeeping; its plan is deliberately
            # empty, and journalling it keeps the intent log complete.
            # With no device I/O to land, it commits immediately.
            self.plan_journal.record(IoPlan([], label="delete_file"))
            self.plan_journal.mark_committed()
        self._unregister_handle(handle)
        self.volume.delete_file(handle, stream)

    # -- the hiding primitives --------------------------------------------------------

    def plan_dummy_update(self, stream: str = "dummy") -> tuple[IoPlan, int]:
        """Plan one dummy update: draw the block and its fresh IV, no device I/O."""
        index = self.select_random_block()
        step = ResealStep(index, self.key_for_block(index), self.volume.fresh_iv(), stream)
        return IoPlan([step], label="dummy_update"), index

    def dummy_update(self, stream: str = "dummy") -> int:
        """Perform one dummy update on a uniformly random block.

        Returns the index of the block touched.  Cost: one read and one
        write, exactly like each iteration of a real update.
        """
        with self._exclusive("dummy_update"):
            plan, index = self.plan_dummy_update(stream)
            self._execute(plan)
            return index

    def plan_dummy_update_batch(self, count: int, stream: str = "dummy") -> tuple[IoPlan, list[int]]:
        """Plan ``count`` coalesced dummy updates (batched reseal schedule)."""
        indices = [self.select_random_block() for _ in range(count)]
        keys = [self.key_for_block(index) for index in indices]
        new_ivs = self.volume.fresh_ivs(count)
        steps = [
            ResealStep(index, key, new_iv, stream, batched=True)
            for index, key, new_iv in zip(indices, keys, new_ivs, strict=True)
        ]
        return IoPlan(steps, label="dummy_update_batch"), indices

    def dummy_update_batch(self, count: int, stream: str = "dummy") -> list[int]:
        """Run ``count`` dummy updates coalesced through the batched device paths.

        The block draws and the IV draws consume exactly the streams a
        loop of :meth:`dummy_update` would (selection and IV PRNGs are
        independent streams), and the final device bytes are identical.
        Only the I/O *schedule* differs: the batch issues ``count`` reads
        followed by ``count`` writes instead of read/write pairs, so the
        per-request Python overhead collapses into two batched device
        calls.  Snapshot-level observables (which blocks changed, to
        what ciphertext) are unchanged; the request trace shows the same
        multiset of operations in a locally reordered schedule.
        Duplicate draws are safe: resealing preserves the plaintext, so
        the reads-then-writes schedule leaves the same bytes as
        resealing the reseal (the loop's behaviour).
        """
        if count <= 0:
            return []
        with self._exclusive("dummy_update_batch"):
            plan, indices = self.plan_dummy_update_batch(count, stream)
            self._execute(plan)
            return indices

    def _plan_one_update(
        self,
        handle: HiddenFile,
        logical_index: int,
        payload: bytes,
        stream: str,
    ) -> tuple[IoPlan, UpdateResult]:
        """Plan one Figure-6 update: draws and bookkeeping, no device I/O.

        Nothing mutates until the terminal iteration, so an error raised
        while planning leaves the update untouched.  Hoisting the draws
        off the device path is sound because no Figure-6 decision
        depends on device contents.
        """
        if self.owner_of(handle.header.physical_block(logical_index)) is None:
            raise UnknownFileError(
                "the agent does not hold keys for the file being updated"
            )
        b1 = handle.header.physical_block(logical_index)
        iterations = 0
        reads = 0
        writes = 0
        steps: list[ResealStep | CycleStep] = []

        while True:
            iterations += 1
            b2 = self.select_random_block()

            if b2 == b1:
                # Update in place: read-modify-write at the same location.
                final_iv = self.volume.fresh_iv()
                target = b1
                reads += 1
                writes += 1
                result = UpdateResult(iterations, reads, writes, moved_from=b1, moved_to=b1)
                break

            if self.is_dummy_block(b2):
                # Swap: the data moves to B2, B1 becomes a dummy block.
                final_iv = self.volume.fresh_iv()
                target = b2
                reads += 1
                writes += 1
                handle.header.relocate(logical_index, b2)
                handle.mark_dirty()
                self.volume.allocator.transfer(b1, b2)
                # Ownership hand-over: B1 leaves the data file, the dummy pool
                # absorbs it (claim_dummy_block sees B2 still owned by its
                # dummy file at this point), then B2 joins the data file.
                self._untrack_block(b1)
                self.claim_dummy_block(new_data_block=b2, released_block=b1)
                self._track_block(b2, handle, "data")
                result = UpdateResult(iterations, reads, writes, moved_from=b1, moved_to=b2)
                break

            # B2 is another data block: plan it a dummy update and try again.
            steps.append(ResealStep(b2, self.key_for_block(b2), self.volume.fresh_iv(), stream))
            reads += 1
            writes += 1

        [sealed] = self.volume.seal_payloads(handle.content_key, [payload], [final_iv])
        steps.append(CycleStep(b1, target, sealed, stream))
        return IoPlan(steps, label="update_block"), result

    def update_block(
        self,
        handle: HiddenFile,
        logical_index: int,
        payload: bytes,
        stream: str = "default",
    ) -> UpdateResult:
        """Update one logical block of a file using the Figure-6 algorithm."""
        with self._exclusive("update_block"):
            plan, result = self._plan_one_update(handle, logical_index, payload, stream)
            self._execute(plan)
            return result

    def update_range(
        self,
        handle: HiddenFile,
        start_logical: int,
        payloads: list[bytes],
        stream: str = "default",
    ) -> list[UpdateResult]:
        """Update a run of consecutive logical blocks (the Figure 11(b) workload).

        Observationally this is exactly a loop of :meth:`update_block`:
        the Figure-6 draws, the IV draws and every device request happen
        in the same order with the same bytes.  Each update is first
        *planned* and then *executed*; planning stays per-update (not
        whole-range) so that an error while planning a later update
        leaves every earlier update fully committed to the device, just
        as the plain loop would.  The read/write interleaving of the
        loop is preserved deliberately: re-ordering it would change the
        trace and the simulated head movement that the update-analysis
        experiments observe.  :meth:`plan_update_range` is the engine's
        whole-range variant with different error semantics.
        """
        with self._exclusive("update_range"):
            results: list[UpdateResult] = []
            for offset, payload in enumerate(payloads):
                plan, result = self._plan_one_update(
                    handle, start_logical + offset, payload, stream
                )
                self._execute(plan)
                results.append(result)
            return results

    def plan_update_range(
        self,
        handle: HiddenFile,
        start_logical: int,
        payloads: list[bytes],
        stream: str = "default",
    ) -> tuple[IoPlan, list[UpdateResult]]:
        """Plan a whole range update as one fused plan (the engine's path).

        Unlike :meth:`update_range`, *all* updates are planned before
        any device I/O happens, so a planning error commits nothing.
        The device sees the same requests in the same order as the
        per-update path; only the failure atomicity differs.
        """
        with self._exclusive("plan_update_range"):
            for offset in range(len(payloads)):
                if self.owner_of(handle.header.physical_block(start_logical + offset)) is None:
                    raise UnknownFileError(
                        "the agent does not hold keys for the file being updated"
                    )
            steps: list[ReadStep | WriteStep | CycleStep | ResealStep] = []
            results: list[UpdateResult] = []
            for offset, payload in enumerate(payloads):
                plan, result = self._plan_one_update(
                    handle, start_logical + offset, payload, stream
                )
                steps.extend(plan.steps)
                results.append(result)
            return IoPlan(steps, label="update_range"), results

    def append_blocks(
        self, handle: HiddenFile, payloads: list[bytes], stream: str = "default"
    ) -> list[int]:
        """Append whole data blocks to an open file and track their locations.

        The appended blocks join the agent's selection space (for the
        volatile agent) exactly like blocks registered at open time.  The
        caller is responsible for saving the grown header afterwards;
        :meth:`repro.service.Session.append` is the byte-granular public
        path that does this bookkeeping.
        """
        with self._exclusive("append_blocks"):
            plan, logicals = self._plan_append_blocks(handle, payloads, stream)
            self._execute(plan)
            return logicals

    def _plan_append_blocks(
        self, handle: HiddenFile, payloads: list[bytes], stream: str
    ) -> tuple[IoPlan, list[int]]:
        """Plan whole-block appends: allocation, sealing and tracking, no device I/O."""
        if (
            payloads
            and handle.num_blocks > 0
            and self.owner_of(handle.header.physical_block(0)) is None
        ):
            raise UnknownFileError(
                "the agent does not hold keys for the file being appended to"
            )
        steps: list[WriteStep] = []
        logicals: list[int] = []
        for payload in payloads:
            logical, physical, sealed = self.volume.plan_append_block(handle, payload)
            self._track_block(physical, handle, "data")
            steps.append(WriteStep(physical, sealed, stream))
            logicals.append(logical)
        return IoPlan(steps, label="append_blocks"), logicals

    def plan_append_blocks(
        self, handle: HiddenFile, payloads: list[bytes], stream: str = "default"
    ) -> tuple[IoPlan, list[int]]:
        """Plan whole-block appends without executing them (the engine's path)."""
        with self._exclusive("plan_append_blocks"):
            return self._plan_append_blocks(handle, payloads, stream)

    def idle(self, num_dummy_updates: int, stream: str = "dummy") -> list[int]:
        """Run a burst of dummy updates, as the agent does when no requests arrive.

        Each update runs through the single-block :meth:`dummy_update`
        (read/write pairs, one per update); the concurrent engine uses
        :meth:`dummy_update_batch` for its coalesced bursts instead.
        """
        return [self.dummy_update(stream) for _ in range(num_dummy_updates)]
