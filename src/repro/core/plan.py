"""Declarative I/O plans: plan → fuse → execute.

Every reading/mutating primitive of the update-hiding agents is split
into a pure **planner** — PRNG draws, allocator transfers, header
relocation and crypto run up front and emit a sequence of declarative
steps, with no device I/O — and a generic **executor** that *fuses*
adjacent compatible steps and runs them against any
:class:`~repro.storage.device.BlockDevice` through the batched
``read_blocks``/``write_blocks``/``read_write_blocks`` paths.

Planning before executing is sound for the Figure-6 machinery because
no hiding decision depends on device *contents*: the selection, IV and
allocator PRNGs are independent spawned streams, so hoisting their
draws to plan time preserves each stream's draw sequence, and the
Figure-6 dummy test consults only in-memory bookkeeping.  The executor
then replays the plan in step order, so the device sees the same
requests, in the same order, with the same bytes, as the legacy
hand-rolled loops — the twin-trace suite in
``tests/test_plan_kernel.py`` pins draw/byte/trace equivalence for
every primitive.

Step vocabulary
---------------
:class:`ReadStep`
    Read one block.  ``keep=False`` marks a charging-only read whose
    bytes are discarded (the Figure-6 read of ``B1`` before its payload
    moves).  When ``cipher`` is set the executor returns the decrypted
    data field instead of the raw block, batching decryption per cipher
    across a whole fused run.
:class:`WriteStep`
    Write pre-sealed raw bytes (``iv || ciphertext``) to one block.
:class:`CycleStep`
    Read one block, then write another (or the same) — the terminal
    read/write pair of one Figure-6 update, in place or as a swap.
:class:`ResealStep`
    Read a block and rewrite it with a fresh IV (a dummy update).  The
    plaintext is preserved, which is what makes reseals *transparent*:
    executing a pending reseal before or after an unrelated read of the
    same block cannot change the bytes that read decrypts to.
    ``batched=True`` lets a run of reseals execute as batched reads
    followed by batched writes (the ``dummy_update_batch`` schedule);
    the default executes strict read/write pairs in step order.

Fusion invariants
-----------------
``fuse`` groups *adjacent* same-kind steps into :class:`FusedRun`\\ s
and never reorders steps across runs, so the per-plan (per-session)
step order is always preserved.  Two writes to the same index are never
merged into one run — both device events survive, in order — and a
cycle run whose indices collide is executed by the device as a genuine
per-cycle loop (see ``read_write_blocks``), so hazards cannot reorder.
Only a ``batched=True`` reseal run reorders *locally* (reads first,
then writes), which is byte-safe because reseals are
plaintext-idempotent, even under duplicate draws.

:class:`PlanJournal` is the crash-consistency seam: it records each
plan's step sequence *before* any of its I/O executes and is told via
:meth:`~PlanJournal.mark_committed` when the plan's I/O has fully
landed.  :class:`repro.core.journal.JournalBackend` subclasses it to
persist every entry (with before-images) to a cipher-sealed sidecar
file, which is what lets ``HiddenVolumeService.open`` roll a torn plan
back to its pre-plan bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, Union

from repro.storage.block import BLOCK_IV_SIZE, StoredBlock
from repro.storage.device import BlockDevice

#: Builds (or looks up) the field cipher for a key; the volume's
#: ``cipher_for`` is the canonical implementation.
CipherFor = Callable[[bytes], Any]


@dataclass(frozen=True)
class ReadStep:
    """Read block ``index``; discard the bytes when ``keep`` is False."""

    index: int
    stream: str = "default"
    cipher: Any = None
    keep: bool = True


@dataclass(frozen=True)
class WriteStep:
    """Write pre-sealed raw bytes to block ``index``."""

    index: int
    data: bytes = b""
    stream: str = "default"


@dataclass(frozen=True)
class CycleStep:
    """Read ``read_index`` then write ``data`` to ``write_index``."""

    read_index: int
    write_index: int
    data: bytes = b""
    stream: str = "default"


@dataclass(frozen=True)
class ResealStep:
    """Dummy-update block ``index``: decrypt under ``key``, re-encrypt under ``new_iv``."""

    index: int
    key: bytes = field(default=b"", repr=False)
    new_iv: bytes = b""
    stream: str = "dummy"
    batched: bool = False


Step = Union[ReadStep, WriteStep, CycleStep, ResealStep]

#: Run kinds, in the executor's dispatch vocabulary.
KIND_READ = "read"
KIND_WRITE = "write"
KIND_CYCLE = "cycle"
KIND_RESEAL = "reseal"
KIND_RESEAL_BATCH = "reseal-batch"


def _kind_of(step: Step) -> str:
    if isinstance(step, ReadStep):
        return KIND_READ
    if isinstance(step, WriteStep):
        return KIND_WRITE
    if isinstance(step, CycleStep):
        return KIND_CYCLE
    if isinstance(step, ResealStep):
        return KIND_RESEAL_BATCH if step.batched else KIND_RESEAL
    raise TypeError(f"not an I/O plan step: {step!r}")


@dataclass
class IoPlan:
    """One primitive's declarative I/O, in execution order."""

    steps: list[Step] = field(default_factory=list)
    label: str = ""

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def device_ops(self) -> int:
        """Device operations this plan will charge (reads + writes)."""
        ops = 0
        for step in self.steps:
            ops += 1 if isinstance(step, (ReadStep, WriteStep)) else 2
        return ops


@dataclass
class PlannedOp:
    """A planned operation plus the finisher turning payloads into its result.

    ``finish`` receives the plan's kept-read payloads, in step order
    (decrypted where the step carried a cipher), and returns the
    operation's result; operations whose result is pre-known from
    planning ignore the argument.
    """

    plan: IoPlan
    finish: Callable[[list[bytes]], Any]


@dataclass
class FusedRun:
    """A maximal run of adjacent same-kind steps, ready for one device call.

    ``sources`` is parallel to ``steps``: the position (in the fused
    plan list) of the plan each step came from, which is what lets the
    executor hand payloads back per plan and lets the engine tell
    cross-session fusion from intra-request batching.
    """

    kind: str
    steps: list[Step] = field(default_factory=list)
    sources: list[int] = field(default_factory=list)

    @property
    def source_count(self) -> int:
        """Number of distinct plans contributing steps to this run."""
        return len(set(self.sources))


def fuse(plans: Sequence[IoPlan]) -> list[FusedRun]:
    """Group adjacent same-kind steps across ``plans`` into fused runs.

    Iterates plans in order and steps in plan order, so the relative
    order of any one plan's steps — and of any two steps from different
    plans — is preserved exactly; fusion never reorders, it only widens
    device calls.  A write to an index already written inside the
    current run starts a new run, so distinct writes to one block stay
    distinct device events in submission order.
    """
    runs: list[FusedRun] = []
    current: FusedRun | None = None
    written: set[int] = set()
    for source, plan in enumerate(plans):
        for step in plan.steps:
            kind = _kind_of(step)
            splits = (
                current is None
                or current.kind != kind
                or (kind == KIND_WRITE and step.index in written)
            )
            if splits:
                current = FusedRun(kind)
                runs.append(current)
                written.clear()
            current.steps.append(step)
            current.sources.append(source)
            if kind == KIND_WRITE:
                written.add(step.index)
    return runs


def _execute_read_run(
    run: FusedRun, device: BlockDevice, out: dict[int, list[bytes]]
) -> None:
    steps = run.steps
    raws = device.read_blocks([step.index for step in steps], [step.stream for step in steps])
    # Decrypt kept payloads per cipher through the vectorized path,
    # preserving per-step output order within each plan.
    by_cipher: dict[int, tuple[Any, list[int]]] = {}
    for position, step in enumerate(steps):
        if not step.keep:
            continue
        if step.cipher is None:
            out.setdefault(run.sources[position], []).append(raws[position])
            continue
        by_cipher.setdefault(id(step.cipher), (step.cipher, []))[1].append(position)
    for cipher, positions in by_cipher.values():
        plaintexts = cipher.decrypt_many(
            [raws[p][:BLOCK_IV_SIZE] for p in positions],
            [raws[p][BLOCK_IV_SIZE:] for p in positions],
        )
        for position, plaintext in zip(positions, plaintexts, strict=True):
            out.setdefault(run.sources[position], []).append(plaintext)


def _execute_reseal_batch_run(
    run: FusedRun, device: BlockDevice, cipher_for: CipherFor
) -> None:
    # The dummy_update_batch schedule: batched reads, per-key vectorized
    # crypto, batched writes.  Duplicate draws are safe: resealing
    # preserves the plaintext, so writing both reseals in draw order
    # leaves the same bytes as resealing the reseal.
    steps = run.steps
    indices = [step.index for step in steps]
    streams = [step.stream for step in steps]
    raws = device.read_blocks(indices, streams)
    positions_by_key: dict[bytes, list[int]] = {}
    for position, step in enumerate(steps):
        positions_by_key.setdefault(step.key, []).append(position)
    # Every position belongs to exactly one key group, so each empty
    # placeholder is overwritten before the batched write.
    datas: list[bytes] = [b""] * len(steps)
    for key, positions in positions_by_key.items():
        cipher = cipher_for(key)
        plaintexts = cipher.decrypt_many(
            [raws[p][:BLOCK_IV_SIZE] for p in positions],
            [raws[p][BLOCK_IV_SIZE:] for p in positions],
        )
        ciphertexts = cipher.encrypt_many(
            [steps[p].new_iv for p in positions], plaintexts
        )
        for p, ciphertext in zip(positions, ciphertexts, strict=True):
            datas[p] = steps[p].new_iv + ciphertext
    device.write_blocks(indices, datas, streams)


def execute_runs(
    runs: Sequence[FusedRun], device: BlockDevice, cipher_for: CipherFor
) -> dict[int, list[bytes]]:
    """Execute fused runs in order; return kept-read payloads per source plan.

    Each run becomes one batched device call (strict reseal runs
    execute their read/write pairs in step order), so the device sees
    exactly the planned requests in the planned order.  Errors
    propagate to the caller mid-run, matching the partial-progress
    semantics of the loops the plans replaced.
    """
    out: dict[int, list[bytes]] = {}
    for run in runs:
        if run.kind == KIND_READ:
            _execute_read_run(run, device, out)
        elif run.kind == KIND_WRITE:
            device.write_blocks(
                [step.index for step in run.steps],
                [step.data for step in run.steps],
                [step.stream for step in run.steps],
            )
        elif run.kind == KIND_CYCLE:
            device.read_write_blocks(
                [step.read_index for step in run.steps],
                [step.data for step in run.steps],
                [step.stream for step in run.steps],
                write_indices=[step.write_index for step in run.steps],
            )
        elif run.kind == KIND_RESEAL:
            for step in run.steps:
                raw = device.read_block(step.index, step.stream)
                resealed = StoredBlock.from_raw(raw).reseal_with_new_iv(
                    cipher_for(step.key), step.new_iv
                )
                device.write_block(step.index, resealed.raw, step.stream)
        elif run.kind == KIND_RESEAL_BATCH:
            _execute_reseal_batch_run(run, device, cipher_for)
        else:  # pragma: no cover - fuse() only emits the kinds above
            raise ValueError(f"unknown fused-run kind {run.kind!r}")
    return out


def execute_plan(
    plan: IoPlan,
    device: BlockDevice,
    cipher_for: CipherFor,
    journal: "PlanJournal | None" = None,
) -> list[bytes]:
    """Fuse and execute one plan; return its kept-read payloads in step order.

    The journal (when given) sees the plan strictly before its first
    device request and is marked committed only after every run landed;
    an entry left uncommitted therefore brackets exactly the window in
    which a crash can leave the plan half-applied.
    """
    if journal is not None:
        journal.record(plan)
    payloads = execute_runs(fuse([plan]), device, cipher_for)
    if journal is not None:
        journal.mark_committed()
    return payloads.get(0, [])


@dataclass(frozen=True)
class JournalEntry:
    """One journalled plan: its label and its step sequence, pre-execution."""

    label: str
    steps: tuple[Step, ...]


class PlanJournal:
    """Records planned step sequences *before* they execute.

    This is the seam the crash-consistency intent log consumes: by the
    time any block of a plan is written, the journal already holds the
    full step sequence, so a torn plan can be recognised and rolled
    back.  The ordering contract (record strictly precedes the plan's
    first device request, :meth:`mark_committed` strictly follows its
    last) is guaranteed by the executors and pinned by tests.

    The in-memory journal keeps at most ``max_entries`` entries (a
    ring: recording past the cap drops the oldest entry), with the
    overflow visible through :attr:`truncated` and
    :attr:`total_recorded`.  :class:`repro.core.journal.JournalBackend`
    extends this class with a durable, cipher-sealed sidecar file.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._entries: list[JournalEntry] = []
        self._max_entries = max_entries
        self._total_recorded = 0
        self._truncated = 0

    def record(self, plan: IoPlan) -> None:
        """Journal one plan's step sequence ahead of its execution."""
        self._entries.append(JournalEntry(plan.label, tuple(plan.steps)))
        self._total_recorded += 1
        if self._max_entries is not None and len(self._entries) > self._max_entries:
            del self._entries[0]
            self._truncated += 1

    def mark_committed(self) -> None:
        """Note that every recorded-but-unexecuted plan has fully landed.

        A no-op for the in-memory journal; the durable journal writes a
        commit marker so recovery knows the entry needs no rollback.
        """

    @property
    def entries(self) -> list[JournalEntry]:
        """Journalled entries, oldest first (a copy)."""
        return list(self._entries)

    @property
    def max_entries(self) -> int | None:
        """Ring capacity, or ``None`` for an unbounded journal."""
        return self._max_entries

    @property
    def total_recorded(self) -> int:
        """Plans recorded over the journal's lifetime, truncated or not."""
        return self._total_recorded

    @property
    def truncated(self) -> int:
        """Entries dropped from the head of the ring to respect the cap."""
        return self._truncated

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (e.g. after a checkpoint)."""
        self._entries.clear()
