"""Construction 2: the volatile agent ("StegHide", Section 4.2).

The agent persists no secrets.  Every hidden file is encrypted under
keys carried in its owner's FAK, dummy blocks are organised into
per-user dummy files of roughly data-file size, and the keys are
disclosed to the agent only while the user is logged in.

Consequences implemented here:

* the agent's random-selection space for dummy updates and for the
  Figure-6 algorithm is the set of blocks of *disclosed* files
  ("As more users log in, the agent would discover more hidden files
  and dummy blocks to carry out dummy updates on");
* when a Figure-6 swap claims a block from a user's dummy file, the
  block vacated by the data takes its place in that dummy file, so
  dummy files keep their size;
* logging a user out drops their keys and shrinks the selection space;
* a user under coercion can produce a deniable key ring
  (:meth:`repro.crypto.keys.KeyRing.deniable_view`).

Locking contract (see :mod:`repro.core.agent`): this agent is
single-threaded.  ``_IndexedSet`` trades thread-safety for O(1) uniform
sampling — ``add``/``discard`` leave the positions map briefly
inconsistent mid-call — and ``login``/``logout``/``claim_dummy_block``
mutate the selection space across several steps.  All entry points,
including login and logout, must be serialized by the caller; the
concurrent serving engine (:class:`repro.service.ConcurrentVolumeService`)
runs every operation on its scheduler thread-of-the-moment while holding
the engine lock, and the mutating primitives inherit the
:meth:`~repro.core.agent.StegAgent._exclusive` tripwire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.agent import StegAgent
from repro.crypto.keys import FileAccessKey, KeyRing
from repro.crypto.prng import Sha256Prng
from repro.errors import NotLoggedInError, UnknownFileError
from repro.stegfs.file import HiddenFile
from repro.stegfs.filesystem import StegFsVolume


class _IndexedSet:
    """A set of ints supporting O(1) add/remove and O(1) uniform sampling."""

    def __init__(self) -> None:
        self._items: list[int] = []
        self._positions: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, value: int) -> bool:
        return value in self._positions

    def add(self, value: int) -> None:
        if value in self._positions:
            return
        self._positions[value] = len(self._items)
        self._items.append(value)

    def discard(self, value: int) -> None:
        position = self._positions.pop(value, None)
        if position is None:
            return
        last = self._items.pop()
        if position < len(self._items):
            self._items[position] = last
            self._positions[last] = position

    def sample(self, prng: Sha256Prng) -> int:
        if not self._items:
            raise IndexError("cannot sample from an empty set")
        return self._items[prng.randrange(len(self._items))]

    def as_set(self) -> set[int]:
        return set(self._items)


@dataclass
class _Session:
    """State the agent keeps for one logged-in user."""

    user: str
    keyring: KeyRing
    handles: dict[str, HiddenFile] = field(default_factory=dict)


class VolatileAgent(StegAgent):
    """The volatile agent of Construction 2."""

    def __init__(
        self,
        volume: StegFsVolume,
        prng: Sha256Prng,
        selection_prng: Sha256Prng | None = None,
    ):
        super().__init__(volume, prng, selection_prng)
        self._sessions: dict[str, _Session] = {}
        self._selection = _IndexedSet()
        self._dummy_data_blocks = _IndexedSet()

    # -- key policy: keys come from the FAK -----------------------------------------

    def header_key_for(self, fak: FileAccessKey) -> bytes:
        return fak.header_key

    def content_key_for(self, fak: FileAccessKey) -> bytes:
        # Dummy files have no content key; their blocks are kept under the
        # header key, which is all that is needed for dummy updates.
        return fak.content_key if fak.content_key is not None else fak.header_key

    def key_for_block(self, index: int) -> bytes:
        owner = self.owner_of(index)
        if owner is None:
            raise UnknownFileError(f"the agent holds no key for block {index}")
        handle, role = owner
        return handle.header_key if role == "header" else handle.content_key

    # -- selection space: blocks of disclosed files --------------------------------------

    def _track_block(self, index: int, handle: HiddenFile, role: str) -> None:
        super()._track_block(index, handle, role)
        self._selection.add(index)
        if handle.is_dummy and role == "data":
            self._dummy_data_blocks.add(index)
        else:
            self._dummy_data_blocks.discard(index)

    def _untrack_block(self, index: int) -> None:
        super()._untrack_block(index)
        self._selection.discard(index)
        self._dummy_data_blocks.discard(index)

    def select_random_block(self) -> int:
        if len(self._selection) == 0:
            raise NotLoggedInError("no files have been disclosed to the agent")
        return self._selection.sample(self._prng)

    def is_dummy_block(self, index: int) -> bool:
        return index in self._dummy_data_blocks

    def claim_dummy_block(self, new_data_block: int, released_block: int) -> None:
        """Keep the owning dummy file whole after a Figure-6 swap.

        ``new_data_block`` used to belong to some disclosed dummy file;
        the vacated ``released_block`` takes its place in that file so
        the dummy file keeps its size and remains openable later.
        """
        owner = self.owner_of(new_data_block)
        if owner is None or not owner[0].is_dummy:
            # No disclosed dummy file owned the block (e.g. tests exercising
            # the raw mechanism); the released block simply leaves the
            # selection space.
            return None
        dummy_handle = owner[0]
        logical = dummy_handle.header.logical_of_physical(new_data_block)
        if logical is None:
            return None
        dummy_handle.header.relocate(logical, released_block)
        dummy_handle.mark_dirty()
        self._track_block(released_block, dummy_handle, "data")
        # The released block now belongs to the dummy file, so it must stay
        # reserved in the volume's allocation table (the shared update path
        # freed it when it stopped holding real data).
        self.volume.allocator.allocate_specific(released_block)
        return None

    # -- user sessions -----------------------------------------------------------------------

    @property
    def logged_in_users(self) -> list[str]:
        """Names of the users currently logged in."""
        return sorted(self._sessions)

    def login(self, keyring: KeyRing, stream: str = "default") -> dict[str, HiddenFile]:
        """Log a user in: disclose their FAKs and open all their files.

        Opening the files is what teaches the agent which physical blocks
        it may touch; the returned mapping is path -> handle.
        """
        session = _Session(user=keyring.owner, keyring=keyring)
        self._sessions[keyring.owner] = session
        for path, fak in keyring.all_keys().items():
            handle = self.open_file(fak, path, stream)
            handle.owner = keyring.owner
            session.handles[path] = handle
        return dict(session.handles)

    def logout(self, user: str, stream: str = "default") -> None:
        """Log a user out: save dirty headers and forget their keys and blocks."""
        session = self._sessions.pop(user, None)
        if session is None:
            raise NotLoggedInError(f"user {user!r} is not logged in")
        for handle in session.handles.values():
            self.close_file(handle, stream)

    def handle_for(self, user: str, path: str) -> HiddenFile:
        """The open handle of a logged-in user's file."""
        session = self._sessions.get(user)
        if session is None:
            raise NotLoggedInError(f"user {user!r} is not logged in")
        handle = session.handles.get(path)
        if handle is None:
            raise UnknownFileError(f"user {user!r} disclosed no file at {path!r}")
        return handle

    def disclosed_block_count(self) -> int:
        """Number of blocks currently in the agent's selection space."""
        return len(self._selection)

    def disclosed_dummy_block_count(self) -> int:
        """Number of disclosed dummy data blocks (swap targets)."""
        return len(self._dummy_data_blocks)

    def expected_update_overhead(self) -> float:
        """E = (disclosed blocks) / (disclosed dummy blocks), the Construction-2 analogue of N/D."""
        if len(self._dummy_data_blocks) == 0:
            return float("inf")
        return len(self._selection) / len(self._dummy_data_blocks)
