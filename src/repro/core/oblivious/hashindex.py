"""Per-level salted hash index.

Section 5.1.2: "A secondary hash index is built for each level for
locating its data blocks. ... Each hash index has to be rebuilt whenever
the corresponding level is re-ordered.  The key for the hash index is
composed of the block's logical address and a random number generated
when the hash index is rebuilt.  Therefore, attackers could not detect
anything from the accesses to the indices."

The index maps a *salted digest* of the logical block address to the
slot holding the block, so even an observer who saw the index contents
could not map entries back to logical addresses without the salt.  The
agent keeps the index in memory (the paper allows this when it fits).
"""

from __future__ import annotations

import hashlib

from repro.crypto.prng import Sha256Prng


class LevelHashIndex:
    """Salted logical-address → slot index for one level of the oblivious store."""

    def __init__(self, prng: Sha256Prng):
        self._prng = prng
        self._salt = prng.random_bytes(16)
        self._entries: dict[bytes, int] = {}
        self._logical_ids: set[int] = set()

    def _digest(self, logical_id: int) -> bytes:
        return hashlib.sha256(self._salt + logical_id.to_bytes(8, "big")).digest()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, logical_id: int) -> bool:
        return logical_id in self._logical_ids

    def lookup(self, logical_id: int) -> int | None:
        """Slot of ``logical_id`` in this level, or None."""
        return self._entries.get(self._digest(logical_id))

    def insert(self, logical_id: int, slot: int) -> None:
        """Record that ``logical_id`` lives at ``slot``."""
        self._entries[self._digest(logical_id)] = slot
        self._logical_ids.add(logical_id)

    def remove(self, logical_id: int) -> None:
        """Forget ``logical_id`` (used when a stale copy is superseded)."""
        self._entries.pop(self._digest(logical_id), None)
        self._logical_ids.discard(logical_id)

    def logical_ids(self) -> set[int]:
        """All logical ids currently indexed."""
        return set(self._logical_ids)

    def rebuild(self, placements: dict[int, int]) -> None:
        """Rebuild the index with a fresh salt after the level is re-ordered."""
        self._salt = self._prng.random_bytes(16)
        self._entries = {}
        self._logical_ids = set()
        for logical_id, slot in placements.items():
            self.insert(logical_id, slot)

    def clear(self) -> None:
        """Empty the index (the level was dumped into the next one)."""
        self.rebuild({})
