"""Analytic cost model of the oblivious storage (Section 5.2 and Table 4).

The paper derives a per-read overhead with two components:

* **retrieval** — one block is read from each of the ``k`` levels, and a
  matching write lands back in the hierarchy, giving ``2k`` I/Os;
* **sorting** — level ``i`` (size ``2^i · B``) is re-ordered once every
  ``2^(i-1) · B`` reads with an external merge sort, which the paper
  amortises to ``4k × (log_B 2^k + 1)`` I/Os per read.

For the configuration evaluated in the paper (1 GB last level, 8–128 MB
buffer) the sorting term's parenthesis evaluates to 2, so the overall
factor is ``2k + 8k = 10k`` — exactly the numbers in Table 4
(height 7 → factor 70, ..., height 3 → factor 30).  The model keeps the
parenthesis as an explicit parameter so that configurations other than
the paper's can be explored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def oblivious_height(last_level_blocks: int, buffer_blocks: int) -> int:
    """Number of levels ``k = log2(N / B)``.

    ``N`` (the last level) must be at least twice the buffer, otherwise a
    hierarchy cannot be formed.
    """
    if buffer_blocks <= 0 or last_level_blocks <= 0:
        raise ValueError("buffer and last level sizes must be positive")
    if last_level_blocks < 2 * buffer_blocks:
        raise ValueError(
            "the last level must be at least twice the buffer "
            f"(N={last_level_blocks}, B={buffer_blocks})"
        )
    return max(1, round(math.log2(last_level_blocks / buffer_blocks)))


def retrieval_overhead(height: int) -> float:
    """Retrieval component of the per-read overhead: ``2k`` I/Os."""
    return 2.0 * height


def sorting_overhead(height: int, sort_log_term: float = 2.0) -> float:
    """Amortised sorting component: ``4k × (log_B 2^k + 1)`` I/Os per read.

    ``sort_log_term`` is the value of the parenthesis; the paper's own
    arithmetic uses 2 for its evaluated configuration.
    """
    return 4.0 * height * sort_log_term


def overhead_factor(
    last_level_blocks: int, buffer_blocks: int, sort_log_term: float = 2.0
) -> float:
    """Total per-read I/O overhead factor relative to a conventional read."""
    k = oblivious_height(last_level_blocks, buffer_blocks)
    return retrieval_overhead(k) + sorting_overhead(k, sort_log_term)


@dataclass(frozen=True)
class ObliviousCostModel:
    """Convenience bundle of the analytic quantities for one configuration."""

    last_level_blocks: int
    buffer_blocks: int
    sort_log_term: float = 2.0

    @property
    def height(self) -> int:
        """Number of levels."""
        return oblivious_height(self.last_level_blocks, self.buffer_blocks)

    @property
    def retrieval(self) -> float:
        """Retrieval I/Os per read."""
        return retrieval_overhead(self.height)

    @property
    def sorting(self) -> float:
        """Amortised sorting I/Os per read."""
        return sorting_overhead(self.height, self.sort_log_term)

    @property
    def total(self) -> float:
        """Total overhead factor (Table 4's "overhead" row)."""
        return self.retrieval + self.sorting

    @property
    def total_slots(self) -> int:
        """Device blocks needed to host all levels: sum of 2^i * B for i=1..k."""
        return (2 ** (self.height + 1) - 2) * self.buffer_blocks
