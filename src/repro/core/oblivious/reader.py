"""The read path combining the StegFS partition and the oblivious store.

Figure 8(a): a block that is not yet cached is fetched from the StegFS
partition through a randomised procedure whose observable distribution
matches that of dummy reads; once copied into the oblivious store, all
further reads of the block go through the oblivious hierarchy, where
data reads and dummy reads are indistinguishable by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.oblivious.store import ObliviousStore
from repro.crypto.prng import Sha256Prng
from repro.stegfs.file import HiddenFile
from repro.stegfs.filesystem import StegFsVolume


@dataclass
class ReaderStats:
    """Accounting of the Figure 8(a) StegFS-partition read procedure."""

    stegfs_reads: int = 0
    stegfs_decoy_reads: int = 0
    copies_in: int = 0
    dummy_reads: int = 0
    oblivious_reads: int = 0


class ObliviousReader:
    """Serves block reads through the oblivious storage (Section 5.1)."""

    def __init__(self, volume: StegFsVolume, store: ObliviousStore, prng: Sha256Prng):
        self.volume = volume
        self.store = store
        self._prng = prng.spawn("oblivious-reader")
        self.stats = ReaderStats()

    # -- the Figure 8(a) procedure -------------------------------------------------

    def _fetch_from_stegfs(self, handle: HiddenFile, physical: int, stream: str) -> bytes:
        """Copy one block from the StegFS partition into the oblivious store.

        Before the real read, the procedure may issue re-reads of already
        cached blocks so that, seen from the StegFS partition, the choice
        of block looks like an independent uniform draw.
        """
        partition_blocks = self.volume.num_blocks
        while True:
            x = self._prng.randrange(partition_blocks)
            cached = self.store.cached_ids()
            if x < len(cached):
                decoy = sorted(cached)[self._prng.randrange(len(cached))]
                self.volume.device.read_block(decoy, stream)
                self.stats.stegfs_decoy_reads += 1
                continue
            payload = self.volume.read_payload(physical, handle.content_key, stream)
            self.stats.stegfs_reads += 1
            self.store.insert(physical, payload, stream)
            self.stats.copies_in += 1
            return payload

    # -- public read path --------------------------------------------------------------

    def read_block(self, handle: HiddenFile, logical_index: int, stream: str = "default") -> bytes:
        """Read one logical block of a hidden file through the oblivious path."""
        physical = handle.header.physical_block(logical_index)
        if self.store.contains(physical):
            self.stats.oblivious_reads += 1
            return self.store.read(physical, stream)[: self.volume.data_field_bytes]
        return self._fetch_from_stegfs(handle, physical, stream)

    def read_file(self, handle: HiddenFile, stream: str = "default") -> bytes:
        """Read a whole hidden file through the oblivious path."""
        pieces = [self.read_block(handle, i, stream) for i in range(handle.num_blocks)]
        return b"".join(pieces)[: handle.size_bytes]

    def write_block(
        self, handle: HiddenFile, logical_index: int, payload: bytes, stream: str = "default"
    ) -> None:
        """Update a block in the cache and mirror the write to the StegFS partition.

        Section 5.1.2: "The writes would also need to be repeated on the
        StegFS partition to ensure consistency."
        """
        physical = handle.header.physical_block(logical_index)
        if self.store.contains(physical):
            self.store.write(physical, payload, stream)
        else:
            self.store.insert(physical, payload, stream)
        self.volume.write_payload(physical, handle.content_key, payload, stream)

    def dummy_read(self, stream: str = "dummy") -> None:
        """Issue one dummy read (Figure 8(a) else-branch): a random StegFS block."""
        index = self._prng.randrange(self.volume.num_blocks)
        self.volume.device.read_block(index, stream)
        self.stats.dummy_reads += 1

    def dummy_oblivious_read(self, stream: str = "dummy") -> None:
        """Issue one dummy read against the oblivious hierarchy."""
        self.store.dummy_read(stream)
        self.stats.dummy_reads += 1
