"""One level of the oblivious-storage hierarchy.

A level owns a contiguous range of slots on the oblivious partition,
its own encryption key (re-drawn at every shuffle), and a salted hash
index locating the blocks it currently holds.  Level 1 is twice the
agent's buffer; each subsequent level doubles (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.oblivious.hashindex import LevelHashIndex
from repro.crypto.prng import Sha256Prng
from repro.errors import LevelFullError


@dataclass
class Level:
    """Bookkeeping for one level (the block bytes live on the device)."""

    number: int
    capacity: int
    first_slot: int
    index: LevelHashIndex
    key: bytes = field(repr=False)
    shuffles: int = 0
    _placements: dict[int, int] = field(default_factory=dict)

    @classmethod
    def create(
        cls, number: int, capacity: int, first_slot: int, prng: Sha256Prng
    ) -> "Level":
        """Build an empty level with a fresh key and index."""
        return cls(
            number=number,
            capacity=capacity,
            first_slot=first_slot,
            index=LevelHashIndex(prng.spawn(f"index-{number}")),
            key=prng.spawn(f"key-{number}").random_bytes(32),
        )

    @property
    def occupied(self) -> int:
        """How many distinct blocks the level currently holds."""
        return len(self._placements)

    @property
    def is_empty(self) -> bool:
        return self.occupied == 0

    def has_room_for(self, incoming: int) -> bool:
        """Whether ``incoming`` more blocks fit without exceeding the capacity."""
        return self.occupied + incoming <= self.capacity

    def contains(self, logical_id: int) -> bool:
        """Whether the level holds (a copy of) ``logical_id``."""
        return logical_id in self._placements

    def slot_of(self, logical_id: int) -> int | None:
        """Device slot (relative to the partition) of ``logical_id``."""
        local = self._placements.get(logical_id)
        if local is None:
            return None
        return self.first_slot + local

    def logical_ids(self) -> set[int]:
        """Logical ids of all blocks in the level."""
        return set(self._placements)

    def slot_range(self) -> range:
        """Device slots (relative to the partition) spanned by this level."""
        return range(self.first_slot, self.first_slot + self.capacity)

    def install(self, placements: dict[int, int], new_key: bytes) -> None:
        """Replace the level contents after a shuffle.

        ``placements`` maps logical id → local slot (0-based within the
        level).  The hash index is rebuilt with a fresh salt and the
        level key is replaced, as the paper requires after a re-order.
        """
        if len(placements) > self.capacity:
            raise LevelFullError(
                f"level {self.number} holds {self.capacity} blocks, got {len(placements)}"
            )
        for slot in placements.values():
            if not 0 <= slot < self.capacity:
                raise LevelFullError(
                    f"slot {slot} outside level {self.number} of capacity {self.capacity}"
                )
        self._placements = dict(placements)
        self.key = new_key
        self.index.rebuild(placements)
        self.shuffles += 1

    def clear(self) -> None:
        """Empty the level after it has been dumped into the next one."""
        self._placements = {}
        self.index.clear()
