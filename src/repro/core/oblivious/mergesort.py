"""External merge sort cost model for level re-ordering.

Section 5.1.2: "For re-ordering a particular level, we should be able to
re-order it to a random permutation in a concealed way. ... Here, we
apply the external merge sort algorithm."  Section 6.3 notes that the
sorting I/Os are mostly *sequential*, which is why sorting is the larger
share of I/O operations but the smaller share of time in Figure 12(b).

The shuffle itself is performed in memory by the store (the permutation
is what matters functionally); this module computes how many sequential
passes an external merge sort would need so the store can charge the
corresponding device I/O.
"""

from __future__ import annotations

import math


def external_merge_sort_passes(num_blocks: int, buffer_blocks: int) -> int:
    """Number of read+write passes an external merge sort needs.

    One pass forms sorted runs of ``buffer_blocks`` blocks; each
    subsequent pass merges up to ``buffer_blocks - 1`` runs.  A dataset
    that already fits in the buffer still needs one pass (read it in,
    permute, write it out).
    """
    if num_blocks <= 0:
        return 0
    if buffer_blocks <= 1:
        raise ValueError("merge sort needs a buffer of at least 2 blocks")
    if num_blocks <= buffer_blocks:
        return 1
    runs = math.ceil(num_blocks / buffer_blocks)
    fan_in = max(2, buffer_blocks - 1)
    merge_passes = math.ceil(math.log(runs, fan_in))
    return 1 + merge_passes


def merge_sort_io_count(num_blocks: int, buffer_blocks: int) -> int:
    """Total device operations (reads + writes) of the external merge sort."""
    return 2 * num_blocks * external_merge_sort_passes(num_blocks, buffer_blocks)
