"""The hierarchical oblivious store (Figures 7 and 8(b)).

The store is a cache of StegFS blocks laid out on its own partition.
Reads probe one slot in every level; the buffer spills into level 1,
full levels dump into the next one, and every dump re-shuffles the
receiving level to a fresh random permutation under a fresh key.

Implementation notes
--------------------
* Every probe, dump and shuffle performs real device I/O, so the trace
  and the latency accounting faithfully reflect what an attacker (and
  the Figure 12 experiments) would observe.
* For simplicity the store also keeps a plaintext shadow copy of every
  cached payload in agent memory; this stands in for the decrypt-while-
  merging that a real implementation would do during the sort passes
  and does not change the observable I/O.
* The external merge sort is charged as sequential read+write passes
  over the level's slot range (see :mod:`repro.core.oblivious.mergesort`);
  the paper uses a separate scratch partition, we sort "in place", which
  leaves the pass count and the sequential nature of the I/O intact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.oblivious.cost import oblivious_height
from repro.core.oblivious.level import Level
from repro.core.oblivious.mergesort import external_merge_sort_passes
from repro.crypto.cipher import FastFieldCipher, FieldCipher
from repro.crypto.prng import Sha256Prng
from repro.errors import BlockNotCachedError, ObliviousStorageError
from repro.storage.block import BLOCK_IV_SIZE, StoredBlock, data_field_size
from repro.storage.device import BlockDevice


@dataclass(frozen=True)
class ObliviousStoreConfig:
    """Size parameters of the oblivious store.

    Attributes
    ----------
    buffer_blocks:
        Size of the agent's in-memory buffer, in blocks (``B``).
    last_level_blocks:
        Size of the last level (``N``); must be at least ``2 B``.
    charge_sort_io:
        When True (default) level re-orders perform the external merge
        sort passes on the device; tests that only care about the
        functional behaviour can switch the charging off.
    """

    buffer_blocks: int
    last_level_blocks: int
    charge_sort_io: bool = True

    def __post_init__(self) -> None:
        if self.buffer_blocks <= 1:
            raise ValueError("buffer must hold at least 2 blocks")
        if self.last_level_blocks < 2 * self.buffer_blocks:
            raise ValueError("the last level must be at least twice the buffer")


@dataclass
class ObliviousStoreStats:
    """I/O and timing accounting split into retrieval and sorting phases."""

    retrieval_reads: int = 0
    retrieval_writes: int = 0
    sort_reads: int = 0
    sort_writes: int = 0
    retrieval_time_ms: float = 0.0
    sort_time_ms: float = 0.0
    requests: int = 0
    buffer_hits: int = 0
    evictions: int = 0
    shuffles: int = 0

    @property
    def total_ops(self) -> int:
        return self.retrieval_reads + self.retrieval_writes + self.sort_reads + self.sort_writes

    @property
    def total_time_ms(self) -> float:
        return self.retrieval_time_ms + self.sort_time_ms

    @property
    def sort_io_fraction(self) -> float:
        """Fraction of device operations spent sorting."""
        return (self.sort_reads + self.sort_writes) / self.total_ops if self.total_ops else 0.0

    @property
    def sort_time_fraction(self) -> float:
        """Fraction of access time spent sorting (the Figure 12(b) series)."""
        return self.sort_time_ms / self.total_time_ms if self.total_time_ms else 0.0


class ObliviousStore:
    """Hierarchical oblivious cache over one partition of the raw storage."""

    def __init__(
        self,
        device: BlockDevice,
        config: ObliviousStoreConfig,
        prng: Sha256Prng,
        cipher_factory=FastFieldCipher,
    ):
        self.device = device
        self.config = config
        self._prng = prng.spawn("oblivious")
        self._cipher_factory = cipher_factory
        self._ciphers: dict[bytes, FieldCipher] = {}
        self.stats = ObliviousStoreStats()

        self.height = oblivious_height(config.last_level_blocks, config.buffer_blocks)
        self.levels: list[Level] = []
        first_slot = 0
        for number in range(1, self.height + 1):
            capacity = (2**number) * config.buffer_blocks
            self.levels.append(Level.create(number, capacity, first_slot, self._prng))
            first_slot += capacity
        if first_slot > device.num_blocks:
            raise ObliviousStorageError(
                f"the hierarchy needs {first_slot} blocks but the partition has "
                f"{device.num_blocks}"
            )

        self._buffer: dict[int, bytes] = {}
        self._payloads: dict[int, bytes] = {}
        self._storage = getattr(device, "storage", None)

    # -- small helpers --------------------------------------------------------------

    @property
    def payload_bytes(self) -> int:
        """Plaintext bytes cached per block (the device block minus the IV)."""
        return data_field_size(self.device.block_size)

    def _cipher(self, key: bytes) -> FieldCipher:
        cipher = self._ciphers.get(key)
        if cipher is None:
            cipher = self._cipher_factory(key)
            self._ciphers[key] = cipher
        return cipher

    def _clock(self) -> float:
        return self._storage.clock_ms if self._storage is not None else 0.0

    def _pad(self, payload: bytes) -> bytes:
        if len(payload) > self.payload_bytes:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds the cacheable {self.payload_bytes}"
            )
        return payload + b"\x00" * (self.payload_bytes - len(payload))

    def _read_slot(self, level: Level, slot: int, stream: str, phase: str) -> bytes:
        started = self._clock()
        raw = self.device.read_block(slot, stream)
        elapsed = self._clock() - started
        if phase == "sort":
            self.stats.sort_reads += 1
            self.stats.sort_time_ms += elapsed
        else:
            self.stats.retrieval_reads += 1
            self.stats.retrieval_time_ms += elapsed
        return raw

    def _write_slot(self, slot: int, data: bytes, stream: str, phase: str) -> None:
        started = self._clock()
        self.device.write_block(slot, data, stream)
        elapsed = self._clock() - started
        if phase == "sort":
            self.stats.sort_writes += 1
            self.stats.sort_time_ms += elapsed
        else:
            self.stats.retrieval_writes += 1
            self.stats.retrieval_time_ms += elapsed

    # -- membership -----------------------------------------------------------------

    def contains(self, logical_id: int) -> bool:
        """Whether the store currently caches ``logical_id``."""
        return logical_id in self._payloads or logical_id in self._buffer

    def cached_ids(self) -> set[int]:
        """Logical ids of everything currently cached (buffer included)."""
        return set(self._payloads) | set(self._buffer)

    def cached_count(self) -> int:
        """Number of distinct cached blocks (the paper's ``sizeof(S)``)."""
        return len(self.cached_ids())

    # -- the Figure 8(b) read -----------------------------------------------------------

    def read(self, logical_id: int, stream: str = "oblivious") -> bytes:
        """Read a cached block through the oblivious probe sequence."""
        self.stats.requests += 1
        if logical_id in self._buffer:
            self.stats.buffer_hits += 1
            return self._buffer[logical_id]

        found: bytes | None = None
        for level in self.levels:
            slot = level.slot_of(logical_id) if found is None else None
            if slot is not None:
                raw = self._read_slot(level, slot, stream, "retrieval")
                payload = StoredBlock.from_raw(raw).open(self._cipher(level.key))
                found = payload
            else:
                self._probe_random(level, stream)

        if found is None:
            raise BlockNotCachedError(f"block {logical_id} is not in the oblivious store")
        self._add_to_buffer(logical_id, found, stream)
        return found

    def write(self, logical_id: int, payload: bytes, stream: str = "oblivious") -> None:
        """Update a cached block; observationally identical to a read.

        Exactly like :meth:`read`, every level is probed once: the level
        holding the block gets the real probe, every other level gets a
        random one.  Stopping at the hit (as an earlier version did)
        would make writes distinguishable from reads by their per-level
        probe counts, breaking the paper's security argument.
        """
        self.stats.requests += 1
        if logical_id not in self._buffer:
            found = False
            for level in self.levels:
                slot = level.slot_of(logical_id) if not found else None
                if slot is not None:
                    self._read_slot(level, slot, stream, "retrieval")
                    found = True
                else:
                    self._probe_random(level, stream)
        self._add_to_buffer(logical_id, self._pad(payload), stream)

    def insert(self, logical_id: int, payload: bytes, stream: str = "oblivious") -> None:
        """Copy a block read from the StegFS partition into the cache."""
        self._add_to_buffer(logical_id, self._pad(payload), stream)

    def dummy_read(self, stream: str = "oblivious") -> None:
        """Probe one random slot in every level, exactly like a real read."""
        self.stats.requests += 1
        for level in self.levels:
            self._probe_random(level, stream)

    def _probe_random(self, level: Level, stream: str) -> None:
        """Dummy probe: read one uniformly random slot of a non-empty level."""
        if level.is_empty and level.shuffles == 0:
            return
        slot = level.first_slot + self._prng.randrange(level.capacity)
        self._read_slot(level, slot, stream, "retrieval")

    # -- buffer and dumping --------------------------------------------------------------

    def _add_to_buffer(self, logical_id: int, payload: bytes, stream: str) -> None:
        self._buffer[logical_id] = payload
        self._payloads[logical_id] = payload
        if len(self._buffer) >= self.config.buffer_blocks:
            self._flush_buffer(stream)

    def _level_entries(self, level: Level) -> dict[int, bytes]:
        return {lid: self._payloads[lid] for lid in level.logical_ids()}

    def _flush_buffer(self, stream: str) -> None:
        """Spill the buffer into level 1, dumping level 1 first if needed."""
        incoming = dict(self._buffer)
        level1 = self.levels[0]
        new_ids = set(incoming) - level1.logical_ids()
        if not level1.has_room_for(len(new_ids)):
            self._dump(1, stream)
        merged = self._level_entries(level1)
        merged.update(incoming)
        self._shuffle_into_level(level1, merged, stream)
        self._buffer.clear()

    def _dump(self, number: int, stream: str) -> None:
        """Dump level ``number`` into the next level (Figure 8(b) ``dump``)."""
        level = self.levels[number - 1]
        if number == self.height:
            # The last level has nowhere to go: re-shuffle it in place.
            self._shuffle_into_level(level, self._level_entries(level), stream)
            return
        next_level = self.levels[number]
        incoming = self._level_entries(level)
        new_ids = set(incoming) - next_level.logical_ids()
        if not next_level.has_room_for(len(new_ids)):
            self._dump(number + 1, stream)
        merged = self._level_entries(next_level)
        merged.update(incoming)
        if len(merged) > next_level.capacity:
            merged = self._evict(merged, next_level.capacity, keep=set(incoming))
        self._shuffle_into_level(next_level, merged, stream)
        level.clear()

    def _evict(self, entries: dict[int, bytes], capacity: int, keep: set[int]) -> dict[int, bytes]:
        """Drop clean copies when the last level overflows.

        The dropped blocks still live in the StegFS partition, so evicting
        them only means a future read will re-copy them in.
        """
        excess = len(entries) - capacity
        droppable = sorted(lid for lid in entries if lid not in keep)
        for lid in droppable[:excess]:
            del entries[lid]
            self._payloads.pop(lid, None)
            self.stats.evictions += 1
        if len(entries) > capacity:
            raise ObliviousStorageError(
                "the last level cannot hold the working set; enlarge last_level_blocks"
            )
        return entries

    # -- shuffling ----------------------------------------------------------------------------

    def _shuffle_into_level(self, level: Level, entries: dict[int, bytes], stream: str) -> None:
        """Re-order a level to a fresh random permutation under a fresh key."""
        if len(entries) > level.capacity:
            raise ObliviousStorageError(
                f"level {level.number} of capacity {level.capacity} "
                f"cannot hold {len(entries)} blocks"
            )
        new_key = self._prng.random_bytes(32)
        cipher = self._cipher(new_key)
        permutation = self._prng.permutation(level.capacity)
        placements: dict[int, int] = {}
        for position, logical_id in enumerate(sorted(entries)):
            placements[logical_id] = permutation[position]
        occupied_slots = {slot: lid for lid, slot in placements.items()}

        # Sorting I/O is tagged with its own stream so analyses can separate
        # the (request-independent) re-order traffic from the probe traffic.
        sort_stream = f"{stream}-sort"
        if self.config.charge_sort_io:
            passes = external_merge_sort_passes(level.capacity, self.config.buffer_blocks)
            slots = list(level.slot_range())
            # Pre-seal the final level contents.  The PRNG draws happen in
            # slot order — dummy payload then IV — exactly as the per-slot
            # loop drew them, so the written bytes are unchanged; the
            # encryption itself runs through one batched encrypt_many.
            payloads = []
            ivs = []
            for local_slot in range(level.capacity):
                logical_id = occupied_slots.get(local_slot)
                if logical_id is not None:
                    payloads.append(entries[logical_id])
                else:
                    payloads.append(self._prng.random_bytes(self.payload_bytes))
                ivs.append(self._prng.random_bytes(BLOCK_IV_SIZE))
            ciphertexts = cipher.encrypt_many(ivs, payloads)
            datas = [iv + ciphertext for iv, ciphertext in zip(ivs, ciphertexts, strict=True)]

            read_write_blocks = getattr(self.device, "read_write_blocks", None)
            for pass_number in range(passes):
                final = pass_number == passes - 1
                if read_write_blocks is not None:
                    # One batched device call per pass; non-final passes
                    # rewrite each slot with its current bytes, the final
                    # pass installs the freshly sealed permutation.  The
                    # per-slot read/write interleaving (and therefore the
                    # trace and the sequential-I/O cost) is identical to
                    # the loop below.
                    started = self._clock()
                    read_write_blocks(slots, datas if final else None, sort_stream)
                    elapsed = self._clock() - started
                    self.stats.sort_reads += len(slots)
                    self.stats.sort_writes += len(slots)
                    self.stats.sort_time_ms += elapsed
                else:
                    for local_slot, slot in enumerate(slots):
                        raw = self._read_slot(level, slot, sort_stream, "sort")
                        if final:
                            raw = datas[local_slot]
                        self._write_slot(slot, raw, sort_stream, "sort")
        else:
            items = list(placements.items())
            ivs = [self._prng.random_bytes(BLOCK_IV_SIZE) for _ in items]
            ciphertexts = cipher.encrypt_many(ivs, [entries[lid] for lid, _ in items])
            indices = [level.first_slot + local_slot for _, local_slot in items]
            datas = [iv + ciphertext for iv, ciphertext in zip(ivs, ciphertexts, strict=True)]
            write_blocks = getattr(self.device, "write_blocks", None)
            if write_blocks is not None and indices:
                started = self._clock()
                write_blocks(indices, datas, sort_stream)
                elapsed = self._clock() - started
                self.stats.sort_writes += len(indices)
                self.stats.sort_time_ms += elapsed
            else:
                for index, data in zip(indices, datas, strict=True):
                    self._write_slot(index, data, sort_stream, "sort")

        level.install(placements, new_key)
        self.stats.shuffles += 1
