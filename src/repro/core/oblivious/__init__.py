"""Oblivious storage: the traffic-analysis countermeasure (Section 5).

The oblivious storage is a hierarchy of levels carved out of the raw
storage (Figure 7).  Level 1 is twice the agent's buffer; every level
doubles until the last level can hold all cacheable blocks.  A read
touches one block in *every* level (the real one where it is found,
random ones elsewhere), and full levels are periodically dumped into the
next level and re-shuffled with an external merge sort, so no slot is
read twice between shuffles and the observable access pattern is
independent of the requests (Figure 8).
"""

from repro.core.oblivious.cost import (
    ObliviousCostModel,
    oblivious_height,
    overhead_factor,
    retrieval_overhead,
    sorting_overhead,
)
from repro.core.oblivious.hashindex import LevelHashIndex
from repro.core.oblivious.level import Level
from repro.core.oblivious.mergesort import external_merge_sort_passes
from repro.core.oblivious.reader import ObliviousReader
from repro.core.oblivious.store import ObliviousStore, ObliviousStoreConfig, ObliviousStoreStats

__all__ = [
    "ObliviousCostModel",
    "oblivious_height",
    "overhead_factor",
    "retrieval_overhead",
    "sorting_overhead",
    "LevelHashIndex",
    "Level",
    "external_merge_sort_passes",
    "ObliviousReader",
    "ObliviousStore",
    "ObliviousStoreConfig",
    "ObliviousStoreStats",
]
