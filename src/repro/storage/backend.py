"""Pluggable block backends: who owns the volume's bytes.

:class:`~repro.storage.disk.RawStorage` is split into two halves.  The
*accounting* half (latency model, I/O counters, columnar trace) stays in
``RawStorage``; the *bytes* live behind the :class:`BlockBackend`
protocol defined here, with two implementations:

* :class:`MemoryBackend` — the historical behaviour: a numpy-viewed
  ``bytearray`` that dies with the process.  This is the default and is
  bit-identical to the pre-split ``RawStorage`` (same data movement,
  same ``fill_random`` stream).
* :class:`MmapFileBackend` — a single flat file of
  ``num_blocks * block_size`` bytes, memory-mapped.  This makes the
  paper's threat model literal: the volume file *is* the seized disk
  (nothing but encrypted blocks and random bytes is ever written to it),
  and it survives process restarts so an owner can come back later and
  recover the hidden files from a keyring
  (:meth:`repro.service.HiddenVolumeService.open`).

The backend is deliberately dumb: no latency, no counters, no trace.
Every accounted access still goes through ``RawStorage``; the backend
only moves bytes.
"""

from __future__ import annotations

import mmap
import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import BackendClosedError, InjectedCrashError, VolumeFileError

if TYPE_CHECKING:
    from repro.storage.disk import StorageGeometry


@runtime_checkable
class BlockBackend(Protocol):
    """Minimal byte-owner interface ``RawStorage`` accounts on top of.

    Implementations hold exactly ``num_blocks * block_size`` bytes and
    move them without charging latency or recording traces — that is the
    storage layer's job.  ``read_many``/``write_many`` must be
    observationally identical to loops of ``read``/``write`` (last
    writer wins on duplicate indices).
    """

    @property
    def block_size(self) -> int:
        """Bytes per block."""

    @property
    def num_blocks(self) -> int:
        """Number of addressable blocks."""

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""

    def read(self, index: int) -> bytes:
        """Raw bytes of one block."""

    def write(self, index: int, data: bytes) -> None:
        """Overwrite one block."""

    def read_many(self, indices: np.ndarray) -> list[bytes]:
        """Raw bytes of many blocks, in order."""

    def write_many(self, indices: np.ndarray, datas: Sequence[bytes]) -> None:
        """Overwrite many blocks (duplicate indices: last writer wins)."""

    def fill_random(self, seed: int = 0) -> None:
        """Fill the whole volume with pseudo-random bytes (formatting)."""

    def raw_bytes(self) -> bytes:
        """An independent copy of the whole volume."""

    def flush(self) -> None:
        """Push pending bytes to durable storage (no-op for memory)."""

    def close(self) -> None:
        """Release the bytes; every later access raises ``BackendClosedError``."""


class _ArrayBackend:
    """Shared numpy data movement for backends exposing a (blocks, bytes) view.

    Subclasses set ``self._view`` to a writable ``(num_blocks,
    block_size)`` uint8 array; the movement code here is lifted verbatim
    from the pre-split ``RawStorage`` so the bytes produced (including
    the ``fill_random`` stream) are bit-identical.
    """

    _view: np.ndarray | None

    def __init__(self, block_size: int, num_blocks: int):
        if block_size <= 0 or num_blocks <= 0:
            raise ValueError("block_size and num_blocks must be positive")
        self._block_size = block_size
        self._num_blocks = num_blocks
        self._view = None

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def closed(self) -> bool:
        return self._view is None

    def _blocks(self) -> np.ndarray:
        if self._view is None:
            raise BackendClosedError(f"{type(self).__name__} is closed")
        return self._view

    def read(self, index: int) -> bytes:
        return self._blocks()[index].tobytes()

    def write(self, index: int, data: bytes) -> None:
        self._blocks()[index] = np.frombuffer(data, dtype=np.uint8)

    def read_many(self, indices: np.ndarray) -> list[bytes]:
        block_size = self._block_size
        flat = self._blocks()[indices].tobytes()
        return [flat[i * block_size : (i + 1) * block_size] for i in range(indices.size)]

    def write_many(self, indices: np.ndarray, datas: Sequence[bytes]) -> None:
        view = self._blocks()
        rows = np.frombuffer(b"".join(datas), dtype=np.uint8).reshape(
            indices.size, self._block_size
        )
        if np.unique(indices).size == indices.size:
            view[indices] = rows
        else:
            # Duplicate targets: apply in order so the last writer wins,
            # exactly as the single-block loop would.
            for row, index in enumerate(indices.tolist()):
                view[index] = rows[row]

    def fill_random(self, seed: int = 0) -> None:
        # repro-lint: ignore[ENT001] -- seeded, deterministic volume formatting; not a crypto path
        rng = np.random.default_rng(seed)
        flat = self._blocks().reshape(-1)
        flat[:] = rng.integers(0, 256, size=flat.size, dtype=np.uint8)

    def raw_bytes(self) -> bytes:
        return self._blocks().tobytes()

    def flush(self) -> None:
        self._blocks()

    def close(self) -> None:
        self._view = None


class MemoryBackend(_ArrayBackend):
    """The historical in-memory volume: fast, volatile, default."""

    def __init__(self, block_size: int, num_blocks: int):
        super().__init__(block_size, num_blocks)
        self._view = np.zeros((num_blocks, block_size), dtype=np.uint8)

    @classmethod
    def for_geometry(cls, geometry: "StorageGeometry") -> "MemoryBackend":
        """Build a backend matching a :class:`~repro.storage.disk.StorageGeometry`."""
        return cls(geometry.block_size, geometry.num_blocks)


class MmapFileBackend(_ArrayBackend):
    """A durable volume: one flat memory-mapped file of raw blocks.

    The file contains *only* the ``num_blocks * block_size`` block bytes
    — no magic, no superblock, no allocation table.  Geometry, the
    service seed and the users' key rings are credentials the owner
    keeps elsewhere; an adversary seizing the file sees nothing but
    random-looking bytes (``tests/test_seized_disk.py`` pins this).

    Use :meth:`create` to format a new volume file and :meth:`open` to
    map an existing one; :meth:`flush` forces the dirty pages out and
    :meth:`close` unmaps (flushing first).
    """

    def __init__(self, path: str | os.PathLike, block_size: int, num_blocks: int, *, _fd: int):
        super().__init__(block_size, num_blocks)
        self._path = os.fspath(path)
        try:
            self._file = os.fdopen(_fd, "r+b")
        except BaseException:
            os.close(_fd)
            raise
        try:
            self._mmap = mmap.mmap(self._file.fileno(), block_size * num_blocks)
        except BaseException:
            self._file.close()
            raise
        self._view = np.frombuffer(self._mmap, dtype=np.uint8).reshape(num_blocks, block_size)

    @property
    def path(self) -> str:
        """Filesystem location of the volume file."""
        return self._path

    @classmethod
    def create(
        cls, path: str | os.PathLike, block_size: int, num_blocks: int
    ) -> "MmapFileBackend":
        """Format a new volume file of exactly ``num_blocks * block_size`` bytes.

        Refuses to clobber an existing file (``FileExistsError``): a
        volume file is indistinguishable from random bytes, so silently
        truncating one would destroy hidden data without any way to
        notice.  The fresh file is zero-filled; formatting it to random
        bytes is the caller's job (``RawStorage.fill_random``, which the
        service's create path always performs).
        """
        if block_size <= 0 or num_blocks <= 0:
            raise ValueError("block_size and num_blocks must be positive")
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        try:
            os.ftruncate(fd, block_size * num_blocks)
        except BaseException:
            os.close(fd)
            os.unlink(path)
            raise
        try:
            # The constructor owns (and on failure closes) the fd from
            # here on; a half-formatted file must not survive, or a
            # retry would hit the clobber guard above for a file that
            # holds no volume.
            return cls(path, block_size, num_blocks, _fd=fd)
        except BaseException:
            os.unlink(path)
            raise

    @classmethod
    def open(cls, path: str | os.PathLike, block_size: int = 4096) -> "MmapFileBackend":
        """Map an existing volume file, inferring the block count from its size.

        The file carries no metadata, so the block size is part of the
        owner's credentials; a file whose size is not a positive
        multiple of ``block_size`` cannot be a volume formatted with it
        (:class:`~repro.errors.VolumeFileError`).
        """
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        fd = os.open(path, os.O_RDWR)
        try:
            size = os.fstat(fd).st_size
            if size == 0 or size % block_size != 0:
                raise VolumeFileError(
                    f"{os.fspath(path)!r} is {size} bytes, not a positive multiple "
                    f"of the {block_size}-byte block size"
                )
        except BaseException:
            os.close(fd)
            raise
        return cls(path, block_size, size // block_size, _fd=fd)

    def flush(self) -> None:
        self._blocks()
        self._mmap.flush()

    def close(self) -> None:
        if self._view is None:
            return
        # The numpy view exports the mmap's buffer; drop it first or
        # mmap.close() raises BufferError.  It also marks the backend
        # closed immediately, so a flush failure (ENOSPC, EIO) still
        # leaves close() idempotent: the mapping and the fd are released
        # either way and only the original error surfaces.
        self._view = None
        try:
            self._mmap.flush()
        finally:
            try:
                self._mmap.close()
            finally:
                self._file.close()


@dataclass(frozen=True)
class TornWrite:
    """How to tear the block write hit by an injected crash.

    ``block_offset`` picks which block of the batched write gets torn
    (earlier blocks land whole, later ones not at all — a sequential
    device dies mid-batch).  The torn block keeps the first
    ``keep_bytes`` of the new data (``None`` → half a block); the tail
    is the *old* tail, bit-flipped when ``flip_tail`` is set — the
    classic corrupt-sector shape where neither the old nor the new
    bytes survive intact.
    """

    block_offset: int = 0
    keep_bytes: int | None = None
    flip_tail: bool = True


class FaultInjectingBackend:
    """Kill execution at a chosen device call; optionally tear that write.

    Wraps any :class:`BlockBackend` and counts every ``read``/``write``/
    ``read_many``/``write_many`` invocation (one *device call* each —
    the unit a crash can fall between).  :meth:`arm` resets the counter
    and schedules a crash at call index ``crash_at``; the doomed call
    raises :class:`~repro.errors.InjectedCrashError` before touching
    the device, except that an armed :class:`TornWrite` lets a write
    call apply a deterministic partial batch first.  After the crash
    the backend plays dead: further block I/O raises again, while the
    forensic surface (``raw_bytes``/``flush``/``close``) keeps working
    so tests can image the "seized" device.

    Everything is deterministic — same workload, same ``crash_at``,
    same bytes — which is what lets hypothesis sweep every crash point
    of a plan.
    """

    def __init__(self, inner: BlockBackend):
        self.inner = inner
        self._state_lock = threading.Lock()
        self.calls = 0
        self.crashed = False
        self._crash_at: int | None = None
        self._torn: TornWrite | None = None

    def arm(self, crash_at: int, torn: TornWrite | None = None) -> None:
        """Schedule a crash at device-call index ``crash_at`` from now."""
        if crash_at < 0:
            raise ValueError(f"crash_at must be >= 0, got {crash_at}")
        with self._state_lock:
            self.calls = 0
            self.crashed = False
            self._crash_at = crash_at
            self._torn = torn

    def disarm(self) -> None:
        """Cancel any scheduled crash (the counter keeps running)."""
        with self._state_lock:
            self._crash_at = None
            self._torn = None

    @property
    def block_size(self) -> int:
        return self.inner.block_size

    @property
    def num_blocks(self) -> int:
        return self.inner.num_blocks

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def _tick(self) -> bool:
        """Count one device call; return True when it is the doomed one."""
        with self._state_lock:
            if self.crashed:
                raise InjectedCrashError(
                    "backend crashed; the dead process issues no further I/O"
                )
            call, self.calls = self.calls, self.calls + 1
            if self._crash_at is not None and call == self._crash_at:
                self.crashed = True
                return True
            return False

    def _crash(self) -> InjectedCrashError:
        return InjectedCrashError(f"injected crash at device call {self.calls - 1}")

    def _tear(self, index: int, data: bytes, torn: TornWrite) -> bytes:
        old = self.inner.read(index)
        keep = len(data) // 2 if torn.keep_bytes is None else torn.keep_bytes
        keep = max(0, min(keep, len(data)))
        tail = old[keep:]
        if torn.flip_tail:
            tail = bytes(byte ^ 0xFF for byte in tail)
        return data[:keep] + tail

    def read(self, index: int) -> bytes:
        if self._tick():
            raise self._crash()
        return self.inner.read(index)

    def read_many(self, indices: np.ndarray) -> list[bytes]:
        if self._tick():
            raise self._crash()
        return self.inner.read_many(indices)

    def write(self, index: int, data: bytes) -> None:
        if self._tick():
            if self._torn is not None:
                self.inner.write(index, self._tear(index, data, self._torn))
            raise self._crash()
        self.inner.write(index, data)

    def write_many(self, indices: np.ndarray, datas: Sequence[bytes]) -> None:
        if self._tick():
            torn = self._torn
            if torn is not None and len(datas) > 0:
                cut = min(torn.block_offset, len(datas) - 1)
                for position in range(cut):
                    self.inner.write(int(indices[position]), datas[position])
                self.inner.write(int(indices[cut]), self._tear(int(indices[cut]), datas[cut], torn))
            raise self._crash()
        self.inner.write_many(indices, datas)

    def fill_random(self, seed: int = 0) -> None:
        self.inner.fill_random(seed)

    def raw_bytes(self) -> bytes:
        return self.inner.raw_bytes()

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()
