"""I/O traces: the observable the traffic-analysis attacker works from.

Section 3.2.2 of the paper: the second group of attackers "are able to
observe the I/O requests between the agent and the storage, either from
the activity log or by trapping requests directly at runtime".  An
:class:`IoTrace` is exactly that activity log — a sequence of
(operation, block index, stream, timestamp) events with no plaintext and
no knowledge of the agent's internal state.

The log is stored **columnar**: growable parallel numpy arrays for the
operation code, block index and timestamp, plus an interned stream-id
table.  Every query the attackers and figures run (`indices`,
`index_histogram`, `between`, `slice_by_stream`, ...) touches arrays,
not per-event Python objects, so million-event traces analyse in
milliseconds.  :class:`IoEvent` objects are materialised lazily — the
``events`` view, iteration and ``reads()``/``writes()`` build them on
demand — so existing per-event callers keep working unchanged.

Invariants (see EXPERIMENTS.md "Observability contract"):

* the trace is append-only; events are stored in arrival order;
* traces produced by the device layer are time-ordered (the simulated
  clock never runs backwards), which lets ``between`` binary-search;
  hand-built traces may be unordered and fall back to a mask scan with
  identical results;
* single-block and batched device paths append identical events;
* appends are serialized behind an internal lock and publish the new
  size *after* the rows are written, so an observer capturing from
  another thread (``TraceObserver`` under the concurrent engine) sees
  a consistent prefix of the trace — never a torn row.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Literal, Sequence

import numpy as np

Operation = Literal["read", "write"]

#: Column codes for the two operations; ``op_column()`` yields these.
OP_READ = 0
OP_WRITE = 1

_OP_CODES = {"read": OP_READ, "write": OP_WRITE}
_OP_NAMES = ("read", "write")

_INITIAL_CAPACITY = 1024


@dataclass(frozen=True)
class IoEvent:
    """One observed I/O request between the agent and the raw storage."""

    op: Operation
    index: int
    time_ms: float
    stream: str = "default"


class _EventsView(Sequence):
    """Lazy, read-only sequence of :class:`IoEvent` over a trace's columns."""

    def __init__(self, trace: "IoTrace"):
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [
                self._trace._event_at(i)
                for i in range(*item.indices(len(self._trace)))
            ]
        size = len(self._trace)
        index = item + size if item < 0 else item
        if not 0 <= index < size:
            raise IndexError(f"event {item} out of range for trace of {size} events")
        return self._trace._event_at(index)

    def __iter__(self) -> Iterator[IoEvent]:
        for i in range(len(self._trace)):
            yield self._trace._event_at(i)

    def __eq__(self, other) -> bool:
        if isinstance(other, (_EventsView, list, tuple)):
            return list(self) == list(other)
        return NotImplemented


class IoTrace:
    """An append-only columnar log of I/O events, with vectorized queries."""

    def __init__(self, events: Iterable[IoEvent] | None = None):
        self._allocate_columns(0)
        self._size = 0
        self._stream_ids: dict[str, int] = {}
        self._stream_names: list[str] = []
        self._time_sorted = True
        # Serializes mutators.  Readers deliberately take no lock: they
        # snapshot ``_size`` first and then slice the columns, and every
        # append writes its rows before publishing the grown size, so a
        # concurrent reader sees a consistent (possibly slightly stale)
        # prefix.
        self._append_lock = threading.Lock()
        if events is not None:
            self.extend(events)

    def _allocate_columns(self, capacity: int) -> None:
        self._ops = np.empty(capacity, dtype=np.uint8)
        self._indices = np.empty(capacity, dtype=np.int64)
        self._times = np.empty(capacity, dtype=np.float64)
        self._streams = np.empty(capacity, dtype=np.int32)

    # -- appending ---------------------------------------------------------------

    def _intern(self, stream: str) -> int:
        code = self._stream_ids.get(stream)
        if code is None:
            code = len(self._stream_names)
            self._stream_ids[stream] = code
            self._stream_names.append(stream)
        return code

    def _ensure_capacity(self, needed: int) -> None:
        capacity = len(self._ops)
        if needed <= capacity:
            return
        capacity = max(capacity, _INITIAL_CAPACITY)
        while capacity < needed:
            capacity *= 2
        for name in ("_ops", "_indices", "_times", "_streams"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)

    def record(self, op: Operation, index: int, time_ms: float, stream: str = "default") -> None:
        """Append one event (amortized O(1), thread-safe)."""
        with self._append_lock:
            n = self._size
            self._ensure_capacity(n + 1)
            self._ops[n] = _OP_CODES[op]
            self._indices[n] = index
            self._times[n] = time_ms
            self._streams[n] = self._intern(stream)
            if self._time_sorted and n and time_ms < self._times[n - 1]:
                self._time_sorted = False
            self._size = n + 1

    def record_many(
        self,
        op: Operation | Sequence[Operation] | np.ndarray,
        indices: Sequence[int] | np.ndarray,
        times_ms: Sequence[float] | np.ndarray,
        stream: str | Sequence[str] = "default",
    ) -> None:
        """Append a batch of events in one columnar write (thread-safe).

        ``op`` is either one operation name shared by the whole batch, a
        sequence of names, or a ready-made array of ``OP_READ``/``OP_WRITE``
        codes.  ``stream`` is one name shared by the whole batch or a
        sequence of per-event names (the concurrent engine batches
        adjacent requests of different sessions into one device call
        while keeping per-session trace attribution).  Equivalent to a
        loop of :meth:`record` over the batch, only faster.
        """
        index_column = np.asarray(indices, dtype=np.int64)
        time_column = np.asarray(times_ms, dtype=np.float64)
        count = index_column.size
        if time_column.size != count:
            raise ValueError(f"{count} indices but {time_column.size} timestamps")
        if isinstance(op, str):
            op_column: np.ndarray | int = _OP_CODES[op]
        else:
            if isinstance(op, np.ndarray):
                op_column = op
                if not np.issubdtype(op_column.dtype, np.integer):
                    raise ValueError("op codes must be an integer array")
                if op_column.size and not ((op_column >= OP_READ) & (op_column <= OP_WRITE)).all():
                    raise ValueError("op codes must be OP_READ or OP_WRITE")
            else:
                op_column = np.fromiter((_OP_CODES[o] for o in op), dtype=np.uint8, count=len(op))
            if op_column.size != count:
                raise ValueError(f"{count} indices but {op_column.size} operations")
        if not isinstance(stream, str) and len(stream) != count:
            raise ValueError(f"{count} indices but {len(stream)} streams")
        if count == 0:
            return
        with self._append_lock:
            n = self._size
            self._ensure_capacity(n + count)
            self._ops[n : n + count] = op_column
            self._indices[n : n + count] = index_column
            self._times[n : n + count] = time_column
            if isinstance(stream, str):
                self._streams[n : n + count] = self._intern(stream)
            else:
                self._streams[n : n + count] = np.fromiter(
                    (self._intern(name) for name in stream), dtype=np.int32, count=count
                )
            if self._time_sorted and (
                (n and time_column[0] < self._times[n - 1])
                or (count > 1 and np.any(np.diff(time_column) < 0))
            ):
                self._time_sorted = False
            self._size = n + count

    def extend(self, other: "IoTrace" | Iterable[IoEvent]) -> None:
        """Append events from another trace (column-wise when possible)."""
        if isinstance(other, IoTrace):
            count = other._size
            if count == 0:
                return
            with self._append_lock:
                n = self._size
                self._ensure_capacity(n + count)
                self._ops[n : n + count] = other._ops[:count]
                self._indices[n : n + count] = other._indices[:count]
                self._times[n : n + count] = other._times[:count]
                if other._stream_names:
                    remap = np.fromiter(
                        (self._intern(name) for name in other._stream_names),
                        dtype=np.int32,
                        count=len(other._stream_names),
                    )
                    self._streams[n : n + count] = remap[other._streams[:count]]
                if self._time_sorted and (
                    not other._time_sorted or (n and other._times[0] < self._times[n - 1])
                ):
                    self._time_sorted = False
                self._size = n + count
            return
        for event in other:
            self.record(event.op, event.index, event.time_ms, event.stream)

    def clear(self) -> None:
        """Drop all recorded events.

        Fresh columns are allocated rather than reused, so any column
        view handed out before the clear keeps its (frozen) contents
        instead of silently changing under the caller.
        """
        with self._append_lock:
            self._allocate_columns(0)
            self._size = 0
            self._time_sorted = True

    # -- event (row) views --------------------------------------------------------

    def _event_at(self, i: int) -> IoEvent:
        return IoEvent(
            op=_OP_NAMES[self._ops[i]],
            index=int(self._indices[i]),
            time_ms=float(self._times[i]),
            stream=self._stream_names[self._streams[i]],
        )

    @property
    def events(self) -> _EventsView:
        """Lazy sequence view materialising :class:`IoEvent` rows on demand."""
        return _EventsView(self)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[IoEvent]:
        return iter(self.events)

    def __eq__(self, other) -> bool:
        if isinstance(other, IoTrace):
            return (
                self._size == other._size
                and np.array_equal(self._ops[: self._size], other._ops[: other._size])
                and np.array_equal(self._indices[: self._size], other._indices[: other._size])
                and np.array_equal(self._times[: self._size], other._times[: other._size])
                and [self._stream_names[c] for c in self._streams[: self._size]]
                == [other._stream_names[c] for c in other._streams[: other._size]]
            )
        return NotImplemented

    # -- columnar accessors (attacker analytics consume these directly) -----------

    def _op_mask(self, op: Operation | None) -> np.ndarray | slice:
        if op is None:
            return slice(None)
        # Snapshot the size before touching the column: appends publish
        # the grown size last, so the column read afterwards is
        # guaranteed to hold at least that many committed rows.
        n = self._size
        return self._ops[:n] == _OP_CODES[op]

    def op_column(self) -> np.ndarray:
        """Operation codes (``OP_READ``/``OP_WRITE``) in arrival order."""
        return self._readonly("_ops")

    def index_column(self, op: Operation | None = None) -> np.ndarray:
        """Block indices in arrival order, optionally filtered by operation."""
        if op is None:
            return self._readonly("_indices")
        n = self._size
        mask = self._ops[:n] == _OP_CODES[op]
        return self._indices[:n][mask]

    def time_column(self) -> np.ndarray:
        """Timestamps (ms) in arrival order."""
        return self._readonly("_times")

    def stream_codes(self) -> np.ndarray:
        """Interned stream ids in arrival order (see :meth:`stream_names`)."""
        return self._readonly("_streams")

    @property
    def stream_names(self) -> list[str]:
        """Stream-id table: ``stream_names[code]`` is the stream string."""
        return list(self._stream_names)

    def _readonly(self, column_name: str) -> np.ndarray:
        # Size first, column second (see _op_mask for why).
        n = self._size
        view = getattr(self, column_name)[:n]
        view.flags.writeable = False
        return view

    @classmethod
    def _from_columns(
        cls,
        ops: np.ndarray,
        indices: np.ndarray,
        times: np.ndarray,
        streams: np.ndarray,
        stream_names: list[str],
    ) -> "IoTrace":
        trace = cls()
        count = len(ops)
        # Exact-size columns with no doubling headroom (selections are
        # often small or empty; appends grow normally later).  asarray
        # keeps slice views without copying — safe, because appends to
        # either trace reallocate before ever writing shared positions.
        trace._ops = np.asarray(ops, dtype=np.uint8)
        trace._indices = np.asarray(indices, dtype=np.int64)
        trace._times = np.asarray(times, dtype=np.float64)
        trace._streams = np.asarray(streams, dtype=np.int32)
        trace._stream_names = list(stream_names)
        trace._stream_ids = {name: code for code, name in enumerate(stream_names)}
        trace._size = count
        trace._time_sorted = count < 2 or bool(np.all(np.diff(times) >= 0))
        return trace

    def _select(self, selection: np.ndarray | slice, n: int | None = None) -> "IoTrace":
        # ``n`` pins the prefix a boolean mask was built against; without
        # it, a concurrent append between building the mask and slicing
        # would make the lengths disagree.
        if n is None:
            n = self._size
        return IoTrace._from_columns(
            self._ops[:n][selection],
            self._indices[:n][selection],
            self._times[:n][selection],
            self._streams[:n][selection],
            self._stream_names,
        )

    # -- queries used by attackers and analysis --------------------------------

    def reads(self) -> list[IoEvent]:
        """All read events in order."""
        return [self._event_at(i) for i in np.flatnonzero(self._op_mask("read"))]

    def writes(self) -> list[IoEvent]:
        """All write events in order."""
        return [self._event_at(i) for i in np.flatnonzero(self._op_mask("write"))]

    def indices(self, op: Operation | None = None) -> list[int]:
        """Block indices touched, optionally filtered by operation."""
        return self.index_column(op).tolist()

    def index_histogram(self, op: Operation | None = None) -> Counter:
        """How many times each block index was touched."""
        touched = self.index_column(op)
        if touched.size == 0:
            return Counter()
        # bincount allocates max(index)+1 slots — only worth it when the
        # index range is comparable to the event count (the device case).
        # Sparse or negative hand-built indices go through unique instead.
        if touched.min() >= 0 and touched.max() <= 4 * touched.size + 1024:
            counts = np.bincount(touched)
            hot = np.flatnonzero(counts)
            return Counter(dict(zip(hot.tolist(), counts[hot].tolist(), strict=True)))
        values, counts = np.unique(touched, return_counts=True)
        return Counter(dict(zip(values.tolist(), counts.tolist(), strict=True)))

    def touched_blocks(self, op: Operation | None = None) -> set[int]:
        """The set of distinct block indices touched."""
        return set(np.unique(self.index_column(op)).tolist())

    def slice_by_stream(self, stream: str) -> "IoTrace":
        """Events belonging to one request stream."""
        code = self._stream_ids.get(stream)
        if code is None:
            return IoTrace()
        n = self._size
        return self._select(self._streams[:n] == code, n)

    def between(self, start_ms: float, end_ms: float) -> "IoTrace":
        """Events with timestamps in [start_ms, end_ms)."""
        n = self._size
        times = self._times[:n]
        if self._time_sorted:
            lo = int(np.searchsorted(times, start_ms, side="left"))
            hi = int(np.searchsorted(times, end_ms, side="left"))
            return self._select(slice(lo, max(lo, hi)), n)
        return self._select((times >= start_ms) & (times < end_ms), n)

    def since(self, mark: int) -> "IoTrace":
        """Events recorded at positions ``mark`` onwards (observer windows)."""
        return self._select(slice(max(0, mark), self._size))
