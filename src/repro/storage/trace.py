"""I/O traces: the observable the traffic-analysis attacker works from.

Section 3.2.2 of the paper: the second group of attackers "are able to
observe the I/O requests between the agent and the storage, either from
the activity log or by trapping requests directly at runtime".  An
:class:`IoTrace` is exactly that activity log — a sequence of
(operation, block index, stream, timestamp) events with no plaintext and
no knowledge of the agent's internal state.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Literal

Operation = Literal["read", "write"]


@dataclass(frozen=True)
class IoEvent:
    """One observed I/O request between the agent and the raw storage."""

    op: Operation
    index: int
    time_ms: float
    stream: str = "default"


@dataclass
class IoTrace:
    """An append-only log of I/O events, with simple query helpers."""

    events: list[IoEvent] = field(default_factory=list)

    def record(self, op: Operation, index: int, time_ms: float, stream: str = "default") -> None:
        """Append one event."""
        self.events.append(IoEvent(op=op, index=index, time_ms=time_ms, stream=stream))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[IoEvent]:
        return iter(self.events)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    # -- queries used by attackers and analysis --------------------------------

    def reads(self) -> list[IoEvent]:
        """All read events in order."""
        return [e for e in self.events if e.op == "read"]

    def writes(self) -> list[IoEvent]:
        """All write events in order."""
        return [e for e in self.events if e.op == "write"]

    def indices(self, op: Operation | None = None) -> list[int]:
        """Block indices touched, optionally filtered by operation."""
        return [e.index for e in self.events if op is None or e.op == op]

    def index_histogram(self, op: Operation | None = None) -> Counter:
        """How many times each block index was touched."""
        return Counter(self.indices(op))

    def touched_blocks(self, op: Operation | None = None) -> set[int]:
        """The set of distinct block indices touched."""
        return set(self.indices(op))

    def slice_by_stream(self, stream: str) -> "IoTrace":
        """Events belonging to one request stream."""
        return IoTrace([e for e in self.events if e.stream == stream])

    def between(self, start_ms: float, end_ms: float) -> "IoTrace":
        """Events with timestamps in [start_ms, end_ms)."""
        return IoTrace([e for e in self.events if start_ms <= e.time_ms < end_ms])

    def extend(self, other: Iterable[IoEvent]) -> None:
        """Append events from another trace."""
        self.events.extend(other)
