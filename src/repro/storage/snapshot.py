"""Snapshots of the raw storage and snapshot diffing.

This is the observable of the *update analysis* attacker (Section 3.1):
"if an attacker can compare consecutive snapshots, he can detect changes
on blocks that do not belong to any plain files, and conclude that one
or more hidden files exist."  A :class:`Snapshot` is a verbatim copy of
the volume's raw bytes at a point in time; :class:`SnapshotDiff` reports
which blocks changed between two snapshots.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import SnapshotMismatchError
from repro.storage.disk import RawStorage


@dataclass(frozen=True)
class Snapshot:
    """A point-in-time copy of the raw storage, as an attacker would take it."""

    block_size: int
    num_blocks: int
    data: bytes
    label: str = ""

    def block(self, index: int) -> bytes:
        """Raw bytes of block ``index`` in this snapshot."""
        offset = index * self.block_size
        return self.data[offset : offset + self.block_size]

    def block_digest(self, index: int) -> bytes:
        """SHA-256 digest of one block (attackers compare digests, not bytes)."""
        return hashlib.sha256(self.block(index)).digest()

    def digests(self) -> list[bytes]:
        """Digest of every block, in order."""
        return [self.block_digest(i) for i in range(self.num_blocks)]

    @classmethod
    def of_bytes(cls, data: bytes, block_size: int, label: str = "") -> "Snapshot":
        """Wrap a raw image (a seized volume file, a journal sidecar) as a snapshot.

        This is how an adversary images a *file* rather than a live
        storage object — e.g. the volume file between two runs of the
        owning process, which is exactly the multi-snapshot setting of
        the crash scenarios.
        """
        if block_size <= 0:
            raise SnapshotMismatchError("block_size must be positive")
        if len(data) == 0 or len(data) % block_size != 0:
            raise SnapshotMismatchError(
                f"image of {len(data)} bytes is not a positive multiple of the "
                f"{block_size}-byte block size"
            )
        return cls(
            block_size=block_size,
            num_blocks=len(data) // block_size,
            data=bytes(data),
            label=label,
        )


@dataclass(frozen=True)
class SnapshotDiff:
    """The result of comparing two snapshots of the same volume."""

    changed_blocks: tuple[int, ...]
    total_blocks: int

    @property
    def change_count(self) -> int:
        """How many blocks changed."""
        return len(self.changed_blocks)

    @property
    def change_fraction(self) -> float:
        """Fraction of the volume that changed."""
        return self.change_count / self.total_blocks if self.total_blocks else 0.0


def take_snapshot(storage: RawStorage, label: str = "") -> Snapshot:
    """Capture the current contents of ``storage`` without generating device I/O.

    The attacker is assumed to obtain snapshots out-of-band (e.g. from
    backups or by imaging the shared volume), so taking one does not
    perturb the I/O trace.
    """
    return Snapshot(
        block_size=storage.geometry.block_size,
        num_blocks=storage.geometry.num_blocks,
        data=storage.raw_bytes(),
        label=label,
    )


def diff_snapshots(before: Snapshot, after: Snapshot) -> SnapshotDiff:
    """Report which blocks differ between two snapshots of the same volume."""
    if before.block_size != after.block_size or before.num_blocks != after.num_blocks:
        raise SnapshotMismatchError("snapshots come from volumes with different geometry")
    changed = []
    size = before.block_size
    for index in range(before.num_blocks):
        offset = index * size
        if before.data[offset : offset + size] != after.data[offset : offset + size]:
            changed.append(index)
    return SnapshotDiff(changed_blocks=tuple(changed), total_blocks=before.num_blocks)
