"""A simple block bitmap.

The paper's simulation of the non-volatile agent "use[s] a bitmap to
mark data blocks against dummy blocks" (Section 6.2).  The same
structure is used by the baseline allocators to track free blocks.

Single-bit operations are O(1) on a byte array; the scanning queries
(``iter_set``, ``first_clear``, ``find_clear_run``) unpack the bits into
numpy and run at C speed, which matters once volumes reach hundreds of
thousands of blocks.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import BlockOutOfRangeError


class Bitmap:
    """Fixed-size bitmap over block indices."""

    def __init__(self, size: int, fill: bool = False):
        if size <= 0:
            raise ValueError("bitmap size must be positive")
        self._size = size
        self._bits = bytearray([0xFF] * ((size + 7) // 8)) if fill else bytearray((size + 7) // 8)
        self._count = size if fill else 0

    def __len__(self) -> int:
        return self._size

    def _check(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise BlockOutOfRangeError(f"bit {index} outside bitmap of {self._size}")

    def get(self, index: int) -> bool:
        """Whether bit ``index`` is set."""
        self._check(index)
        return bool(self._bits[index // 8] & (1 << (index % 8)))

    def set(self, index: int) -> None:
        """Set bit ``index``."""
        self._check(index)
        if not self.get(index):
            self._bits[index // 8] |= 1 << (index % 8)
            self._count += 1

    def clear(self, index: int) -> None:
        """Clear bit ``index``."""
        self._check(index)
        if self.get(index):
            self._bits[index // 8] &= ~(1 << (index % 8)) & 0xFF
            self._count -= 1

    @property
    def set_count(self) -> int:
        """Number of set bits."""
        return self._count

    @property
    def clear_count(self) -> int:
        """Number of clear bits."""
        return self._size - self._count

    def _unpacked(self) -> np.ndarray:
        """All bits as a uint8 array of 0/1 (LSB-first, matching :meth:`get`)."""
        raw = np.frombuffer(bytes(self._bits), dtype=np.uint8)
        return np.unpackbits(raw, bitorder="little")[: self._size]

    def iter_set(self) -> Iterator[int]:
        """Indices of set bits, in increasing order."""
        for index in np.nonzero(self._unpacked())[0]:
            yield int(index)

    def iter_clear(self) -> Iterator[int]:
        """Indices of clear bits, in increasing order."""
        for index in np.nonzero(self._unpacked() == 0)[0]:
            yield int(index)

    def first_clear(self, start: int = 0) -> int | None:
        """The first clear bit at or after ``start``, or None."""
        clear = np.nonzero(self._unpacked()[start:] == 0)[0]
        if clear.size == 0:
            return None
        return int(clear[0]) + start

    def find_clear_run(self, length: int, start: int = 0) -> int | None:
        """The start of the first run of ``length`` clear bits, or None."""
        if length <= 0:
            raise ValueError("run length must be positive")
        clear = (self._unpacked()[start:] == 0).astype(np.int64)
        if clear.size < length:
            return None
        # Windowed sums via a cumulative sum: window i covers bits
        # [i, i + length) and is all-clear exactly when the sum == length.
        sums = np.concatenate(([0], np.cumsum(clear)))
        hits = np.nonzero(sums[length:] - sums[:-length] == length)[0]
        if hits.size == 0:
            return None
        return int(hits[0]) + start
