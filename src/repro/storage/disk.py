"""The simulated raw block device.

This is the substitute for the paper's physical disk (Table 1).  It
charges access latency through a pluggable
:class:`~repro.storage.latency.DiskLatencyModel`, counts I/O operations,
and records every request into an
:class:`~repro.storage.trace.IoTrace` so that attackers can observe the
same things they could observe against the real system.  The block bytes
themselves live behind a pluggable
:class:`~repro.storage.backend.BlockBackend`: in memory by default, or a
durable memory-mapped volume file
(:class:`~repro.storage.backend.MmapFileBackend`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import (
    BackendClosedError,
    BlockOutOfRangeError,
    BlockSizeMismatchError,
    VolumeFileError,
)
from repro.storage.backend import BlockBackend, MemoryBackend
from repro.storage.latency import DiskLatencyModel
from repro.storage.trace import OP_READ, OP_WRITE, IoTrace

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def _index_array(indices: Iterable[int]) -> np.ndarray:
    """Block indices as an int64 array (shared by the batched paths)."""
    if isinstance(indices, np.ndarray):
        return indices.astype(np.int64, copy=False)
    return np.fromiter(indices, dtype=np.int64)


def _sequential_sum(initial: float, costs: np.ndarray) -> float:
    """Accumulate ``costs`` onto ``initial`` with the same floating-point
    rounding as the single-block ``total += cost`` loop (cumsum is the
    identical left-to-right recurrence), keeping counters bit-exact."""
    return float(np.cumsum(np.concatenate(((initial,), costs)))[-1])


@dataclass(frozen=True)
class StorageGeometry:
    """Size parameters of a raw storage volume.

    The paper's workload (Table 2) uses 4 KB blocks on a 1 GB volume;
    benchmarks scale the volume down while keeping the block size.
    """

    block_size: int = 4 * KIB
    num_blocks: int = (1 * GIB) // (4 * KIB)

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")

    @property
    def capacity_bytes(self) -> int:
        """Total capacity of the volume in bytes."""
        return self.block_size * self.num_blocks

    @classmethod
    def from_capacity(cls, capacity_bytes: int, block_size: int = 4 * KIB) -> "StorageGeometry":
        """Build a geometry holding at least ``capacity_bytes``.

        A capacity that is not a multiple of the block size rounds *up*
        to the next whole block, so the volume always honours the
        "at least" contract.  A non-positive capacity is a caller bug
        (it used to be silently clamped to one block) and raises.
        """
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        num_blocks = -(-capacity_bytes // block_size)
        return cls(block_size=block_size, num_blocks=num_blocks)


@dataclass
class IoCounters:
    """Aggregate I/O accounting maintained by :class:`RawStorage`."""

    reads: int = 0
    writes: int = 0
    read_time_ms: float = 0.0
    write_time_ms: float = 0.0

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes

    @property
    def total_time_ms(self) -> float:
        return self.read_time_ms + self.write_time_ms

    def snapshot(self) -> "IoCounters":
        """An independent copy, useful for measuring deltas."""
        return IoCounters(self.reads, self.writes, self.read_time_ms, self.write_time_ms)

    def delta(self, earlier: "IoCounters") -> "IoCounters":
        """Counters accumulated since ``earlier`` was captured."""
        return IoCounters(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            read_time_ms=self.read_time_ms - earlier.read_time_ms,
            write_time_ms=self.write_time_ms - earlier.write_time_ms,
        )


class RawStorage:
    """In-memory simulated block device with latency accounting.

    Parameters
    ----------
    geometry:
        Block size and block count.
    latency:
        Latency model; defaults to a paper-era ATA disk.
    trace:
        Optional trace to record requests into; a fresh one is created
        when omitted.
    backend:
        Block backend owning the bytes; defaults to a fresh
        :class:`~repro.storage.backend.MemoryBackend` (the historical,
        volatile behaviour).  Must match ``geometry``.
    """

    def __init__(
        self,
        geometry: StorageGeometry,
        latency: DiskLatencyModel | None = None,
        trace: IoTrace | None = None,
        backend: BlockBackend | None = None,
    ):
        self.geometry = geometry
        self.latency = latency if latency is not None else DiskLatencyModel()
        self.trace = trace if trace is not None else IoTrace()
        self.counters = IoCounters()
        self.clock_ms = 0.0
        if backend is None:
            backend = MemoryBackend(geometry.block_size, geometry.num_blocks)
        elif (
            backend.block_size != geometry.block_size
            or backend.num_blocks != geometry.num_blocks
        ):
            raise VolumeFileError(
                f"backend of {backend.num_blocks} x {backend.block_size}-byte blocks "
                f"does not match geometry of {geometry.num_blocks} x "
                f"{geometry.block_size}-byte blocks"
            )
        self.backend = backend
        # The disk has a single head: sequentiality is judged against the
        # last accessed block regardless of which request stream touched it.
        # This is what makes interleaved multi-user workloads lose the
        # sequential-I/O advantage (Figures 10(b) and 11(c)).
        self._head_position: int | None = None

    # -- initialisation --------------------------------------------------------

    def fill_random(self, seed: int = 0) -> None:
        """Fill the whole volume with pseudo-random bytes.

        The paper initialises a StegFS volume by filling blocks with
        random data so that abandoned blocks, dummy blocks and encrypted
        data blocks are indistinguishable.  A numpy generator is used
        because the volume can be hundreds of megabytes.
        """
        self._check_open()
        self.backend.fill_random(seed)

    # -- block access ----------------------------------------------------------

    def _check_open(self) -> None:
        """Fail fast — and before any accounting — once the backend is closed.

        Without this, a request against a closed volume would bump the
        counters, advance the clock and append a trace event before the
        backend finally raised, leaving phantom I/O in the observable
        record.
        """
        if self.backend.closed:
            raise BackendClosedError("storage volume is closed")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.geometry.num_blocks:
            raise BlockOutOfRangeError(
                f"block {index} outside volume of {self.geometry.num_blocks} blocks"
            )

    def _charge(self, index: int, stream: str) -> float:
        cost = self.latency.cost_ms(self._head_position, index)
        self._head_position = index
        self.clock_ms += cost
        return cost

    def read_block(self, index: int, stream: str = "default") -> bytes:
        """Read one block, charging latency and recording the request."""
        self._check_open()
        self._check_index(index)
        cost = self._charge(index, stream)
        self.counters.reads += 1
        self.counters.read_time_ms += cost
        self.trace.record("read", index, self.clock_ms, stream)
        return self.backend.read(index)

    def write_block(self, index: int, data: bytes, stream: str = "default") -> None:
        """Write one block, charging latency and recording the request."""
        self._check_open()
        self._check_index(index)
        if len(data) != self.geometry.block_size:
            raise BlockSizeMismatchError(
                f"write of {len(data)} bytes to a {self.geometry.block_size}-byte block"
            )
        cost = self._charge(index, stream)
        self.counters.writes += 1
        self.counters.write_time_ms += cost
        self.trace.record("write", index, self.clock_ms, stream)
        self.backend.write(index, data)

    # -- batched block access ---------------------------------------------------
    #
    # The batched calls are *observationally identical* to a loop of the
    # single-block calls above: every block is charged latency against the
    # shared head position, bumps the same counters and clock, and records
    # the same trace event with the same timestamp.  Only the wall-clock
    # cost changes — latency is computed vectorized (sequential vs random
    # from an index-diff), trace rows append in one columnar write, and
    # the data moves through numpy in one gather/scatter instead of one
    # Python-level copy per block.  Unlike the single-block loop, all
    # indices (and data sizes) are validated up-front, so a failed batched
    # call leaves no partial side effects behind.
    #
    # ``stream`` may be a single name shared by the whole batch or a
    # sequence of per-block names: the concurrent serving engine coalesces
    # adjacent requests of *different* sessions into one batched call while
    # keeping per-session trace attribution intact.

    def _check_batch(
        self,
        indices: np.ndarray,
        datas: Sequence[bytes] | None,
        streams: str | Sequence[str] = "",
    ) -> None:
        if not isinstance(streams, str) and len(streams) != indices.size:
            raise ValueError(f"{indices.size} indices but {len(streams)} streams")
        if indices.size:
            bad = (indices < 0) | (indices >= self.geometry.num_blocks)
            if bad.any():
                raise BlockOutOfRangeError(
                    f"block {int(indices[bad][0])} outside volume of "
                    f"{self.geometry.num_blocks} blocks"
                )
        if datas is not None:
            if len(datas) != indices.size:
                raise ValueError(
                    f"{indices.size} indices but {len(datas)} data blocks"
                )
            for data in datas:
                if len(data) != self.geometry.block_size:
                    raise BlockSizeMismatchError(
                        f"write of {len(data)} bytes to a "
                        f"{self.geometry.block_size}-byte block"
                    )

    def _charge_many(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_charge` over a batch: per-block costs and the
        per-block clock timestamps, advancing head position and clock."""
        costs = self.latency.cost_ms_many(self._head_position, indices)
        times = np.cumsum(np.concatenate(((self.clock_ms,), costs)))[1:]
        self.clock_ms = float(times[-1])
        self._head_position = int(indices[-1])
        return costs, times

    def read_blocks(
        self, indices: Iterable[int], stream: str | Sequence[str] = "default"
    ) -> list[bytes]:
        """Read many blocks in one call; equivalent to a loop of :meth:`read_block`."""
        self._check_open()
        indices = _index_array(indices)
        self._check_batch(indices, None, stream)
        if indices.size == 0:
            return []
        costs, times = self._charge_many(indices)
        self.counters.reads += indices.size
        self.counters.read_time_ms = _sequential_sum(self.counters.read_time_ms, costs)
        self.trace.record_many("read", indices, times, stream)
        return self.backend.read_many(indices)

    def write_blocks(
        self,
        indices: Iterable[int],
        datas: Sequence[bytes],
        stream: str | Sequence[str] = "default",
    ) -> None:
        """Write many blocks in one call; equivalent to a loop of :meth:`write_block`."""
        self._check_open()
        indices = _index_array(indices)
        datas = list(datas)
        self._check_batch(indices, datas, stream)
        if indices.size == 0:
            return
        costs, times = self._charge_many(indices)
        self.counters.writes += indices.size
        self.counters.write_time_ms = _sequential_sum(self.counters.write_time_ms, costs)
        self.trace.record_many("write", indices, times, stream)
        self.backend.write_many(indices, datas)

    def read_write_blocks(
        self,
        indices: Iterable[int],
        datas: Sequence[bytes] | None = None,
        stream: str | Sequence[str] = "default",
        write_indices: Iterable[int] | None = None,
    ) -> None:
        """Charge an interleaved read+write *cycle* per entry, in one call.

        Equivalent to ``for r, w, d in zip(indices, write_indices,
        datas): read_block(r); write_block(w, d)`` with the read results
        discarded.  ``write_indices`` defaults to ``indices`` — the
        historical rewrite-in-place shape; a Figure-6 swap passes the
        update's target as the write index instead.  ``stream`` may be
        one name or a per-cycle sequence (both events of a cycle carry
        its label), which is what keeps per-session trace attribution
        intact when the concurrent engine fuses cycles across sessions.
        When ``datas`` is None every block is rewritten with its current
        content — a pure charging pass, which is what the oblivious
        store's non-final merge-sort passes need.
        """
        self._check_open()
        read_idx = _index_array(indices)
        if datas is not None:
            datas = list(datas)
        if write_indices is None:
            write_idx = read_idx
        else:
            if datas is None:
                raise ValueError("write_indices requires datas")
            write_idx = _index_array(write_indices)
            if write_idx.size != read_idx.size:
                raise ValueError(
                    f"{read_idx.size} read indices but {write_idx.size} write indices"
                )
        self._check_batch(read_idx, None, stream)
        self._check_batch(write_idx, datas)
        if read_idx.size == 0:
            return
        if datas is not None and self._cycles_collide(read_idx, write_idx):
            # A later cycle touching an earlier cycle's block must
            # observe the earlier write; only the genuine loop
            # preserves that.
            streams = [stream] * read_idx.size if isinstance(stream, str) else list(stream)
            cycles = zip(read_idx.tolist(), write_idx.tolist(), datas, streams, strict=True)
            for r, w, data, label in cycles:
                self.read_block(r, label)
                self.write_block(w, data, label)
            return
        # The head serves each cycle as two back-to-back accesses: read
        # the source, write the target.
        accesses = np.empty(read_idx.size * 2, dtype=np.int64)
        accesses[0::2] = read_idx
        accesses[1::2] = write_idx
        costs, times = self._charge_many(accesses)
        self.counters.reads += read_idx.size
        self.counters.writes += write_idx.size
        self.counters.read_time_ms = _sequential_sum(self.counters.read_time_ms, costs[0::2])
        self.counters.write_time_ms = _sequential_sum(self.counters.write_time_ms, costs[1::2])
        op_codes = np.tile(np.array([OP_READ, OP_WRITE], dtype=np.uint8), read_idx.size)
        event_streams: str | list[str] = stream
        if not isinstance(stream, str):
            event_streams = [label for label in stream for _ in range(2)]
        self.trace.record_many(op_codes, accesses, times, event_streams)
        if datas is not None:
            self.backend.write_many(write_idx, datas)

    @staticmethod
    def _cycles_collide(read_idx: np.ndarray, write_idx: np.ndarray) -> bool:
        """Whether any block participates in more than one read/write cycle.

        A block shared *within* one cycle (read == write, the in-place
        shape) is fine; a block appearing in two different cycles is a
        read-after-write or write-after-write hazard that the batched
        schedule cannot honour, so the caller falls back to the loop.
        """
        if read_idx is write_idx:
            return np.unique(read_idx).size != read_idx.size
        per_cycle = np.where(read_idx == write_idx, read_idx, -1)
        touched = np.concatenate((read_idx[per_cycle < 0], write_idx[per_cycle < 0],
                                  per_cycle[per_cycle >= 0]))
        return np.unique(touched).size != touched.size

    def peek_block(self, index: int) -> bytes:
        """Read block bytes *without* charging latency or recording a request.

        This models an attacker scanning a snapshot of the raw device, or
        internal bookkeeping that would not generate device I/O; regular
        file-system code paths must use :meth:`read_block`.
        """
        self._check_open()
        self._check_index(index)
        return self.backend.read(index)

    def raw_bytes(self) -> bytes:
        """A copy of the whole volume (used by snapshots)."""
        self._check_open()
        return self.backend.raw_bytes()

    # -- durability --------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether the backend has been closed."""
        return self.backend.closed

    def flush(self) -> None:
        """Push pending bytes to durable storage (a no-op for memory backends)."""
        self._check_open()
        self.backend.flush()

    def close(self) -> None:
        """Close the backend; later block access raises ``BackendClosedError``.

        Closing is idempotent.  The accounting half (counters, clock,
        trace) stays readable — an experiment can analyse its trace
        after the volume is closed.
        """
        if not self.backend.closed:
            self.backend.close()

    def __enter__(self) -> "RawStorage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- bookkeeping ------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the I/O counters and the clock (the trace is left intact)."""
        self.counters = IoCounters()
        self.clock_ms = 0.0
        self._head_position = None

    def reset_head_position(self) -> None:
        """Forget the head position (forces the next access to pay a full seek)."""
        self._head_position = None
