"""Simulated raw block storage, the substrate the file systems run on.

The paper's prototype runs on a 20 GB Ultra ATA/100 disk with 4 KB
blocks (Tables 1 and 2).  We do not have that testbed, so this
subpackage provides a simulated block device:

* :class:`~repro.storage.block.StoredBlock` — the on-disk block format
  (IV + encrypted data field) of Section 4.1.1.
* :class:`~repro.storage.latency.DiskLatencyModel` — charges seek,
  rotational and transfer time, distinguishing sequential from random
  accesses so that the CleanDisk/FragDisk baselines keep their paper
  advantage on sequential workloads.
* :class:`~repro.storage.disk.RawStorage` — the block device itself,
  with I/O accounting and pluggable latency.
* :class:`~repro.storage.backend.BlockBackend` — pluggable owner of the
  volume's bytes: :class:`~repro.storage.backend.MemoryBackend`
  (default, volatile) or
  :class:`~repro.storage.backend.MmapFileBackend` (a durable
  memory-mapped volume file — the literal "seized disk").
* :class:`~repro.storage.snapshot.Snapshot` — what the update-analysis
  attacker sees (a full copy of the raw bytes), plus diffing.
* :class:`~repro.storage.trace.IoTrace` — what the traffic-analysis
  attacker sees (the sequence of I/O requests between agent and storage).
"""

from repro.storage.backend import (
    BlockBackend,
    FaultInjectingBackend,
    MemoryBackend,
    MmapFileBackend,
    TornWrite,
)
from repro.storage.bitmap import Bitmap
from repro.storage.block import BLOCK_IV_SIZE, StoredBlock, data_field_size
from repro.storage.device import BlockDevice, Partition, RawDevice, split_volume
from repro.storage.disk import GIB, KIB, MIB, IoCounters, RawStorage, StorageGeometry
from repro.storage.latency import DiskLatencyModel, ZeroLatencyModel
from repro.storage.snapshot import Snapshot, SnapshotDiff, diff_snapshots, take_snapshot
from repro.storage.trace import OP_READ, OP_WRITE, IoEvent, IoTrace

__all__ = [
    "Bitmap",
    "BlockBackend",
    "MemoryBackend",
    "MmapFileBackend",
    "FaultInjectingBackend",
    "TornWrite",
    "BLOCK_IV_SIZE",
    "StoredBlock",
    "data_field_size",
    "BlockDevice",
    "Partition",
    "RawDevice",
    "split_volume",
    "RawStorage",
    "StorageGeometry",
    "IoCounters",
    "KIB",
    "MIB",
    "GIB",
    "DiskLatencyModel",
    "ZeroLatencyModel",
    "Snapshot",
    "SnapshotDiff",
    "take_snapshot",
    "diff_snapshots",
    "IoEvent",
    "IoTrace",
    "OP_READ",
    "OP_WRITE",
]
