"""On-disk block format: an initial vector plus an encrypted data field.

Section 4.1.1 of the paper: "each block contains an initial vector (IV)
and a data field.  The data field contains real data in the case of a
data block, and random bytes if it is a dummy block. ... Whenever the
agent re-encrypts a block, it resets the IV so that the content of the
whole encrypted block changes.  This enables the agent to carry out
dummy updates on any block, by simply changing its IV."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cipher import FieldCipher
from repro.errors import BlockSizeMismatchError

BLOCK_IV_SIZE = 16


@dataclass(frozen=True)
class StoredBlock:
    """Raw bytes of one storage block, split into IV and encrypted data field.

    The block as written to disk is ``iv || ciphertext``; an attacker
    scanning the raw storage sees only these bytes and cannot tell a data
    block from a dummy block.
    """

    iv: bytes
    ciphertext: bytes

    def __post_init__(self) -> None:
        if len(self.iv) != BLOCK_IV_SIZE:
            raise BlockSizeMismatchError(
                f"IV must be {BLOCK_IV_SIZE} bytes, got {len(self.iv)}"
            )

    @property
    def raw(self) -> bytes:
        """The block exactly as stored on disk."""
        return self.iv + self.ciphertext

    @classmethod
    def from_raw(cls, raw: bytes) -> "StoredBlock":
        """Parse a raw on-disk block back into IV and ciphertext."""
        if len(raw) < BLOCK_IV_SIZE:
            raise BlockSizeMismatchError(
                f"raw block of {len(raw)} bytes is smaller than the IV"
            )
        return cls(iv=raw[:BLOCK_IV_SIZE], ciphertext=raw[BLOCK_IV_SIZE:])

    @classmethod
    def seal(cls, cipher: FieldCipher, iv: bytes, plaintext: bytes) -> "StoredBlock":
        """Encrypt ``plaintext`` under ``cipher`` seeded by ``iv``."""
        return cls(iv=iv, ciphertext=cipher.encrypt(iv, plaintext))

    def open(self, cipher: FieldCipher) -> bytes:
        """Decrypt the data field with ``cipher``."""
        return cipher.decrypt(self.iv, self.ciphertext)

    def reseal_with_new_iv(self, cipher: FieldCipher, new_iv: bytes) -> "StoredBlock":
        """Re-encrypt the same plaintext under a fresh IV (a dummy update).

        The plaintext is unchanged but every ciphertext byte changes, so
        an observer cannot distinguish this from a real content update.
        """
        plaintext = self.open(cipher)
        return StoredBlock.seal(cipher, new_iv, plaintext)


def data_field_size(block_size: int) -> int:
    """Number of data-field bytes available in a block of ``block_size`` bytes."""
    if block_size <= BLOCK_IV_SIZE:
        raise BlockSizeMismatchError(
            f"block size {block_size} leaves no room for a data field"
        )
    return block_size - BLOCK_IV_SIZE
