"""Disk latency models.

The paper's numbers come from a real Ultra ATA/100 disk (Table 1).  The
shapes of its performance figures are driven by one property of that
disk: a random block access pays a positioning cost (seek + rotational
latency) that dwarfs the transfer time, while sequential accesses pay
only transfer time.  The latency model here charges exactly those costs
so that

* CleanDisk/FragDisk beat the steganographic systems on single-user
  sequential workloads (Figure 10a, 11b), and
* that advantage disappears once concurrent streams interleave and every
  access becomes effectively random (Figures 10b, 11c), and
* the external merge sort used to reorder the oblivious storage is much
  cheaper per I/O than its random retrievals (Figure 12b).

Default parameters approximate a 7200 RPM ATA disk of the paper's era:
8.5 ms average seek, 4.2 ms average rotational latency, and about 40
MB/s sustained transfer (≈0.1 ms per 4 KB block).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DiskLatencyModel:
    """Charges per-access latency, distinguishing sequential from random I/O.

    Parameters
    ----------
    seek_ms:
        Average seek time charged for a non-sequential access.
    rotational_ms:
        Average rotational latency charged for a non-sequential access.
    transfer_ms_per_block:
        Media transfer time per block; charged for every access.
    sequential_threshold:
        An access within this many blocks after the previous one (per
        stream) counts as sequential and pays only transfer time.
    """

    seek_ms: float = 8.5
    rotational_ms: float = 4.2
    transfer_ms_per_block: float = 0.1
    sequential_threshold: int = 1

    def cost_ms(self, previous_index: int | None, index: int) -> float:
        """Latency of accessing ``index`` given the previous access position."""
        if previous_index is not None:
            distance = index - previous_index
            if 0 <= distance <= self.sequential_threshold:
                return self.transfer_ms_per_block
        return self.seek_ms + self.rotational_ms + self.transfer_ms_per_block

    def cost_ms_many(self, previous_index: int | None, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cost_ms` over a run of consecutive accesses.

        ``indices[i]`` is charged against ``indices[i-1]`` (the head moves
        through the batch); ``indices[0]`` is charged against
        ``previous_index``.  Subclasses that override :meth:`cost_ms` are
        honoured via a per-access fallback loop, so custom models stay
        correct without having to vectorize themselves.
        """
        indices = np.asarray(indices, dtype=np.int64)
        count = indices.size
        if count == 0:
            return np.empty(0, dtype=np.float64)
        overridden = (
            "cost_ms" in self.__dict__  # instance-level monkeypatch
            or type(self).cost_ms is not DiskLatencyModel.cost_ms
        )
        if overridden:
            costs = np.empty(count, dtype=np.float64)
            previous = previous_index
            for i in range(count):
                index = int(indices[i])
                costs[i] = self.cost_ms(previous, index)
                previous = index
            return costs
        distance = np.empty(count, dtype=np.int64)
        distance[1:] = indices[1:] - indices[:-1]
        # A None head position never counts as sequential.
        distance[0] = indices[0] - previous_index if previous_index is not None else -1
        sequential = (distance >= 0) & (distance <= self.sequential_threshold)
        random_cost = self.seek_ms + self.rotational_ms + self.transfer_ms_per_block
        return np.where(sequential, self.transfer_ms_per_block, random_cost)

    @property
    def random_access_ms(self) -> float:
        """Full cost of one random access."""
        return self.seek_ms + self.rotational_ms + self.transfer_ms_per_block

    @property
    def sequential_access_ms(self) -> float:
        """Cost of one sequential access."""
        return self.transfer_ms_per_block


@dataclass
class ZeroLatencyModel(DiskLatencyModel):
    """A latency model that charges nothing.

    Useful in unit tests that only care about functional behaviour and
    I/O counts, not timing.
    """

    seek_ms: float = 0.0
    rotational_ms: float = 0.0
    transfer_ms_per_block: float = 0.0
