"""Block-device protocol and partition views.

The paper carves the raw storage into a StegFS partition and an
oblivious-storage partition (Section 5): "We carve out a partition on
the raw storage and construct it to be an oblivious storage ... The
remaining space on the storage is used for the StegFS partition."

:class:`Partition` provides a window onto a contiguous range of a
:class:`~repro.storage.disk.RawStorage`; file systems and the oblivious
store are written against the :class:`BlockDevice` protocol so they work
on either a whole volume or a partition.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import BlockOutOfRangeError
from repro.storage.disk import RawStorage, _index_array


@runtime_checkable
class BlockDevice(Protocol):
    """Minimal interface needed by the file-system layers."""

    @property
    def block_size(self) -> int:
        """Bytes per block."""

    @property
    def num_blocks(self) -> int:
        """Number of addressable blocks."""

    def read_block(self, index: int, stream: str = "default") -> bytes:
        """Read one block (charges I/O)."""

    def write_block(self, index: int, data: bytes, stream: str = "default") -> None:
        """Write one block (charges I/O)."""

    def read_blocks(
        self, indices: Iterable[int], stream: str | Sequence[str] = "default"
    ) -> list[bytes]:
        """Read many blocks; observationally identical to a loop of reads."""

    def write_blocks(
        self,
        indices: Iterable[int],
        datas: Sequence[bytes],
        stream: str | Sequence[str] = "default",
    ) -> None:
        """Write many blocks; observationally identical to a loop of writes."""

    def read_write_blocks(
        self,
        indices: Iterable[int],
        datas: Sequence[bytes] | None = None,
        stream: str | Sequence[str] = "default",
        write_indices: Iterable[int] | None = None,
    ) -> None:
        """Charge a read+write cycle per entry (read ``indices[i]``, write
        ``write_indices[i]``; write targets default to the read targets,
        ``datas=None`` rewrites in place)."""

    def peek_block(self, index: int) -> bytes:
        """Read block bytes without charging I/O (attacker/bookkeeping view)."""


class RawDevice:
    """Adapter presenting a whole :class:`RawStorage` as a :class:`BlockDevice`."""

    def __init__(self, storage: RawStorage):
        self.storage = storage

    @property
    def block_size(self) -> int:
        return self.storage.geometry.block_size

    @property
    def num_blocks(self) -> int:
        return self.storage.geometry.num_blocks

    def read_block(self, index: int, stream: str = "default") -> bytes:
        return self.storage.read_block(index, stream)

    def write_block(self, index: int, data: bytes, stream: str = "default") -> None:
        self.storage.write_block(index, data, stream)

    def read_blocks(
        self, indices: Iterable[int], stream: str | Sequence[str] = "default"
    ) -> list[bytes]:
        return self.storage.read_blocks(indices, stream)

    def write_blocks(
        self,
        indices: Iterable[int],
        datas: Sequence[bytes],
        stream: str | Sequence[str] = "default",
    ) -> None:
        self.storage.write_blocks(indices, datas, stream)

    def read_write_blocks(
        self,
        indices: Iterable[int],
        datas: Sequence[bytes] | None = None,
        stream: str | Sequence[str] = "default",
        write_indices: Iterable[int] | None = None,
    ) -> None:
        self.storage.read_write_blocks(indices, datas, stream, write_indices=write_indices)

    def peek_block(self, index: int) -> bytes:
        return self.storage.peek_block(index)


class Partition:
    """A contiguous sub-range of a raw storage volume, addressed from zero."""

    def __init__(self, storage: RawStorage, start_block: int, num_blocks: int):
        if start_block < 0 or num_blocks <= 0:
            raise ValueError("partition bounds must be positive")
        if start_block + num_blocks > storage.geometry.num_blocks:
            raise BlockOutOfRangeError(
                f"partition [{start_block}, {start_block + num_blocks}) exceeds "
                f"volume of {storage.geometry.num_blocks} blocks"
            )
        self.storage = storage
        self.start_block = start_block
        self._num_blocks = num_blocks

    @property
    def block_size(self) -> int:
        return self.storage.geometry.block_size

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    def _translate(self, index: int) -> int:
        if not 0 <= index < self._num_blocks:
            raise BlockOutOfRangeError(
                f"block {index} outside partition of {self._num_blocks} blocks"
            )
        return self.start_block + index

    def _translate_many(self, indices: Iterable[int]) -> np.ndarray:
        translated = _index_array(indices)
        if translated.size:
            bad = (translated < 0) | (translated >= self._num_blocks)
            if bad.any():
                raise BlockOutOfRangeError(
                    f"block {int(translated[bad][0])} outside partition of "
                    f"{self._num_blocks} blocks"
                )
        return translated + self.start_block

    def read_block(self, index: int, stream: str = "default") -> bytes:
        return self.storage.read_block(self._translate(index), stream)

    def write_block(self, index: int, data: bytes, stream: str = "default") -> None:
        self.storage.write_block(self._translate(index), data, stream)

    def read_blocks(
        self, indices: Iterable[int], stream: str | Sequence[str] = "default"
    ) -> list[bytes]:
        return self.storage.read_blocks(self._translate_many(indices), stream)

    def write_blocks(
        self,
        indices: Iterable[int],
        datas: Sequence[bytes],
        stream: str | Sequence[str] = "default",
    ) -> None:
        self.storage.write_blocks(self._translate_many(indices), datas, stream)

    def read_write_blocks(
        self,
        indices: Iterable[int],
        datas: Sequence[bytes] | None = None,
        stream: str | Sequence[str] = "default",
        write_indices: Iterable[int] | None = None,
    ) -> None:
        self.storage.read_write_blocks(
            self._translate_many(indices),
            datas,
            stream,
            write_indices=None if write_indices is None else self._translate_many(write_indices),
        )

    def peek_block(self, index: int) -> bytes:
        return self.storage.peek_block(self._translate(index))


def split_volume(storage: RawStorage, first_partition_blocks: int) -> tuple[Partition, Partition]:
    """Split a volume into two partitions (e.g. StegFS + oblivious storage)."""
    total = storage.geometry.num_blocks
    if not 0 < first_partition_blocks < total:
        raise ValueError("first_partition_blocks must split the volume into two non-empty parts")
    first = Partition(storage, 0, first_partition_blocks)
    second = Partition(storage, first_partition_blocks, total - first_partition_blocks)
    return first, second
