"""The snapshot-diff attacker: a multi-snapshot adversary hunting crashes.

The update-analysis attacker of Section 3.1 asks *"does hidden activity
exist?"*; this attacker asks the sharper crash-consistency question:
*"did the last run die mid-update, and did recovery leave a tell?"*.
It images the volume file at a series of quiescent points (between runs
of the owning process — exactly what a backup system or a periodically
seized disk yields), diffs consecutive images, and looks for intervals
whose change pattern betrays a crash-plus-recovery:

1. **change-rate outliers** — an interval containing a torn plan plus a
   rollback could plausibly change more (the tear and its undo) or
   fewer (the op never finished) blocks than a clean interval;
2. **positional non-uniformity** — recovery that rewrote blocks
   in-place at non-uniform positions would break the dummy-update
   camouflage;
3. **threshold advantage** — given a hypothesis of which intervals
   crashed, the best single-threshold distinguisher's advantage
   ``|TPR - FPR|``.  Scoring a *clean* series against the same
   hypothesised positions yields the null baseline; a crash-consistent
   system keeps the two statistically indistinguishable.

The attacker sees raw images only — no keys, no trace — matching the
paper's snapshot-adversary observables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.security import uniformity_chi_square
from repro.storage.snapshot import Snapshot, SnapshotDiff, diff_snapshots


@dataclass(frozen=True)
class SnapshotDiffVerdict:
    """What the snapshot-diff attacker concludes from an image series."""

    intervals: int
    change_fractions: tuple[float, ...]
    mean_change_fraction: float
    uniformity_p_value: float
    advantage: float
    flagged_intervals: tuple[int, ...]
    suspects_crash_recovery: bool


class SnapshotDiffAttacker:
    """Diff consecutive volume images and score crash-recovery evidence.

    Parameters
    ----------
    num_blocks:
        Blocks per image (for the positional-uniformity test).
    advantage_threshold:
        Minimum best-threshold advantage that counts as distinguishing.
    uniformity_alpha:
        p-value below which changed positions count as non-uniform.
    """

    def __init__(
        self,
        num_blocks: int,
        advantage_threshold: float = 0.5,
        uniformity_alpha: float = 0.01,
    ):
        self.num_blocks = num_blocks
        self.advantage_threshold = advantage_threshold
        self.uniformity_alpha = uniformity_alpha

    def interval_diffs(self, snapshots: Sequence[Snapshot]) -> list[SnapshotDiff]:
        """Diffs of consecutive snapshots (``len(snapshots) - 1`` intervals)."""
        if len(snapshots) < 2:
            raise ValueError("need at least two snapshots to diff")
        return [
            diff_snapshots(before, after)
            for before, after in zip(snapshots, snapshots[1:], strict=False)
        ]

    def change_fractions(self, diffs: Sequence[SnapshotDiff]) -> tuple[float, ...]:
        """Fraction of the volume changed in each interval."""
        return tuple(diff.change_fraction for diff in diffs)

    def positional_uniformity(self, diffs: Sequence[SnapshotDiff]) -> float:
        """p-value of the changed positions against the uniform distribution."""
        changed = [index for diff in diffs for index in diff.changed_blocks]
        if not changed:
            return 1.0
        _, p_value = uniformity_chi_square(changed, self.num_blocks)
        return p_value

    def best_threshold_advantage(
        self, fractions: Sequence[float], crash_flags: Sequence[bool]
    ) -> float:
        """Best single-threshold distinguisher advantage ``|TPR - FPR|``.

        ``crash_flags[i]`` is the attacker's hypothesis that interval
        ``i`` contained a crash.  With no positive or no negative
        examples there is nothing to distinguish and the advantage is 0.
        """
        if len(fractions) != len(crash_flags):
            raise ValueError("one crash flag per interval is required")
        flags = np.asarray(crash_flags, dtype=bool)
        values = np.asarray(fractions, dtype=float)
        positives = int(flags.sum())
        negatives = int((~flags).sum())
        if positives == 0 or negatives == 0:
            return 0.0
        best = 0.0
        for threshold in np.unique(values):
            predicted = values >= threshold
            tpr = float((predicted & flags).sum()) / positives
            fpr = float((predicted & ~flags).sum()) / negatives
            best = max(best, abs(tpr - fpr))
        return best

    def flagged_intervals(self, fractions: Sequence[float]) -> tuple[int, ...]:
        """Intervals whose change rate is a mean ± 2σ outlier."""
        values = np.asarray(fractions, dtype=float)
        if values.size < 3:
            return ()
        mean = float(values.mean())
        spread = float(values.std())
        if spread == 0.0:
            return ()
        return tuple(
            int(i) for i in np.nonzero(np.abs(values - mean) > 2.0 * spread)[0]
        )

    def analyse(
        self,
        snapshots: Sequence[Snapshot],
        crash_flags: Sequence[bool] | None = None,
    ) -> SnapshotDiffVerdict:
        """Run every distinguisher over an image series and combine a verdict."""
        diffs = self.interval_diffs(snapshots)
        fractions = self.change_fractions(diffs)
        p_value = self.positional_uniformity(diffs)
        advantage = (
            self.best_threshold_advantage(fractions, crash_flags)
            if crash_flags is not None
            else 0.0
        )
        flagged = self.flagged_intervals(fractions)
        return SnapshotDiffVerdict(
            intervals=len(diffs),
            change_fractions=fractions,
            mean_change_fraction=float(np.mean(fractions)) if fractions else 0.0,
            uniformity_p_value=p_value,
            advantage=advantage,
            flagged_intervals=flagged,
            suspects_crash_recovery=(
                advantage > self.advantage_threshold or p_value < self.uniformity_alpha
            ),
        )
