"""Passive observers feeding the attackers.

The observers collect exactly what the paper's attacker classes are
allowed to see — snapshots of the raw bytes and the request trace —
and nothing else (no keys, no agent state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.disk import RawStorage
from repro.storage.snapshot import Snapshot, SnapshotDiff, diff_snapshots, take_snapshot
from repro.storage.trace import IoTrace


@dataclass
class SnapshotObserver:
    """Takes and stores periodic snapshots of the raw storage."""

    storage: RawStorage
    snapshots: list[Snapshot] = field(default_factory=list)

    def observe(self, label: str = "") -> Snapshot:
        """Take one snapshot now."""
        snapshot = take_snapshot(self.storage, label)
        self.snapshots.append(snapshot)
        return snapshot

    def diffs(self) -> list[SnapshotDiff]:
        """Diffs between each pair of consecutive snapshots."""
        return [
            diff_snapshots(before, after)
            for before, after in zip(self.snapshots, self.snapshots[1:], strict=False)
        ]

    def changed_blocks_per_interval(self) -> list[set[int]]:
        """The changed-block sets of each consecutive interval."""
        return [set(diff.changed_blocks) for diff in self.diffs()]


@dataclass
class TraceObserver:
    """Captures the I/O trace between two points in time."""

    storage: RawStorage
    _mark: int = 0

    def start(self) -> None:
        """Begin a capture window at the current end of the trace."""
        self._mark = len(self.storage.trace)

    def capture(self) -> IoTrace:
        """Events recorded since :meth:`start` (a columnar slice, no copies
        of per-event objects)."""
        return self.storage.trace.since(self._mark)
