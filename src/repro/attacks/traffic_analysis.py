"""The traffic-analysis attacker (Section 3.1, second attack).

The attacker sees the sequence of I/O requests between the agent and
the raw storage (from the activity log or by trapping requests) and
tries to decide whether the trace contains real data accesses hidden
among the dummies.

Signatures exploited against unprotected systems:

* **sequential runs** — applications read files sequentially; a
  conventional file system turns that into long runs of consecutive
  block addresses, which never arise from uniform dummy traffic;
* **repeated addresses** — hot blocks are read or written repeatedly at
  the same physical address;
* **distributional skew** — the accessed addresses cluster on the
  blocks of the active files instead of covering the volume uniformly.

Against the Figure-6 update path and the oblivious store, all three
statistics collapse to their dummy-traffic baselines, which is exactly
what the security benchmarks verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.security import distinguishing_advantage, uniformity_chi_square
from repro.storage.trace import IoTrace


@dataclass(frozen=True)
class TrafficVerdict:
    """What the traffic-analysis attacker concludes from one trace."""

    sequential_run_fraction: float
    max_repeat_count: int
    uniformity_p_value: float
    advantage_vs_reference: float
    suspects_hidden_activity: bool


class TrafficAnalysisAttacker:
    """Decides, from the I/O request trace alone, whether real accesses are present."""

    def __init__(
        self,
        num_blocks: int,
        sequential_threshold: float = 0.2,
        repeat_threshold: int = 4,
        uniformity_alpha: float = 0.01,
        advantage_threshold: float = 0.25,
    ):
        self.num_blocks = num_blocks
        self.sequential_threshold = sequential_threshold
        self.repeat_threshold = repeat_threshold
        self.uniformity_alpha = uniformity_alpha
        self.advantage_threshold = advantage_threshold

    # -- statistics -----------------------------------------------------------------

    @staticmethod
    def sequential_run_fraction(indices: Sequence[int] | np.ndarray) -> float:
        """Fraction of consecutive request pairs that touch adjacent blocks."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size < 2:
            return 0.0
        gaps = np.diff(indices)
        sequential_pairs = int(np.count_nonzero((gaps >= 0) & (gaps <= 1)))
        return sequential_pairs / (indices.size - 1)

    @staticmethod
    def max_repeat_count(indices: Sequence[int] | np.ndarray) -> int:
        """How often the most frequently accessed block was touched."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return 0
        return int(np.unique(indices, return_counts=True)[1].max())

    def positional_uniformity(self, indices: Sequence[int] | np.ndarray) -> float:
        """p-value of the accessed positions against uniformity."""
        if len(indices) == 0:
            return 1.0
        _, p_value = uniformity_chi_square(indices, self.num_blocks)
        return p_value

    def repeat_cutoff(self, trace_length: int) -> float:
        """Repeat count above which a block counts as suspiciously hot.

        Uniform traffic also produces repeats (birthday effect), so the
        cutoff is the configured minimum plus a Poisson-tail allowance
        for the observed trace length.
        """
        mean = trace_length / self.num_blocks if self.num_blocks else 0.0
        return max(self.repeat_threshold, mean + 6.0 * (mean**0.5) + 3.0)

    # -- verdicts ---------------------------------------------------------------------

    def analyse(
        self, trace: IoTrace, reference_dummy_trace: IoTrace | None = None
    ) -> TrafficVerdict:
        """Analyse one observed trace, optionally against a dummy-only reference.

        The reference trace models the attacker's knowledge of what pure
        dummy traffic looks like (they understand the scheme fully); the
        advantage statistic measures how far the observed trace deviates
        from it.
        """
        indices = trace.index_column()
        sequential = self.sequential_run_fraction(indices)
        repeats = self.max_repeat_count(indices)
        p_value = self.positional_uniformity(indices)
        advantage = 0.0
        if reference_dummy_trace is not None and len(reference_dummy_trace) > 0 and indices.size:
            advantage = distinguishing_advantage(
                indices, reference_dummy_trace.index_column(), self.num_blocks
            )
        suspects = (
            sequential > self.sequential_threshold
            or repeats > self.repeat_cutoff(indices.size)
            or p_value < self.uniformity_alpha
            or advantage > self.advantage_threshold
        )
        return TrafficVerdict(
            sequential_run_fraction=sequential,
            max_repeat_count=repeats,
            uniformity_p_value=p_value,
            advantage_vs_reference=advantage,
            suspects_hidden_activity=suspects,
        )
