"""Attacker models from Section 3.2.2.

Two attacker classes are implemented, each restricted to the observables
the paper grants them:

* :class:`~repro.attacks.update_analysis.UpdateAnalysisAttacker` — can
  repeatedly snapshot the raw storage and diff consecutive snapshots.
* :class:`~repro.attacks.traffic_analysis.TrafficAnalysisAttacker` — can
  observe the I/O requests between the agent and the storage.
* :class:`~repro.attacks.snapshot_diff.SnapshotDiffAttacker` — can image
  the volume *file* between runs of the owning process and hunt for
  crash-recovery artifacts in the diff series.

Both know the scheme completely but hold no keys, and both output a
*verdict* (does hidden data activity exist?) together with the evidence
that produced it, so the security experiments can score their success
rate against ground truth.
"""

from repro.attacks.observer import SnapshotObserver, TraceObserver
from repro.attacks.snapshot_diff import SnapshotDiffAttacker, SnapshotDiffVerdict
from repro.attacks.traffic_analysis import TrafficAnalysisAttacker, TrafficVerdict
from repro.attacks.update_analysis import UpdateAnalysisAttacker, UpdateVerdict

__all__ = [
    "SnapshotObserver",
    "TraceObserver",
    "UpdateAnalysisAttacker",
    "UpdateVerdict",
    "TrafficAnalysisAttacker",
    "TrafficVerdict",
    "SnapshotDiffAttacker",
    "SnapshotDiffVerdict",
]
