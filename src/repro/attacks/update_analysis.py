"""The update-analysis attacker (Section 3.1).

The attacker snapshots the raw storage repeatedly and studies which
blocks changed in each interval.  Against an *unprotected* system the
evidence is damning: the same physical blocks change again and again
(a database row lives at a fixed location), changes cluster on a small
working set, and intervals with no user activity show no changes at
all.  Against StegHide every interval shows changes (dummy updates run
continuously), the changed locations are uniform, and repeated updates
of the same logical block land on different physical blocks — so the
attacker's statistics degenerate to those of the dummy-only process.

The attacker here implements three concrete distinguishers and combines
them into a verdict:

1. **repetition** — the fraction of changed blocks that change in more
   than one interval (high for in-place updates, baseline-low for
   uniform relocation);
2. **uniformity** — a chi-square test of the changed-block positions
   against the uniform distribution;
3. **activity correlation** — the total-variation distance between the
   per-interval change counts of "busy" and "idle" intervals supplied
   as ground-truth-free side information (e.g. business hours), which is
   near zero when dummy updates run at the same rate regardless of load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.security import uniformity_chi_square


def _concat_changed(changed_sets: list[set[int]]) -> np.ndarray:
    """All changed-block indices across the intervals, as one array."""
    if not changed_sets:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [np.fromiter(changed, dtype=np.int64, count=len(changed)) for changed in changed_sets]
    )


@dataclass(frozen=True)
class UpdateVerdict:
    """What the update-analysis attacker concludes from a snapshot series."""

    repeated_change_fraction: float
    uniformity_p_value: float
    suspects_hidden_activity: bool
    intervals: int
    changed_blocks_total: int

    @property
    def confident(self) -> bool:
        """Whether the evidence is strong rather than borderline."""
        return self.repeated_change_fraction > 0.5 or self.uniformity_p_value < 1e-6


class UpdateAnalysisAttacker:
    """Decides, from snapshot diffs alone, whether hidden data is being updated."""

    def __init__(
        self,
        num_blocks: int,
        repetition_threshold: float = 0.2,
        uniformity_alpha: float = 0.01,
    ):
        self.num_blocks = num_blocks
        self.repetition_threshold = repetition_threshold
        self.uniformity_alpha = uniformity_alpha

    # -- the individual distinguishers ------------------------------------------------

    def repeated_change_fraction(self, changed_sets: list[set[int]]) -> float:
        """Fraction of changed blocks that changed in more than one interval."""
        changed = _concat_changed(changed_sets)
        if changed.size == 0:
            return 0.0
        _, counts = np.unique(changed, return_counts=True)
        return float(np.count_nonzero(counts > 1)) / counts.size

    def positional_uniformity(self, changed_sets: list[set[int]]) -> float:
        """p-value of the changed-block positions against uniformity."""
        positions = _concat_changed(changed_sets)
        if positions.size == 0:
            return 1.0
        _, p_value = uniformity_chi_square(positions, self.num_blocks)
        return p_value

    def activity_correlation(
        self, busy_change_counts: list[int], idle_change_counts: list[int]
    ) -> float:
        """Normalised difference in change volume between busy and idle intervals.

        Returns a value in [0, 1]; 0 means the update volume carries no
        information about user activity.
        """
        if not busy_change_counts or not idle_change_counts:
            return 0.0
        busy = float(np.mean(busy_change_counts))
        idle = float(np.mean(idle_change_counts))
        if busy + idle == 0:
            return 0.0
        return abs(busy - idle) / (busy + idle)

    # -- combined verdict ------------------------------------------------------------------

    def analyse(self, changed_sets: list[set[int]]) -> UpdateVerdict:
        """Run the distinguishers over a series of snapshot diffs."""
        repeated = self.repeated_change_fraction(changed_sets)
        p_value = self.positional_uniformity(changed_sets)
        suspects = repeated > self.repetition_threshold or p_value < self.uniformity_alpha
        return UpdateVerdict(
            repeated_change_fraction=repeated,
            uniformity_p_value=p_value,
            suspects_hidden_activity=suspects,
            intervals=len(changed_sets),
            changed_blocks_total=sum(len(s) for s in changed_sets),
        )
