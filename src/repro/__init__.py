"""repro: a reproduction of "Hiding Data Accesses in Steganographic File System".

Zhou, Pang and Tan (ICDE 2004) extend a steganographic file system with
two mechanisms that hide *data accesses*: an update-hiding agent that
relocates blocks and mixes in dummy updates (defeating snapshot/update
analysis), and a hierarchical oblivious storage that hides read traffic
(defeating traffic analysis).  This package implements both mechanisms,
the StegFS substrate they build on, the baselines and attackers of the
paper's evaluation, and the workloads and benchmarks that regenerate the
paper's tables and figures on a simulated block device.

Quickstart
----------
>>> from repro import HiddenVolumeService
>>> service = HiddenVolumeService.create("volatile", volume_mib=16, seed=7)
>>> session = service.login(service.new_keyring("alice"))
>>> session.create("/secret/report.txt", b"top secret")  # doctest: +ELLIPSIS
FileStat(...)
>>> session.read("/secret/report.txt")
b'top secret'

Experiments are declared, not hand-wired:

>>> from repro import Scenario, Retrieval, run_experiment  # doctest: +SKIP
>>> run_experiment(Scenario(system="StegHide", workload=Retrieval()))  # doctest: +SKIP
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.agent import StegAgent, UpdateResult
from repro.core.journal import JournalBackend
from repro.core.nonvolatile import NonVolatileAgent
from repro.core.oblivious import (
    ObliviousCostModel,
    ObliviousReader,
    ObliviousStore,
    ObliviousStoreConfig,
    oblivious_height,
    overhead_factor,
)
from repro.core.plan import IoPlan, PlanJournal, PlannedOp
from repro.core.volatile import VolatileAgent
from repro.crypto import AES, CbcCipher, FastFieldCipher, FileAccessKey, KeyRing, Sha256Prng
from repro.errors import HiddenFileExistsError, HiddenFileNotFoundError
from repro.service import (
    ConcurrencyScenario,
    ConcurrentSession,
    ConcurrentVolumeService,
    CrashScenario,
    EngineStats,
    ExperimentResult,
    FileStat,
    HiddenVolumeService,
    ObliviousConfig,
    Retrieval,
    Scenario,
    Session,
    TableUpdates,
    TrafficAnalysisProbe,
    UpdateAnalysisProbe,
    Updates,
    run_experiment,
)
from repro.stegfs import StegFsVolume, VolumeConfig, create_dummy_file
from repro.storage import (
    BlockBackend,
    DiskLatencyModel,
    FaultInjectingBackend,
    IoTrace,
    MemoryBackend,
    MmapFileBackend,
    Partition,
    RawDevice,
    RawStorage,
    StorageGeometry,
    TornWrite,
    ZeroLatencyModel,
    diff_snapshots,
    take_snapshot,
)
from repro.workloads.filegen import FileSpec

__version__ = "2.0.0"

__all__ = [
    # -- session-oriented service facade (the primary public surface)
    "HiddenVolumeService",
    "Session",
    "FileStat",
    "ObliviousConfig",
    # -- concurrent serving engine
    "ConcurrentVolumeService",
    "ConcurrentSession",
    "EngineStats",
    # -- declarative experiments
    "Scenario",
    "ConcurrencyScenario",
    "CrashScenario",
    "Retrieval",
    "Updates",
    "TableUpdates",
    "UpdateAnalysisProbe",
    "TrafficAnalysisProbe",
    "ExperimentResult",
    "run_experiment",
    "FileSpec",
    # -- declarative I/O-plan kernel (plan -> fuse -> execute)
    "IoPlan",
    "PlannedOp",
    "PlanJournal",
    "JournalBackend",
    # -- constructions and substrate (advanced / internal-facing surface)
    "StegAgent",
    "UpdateResult",
    "NonVolatileAgent",
    "VolatileAgent",
    "ObliviousStore",
    "ObliviousStoreConfig",
    "ObliviousReader",
    "ObliviousCostModel",
    "oblivious_height",
    "overhead_factor",
    "AES",
    "CbcCipher",
    "FastFieldCipher",
    "FileAccessKey",
    "KeyRing",
    "Sha256Prng",
    "StegFsVolume",
    "VolumeConfig",
    "create_dummy_file",
    "RawStorage",
    "RawDevice",
    "Partition",
    "BlockBackend",
    "MemoryBackend",
    "MmapFileBackend",
    "FaultInjectingBackend",
    "TornWrite",
    "HiddenFileNotFoundError",
    "HiddenFileExistsError",
    "StorageGeometry",
    "DiskLatencyModel",
    "ZeroLatencyModel",
    "IoTrace",
    "take_snapshot",
    "diff_snapshots",
    # -- deprecated shims (use HiddenVolumeService instead)
    "SteghideSystem",
    "build_steghide_system",
    "build_nonvolatile_system",
]


# -- deprecated pre-2.0 surface ----------------------------------------------------
#
# ``build_steghide_system``/``build_nonvolatile_system`` predate the
# session facade.  They remain as thin shims over
# :meth:`HiddenVolumeService.create` (identical wiring and PRNG
# derivation, hence bit-identical device traces) and will be removed in
# a future release.


@dataclass
class SteghideSystem:
    """Deprecated bundle of storage, volume and agent.

    Produced by the deprecated :func:`build_steghide_system` /
    :func:`build_nonvolatile_system` shims; new code should hold a
    :class:`HiddenVolumeService` and work through sessions.
    """

    storage: RawStorage
    volume: StegFsVolume
    agent: StegAgent
    prng: Sha256Prng

    def new_fak(self, is_dummy: bool = False) -> FileAccessKey:
        """Generate a fresh file access key from the system PRNG."""
        return FileAccessKey.generate(
            self.prng.spawn(f"fak-{id(self)}-{self.prng.random()}"), is_dummy
        )


def _legacy_system(
    construction: str, volume_mib: int, seed: int, block_size: int
) -> SteghideSystem:
    service = HiddenVolumeService.create(
        construction, volume_mib=volume_mib, seed=seed, block_size=block_size
    )
    return SteghideSystem(
        storage=service.storage, volume=service.volume, agent=service.agent, prng=service.prng
    )


def build_steghide_system(
    volume_mib: int = 64, seed: int = 0, block_size: int = 4096
) -> SteghideSystem:
    """Deprecated: build a volatile-agent (Construction 2, "StegHide") system.

    Use ``HiddenVolumeService.create("volatile", ...)`` instead.
    """
    warnings.warn(
        "build_steghide_system is deprecated; use HiddenVolumeService.create('volatile', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _legacy_system("volatile", volume_mib, seed, block_size)


def build_nonvolatile_system(
    volume_mib: int = 64, seed: int = 0, block_size: int = 4096
) -> SteghideSystem:
    """Deprecated: build a non-volatile-agent (Construction 1, "StegHide*") system.

    Use ``HiddenVolumeService.create("nonvolatile", ...)`` instead.
    """
    warnings.warn(
        "build_nonvolatile_system is deprecated; "
        "use HiddenVolumeService.create('nonvolatile', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _legacy_system("nonvolatile", volume_mib, seed, block_size)
