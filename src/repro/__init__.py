"""repro: a reproduction of "Hiding Data Accesses in Steganographic File System".

Zhou, Pang and Tan (ICDE 2004) extend a steganographic file system with
two mechanisms that hide *data accesses*: an update-hiding agent that
relocates blocks and mixes in dummy updates (defeating snapshot/update
analysis), and a hierarchical oblivious storage that hides read traffic
(defeating traffic analysis).  This package implements both mechanisms,
the StegFS substrate they build on, the baselines and attackers of the
paper's evaluation, and the workloads and benchmarks that regenerate the
paper's tables and figures on a simulated block device.

Quickstart
----------
>>> from repro import build_steghide_system
>>> system = build_steghide_system(volume_mib=16, seed=7)
>>> fak = system.new_fak()
>>> handle = system.agent.create_file(fak, "/secret/report.txt", b"top secret")
>>> system.agent.read_file(handle)
b'top secret'
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import StegAgent, UpdateResult
from repro.core.nonvolatile import NonVolatileAgent
from repro.core.oblivious import (
    ObliviousCostModel,
    ObliviousReader,
    ObliviousStore,
    ObliviousStoreConfig,
    oblivious_height,
    overhead_factor,
)
from repro.core.volatile import VolatileAgent
from repro.crypto import AES, CbcCipher, FastFieldCipher, FileAccessKey, KeyRing, Sha256Prng
from repro.stegfs import StegFsVolume, VolumeConfig, create_dummy_file
from repro.storage import (
    DiskLatencyModel,
    IoTrace,
    Partition,
    RawDevice,
    RawStorage,
    StorageGeometry,
    ZeroLatencyModel,
    diff_snapshots,
    take_snapshot,
)

__version__ = "1.0.0"

__all__ = [
    "StegAgent",
    "UpdateResult",
    "NonVolatileAgent",
    "VolatileAgent",
    "ObliviousStore",
    "ObliviousStoreConfig",
    "ObliviousReader",
    "ObliviousCostModel",
    "oblivious_height",
    "overhead_factor",
    "AES",
    "CbcCipher",
    "FastFieldCipher",
    "FileAccessKey",
    "KeyRing",
    "Sha256Prng",
    "StegFsVolume",
    "VolumeConfig",
    "create_dummy_file",
    "RawStorage",
    "RawDevice",
    "Partition",
    "StorageGeometry",
    "DiskLatencyModel",
    "ZeroLatencyModel",
    "IoTrace",
    "take_snapshot",
    "diff_snapshots",
    "SteghideSystem",
    "build_steghide_system",
    "build_nonvolatile_system",
]


@dataclass
class SteghideSystem:
    """A ready-to-use bundle of storage, volume and agent.

    Produced by :func:`build_steghide_system` /
    :func:`build_nonvolatile_system`; convenient for examples and quick
    experiments that do not need to wire the pieces manually.
    """

    storage: RawStorage
    volume: StegFsVolume
    agent: StegAgent
    prng: Sha256Prng

    def new_fak(self, is_dummy: bool = False) -> FileAccessKey:
        """Generate a fresh file access key from the system PRNG."""
        return FileAccessKey.generate(self.prng.spawn(f"fak-{id(self)}-{self.prng.random()}"), is_dummy)


def _build_storage(volume_mib: int, seed: int, block_size: int) -> RawStorage:
    geometry = StorageGeometry.from_capacity(volume_mib * 1024 * 1024, block_size)
    storage = RawStorage(geometry)
    storage.fill_random(seed)
    return storage


def build_steghide_system(
    volume_mib: int = 64, seed: int = 0, block_size: int = 4096
) -> SteghideSystem:
    """Build a volatile-agent (Construction 2, "StegHide") system."""
    prng = Sha256Prng(seed)
    storage = _build_storage(volume_mib, seed, block_size)
    volume = StegFsVolume(RawDevice(storage), prng.spawn("volume"))
    agent = VolatileAgent(volume, prng.spawn("agent"))
    return SteghideSystem(storage=storage, volume=volume, agent=agent, prng=prng)


def build_nonvolatile_system(
    volume_mib: int = 64, seed: int = 0, block_size: int = 4096
) -> SteghideSystem:
    """Build a non-volatile-agent (Construction 1, "StegHide*") system."""
    prng = Sha256Prng(seed)
    storage = _build_storage(volume_mib, seed, block_size)
    volume = StegFsVolume(RawDevice(storage), prng.spawn("volume"))
    agent = NonVolatileAgent(volume, prng.spawn("agent"))
    return SteghideSystem(storage=storage, volume=volume, agent=agent, prng=prng)
