"""Open-file handles.

A :class:`HiddenFile` is the agent's in-memory handle on one hidden (or
dummy) file: the cached header plus the keys needed to read and update
the file's blocks.  The handle never touches the device itself — all
I/O goes through :class:`repro.stegfs.filesystem.StegFsVolume` so that
every device access is accounted and observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keys import FileAccessKey
from repro.stegfs.header import FileHeader


@dataclass
class HiddenFile:
    """An open hidden file: cached header plus the keys guarding its blocks.

    Attributes
    ----------
    header:
        The cached :class:`~repro.stegfs.header.FileHeader`.
    fak:
        The file access key that opened the file.
    header_key / content_key:
        The actual keys used to encrypt the header chain and the data
        blocks.  For the non-volatile agent these are the agent's master
        key; for the volatile agent they come from the FAK.
    dirty:
        Set when the cached header diverges from the on-disk copy
        (e.g. after block relocations) and needs to be saved.
    """

    header: FileHeader
    fak: FileAccessKey
    header_key: bytes = field(repr=False)
    content_key: bytes | None = field(repr=False)
    dirty: bool = False
    owner: str = ""
    _open_streams: set[str] = field(default_factory=set)

    @property
    def path(self) -> str:
        """Logical path of the file."""
        return self.header.path

    @property
    def is_dummy(self) -> bool:
        """Whether this is a dummy file (random content, no content key needed)."""
        return self.header.is_dummy

    @property
    def size_bytes(self) -> int:
        """Content length in bytes."""
        return self.header.file_size

    @property
    def num_blocks(self) -> int:
        """Number of data blocks."""
        return self.header.total_blocks

    def physical_block(self, logical_index: int) -> int:
        """Physical location of a logical block."""
        return self.header.physical_block(logical_index)

    def mark_dirty(self) -> None:
        """Flag the cached header as needing a save."""
        self.dirty = True

    def blocks(self) -> list[int]:
        """Physical locations of all data blocks, in logical order."""
        return list(self.header.block_pointers)
