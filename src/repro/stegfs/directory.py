"""Hidden directories: key-protected listings of child files.

The original StegFS (ref [12]) lets an owner organise hidden files into
directories that are themselves hidden: a directory is just a hidden
file whose content maps child names to their access keys, so knowing a
directory's FAK grants access to everything below it, while an attacker
who lacks the key cannot even tell the directory exists.

A directory entry stores the child's kind (file or directory), its path
and the three FAK components, serialised into a compact fixed-format
record.  Directories are read and written through the same agent/volume
code paths as any other hidden file, so every property of the update-
and traffic-hiding mechanisms applies to them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KEY_SIZE, FileAccessKey
from repro.errors import HiddenFileNotFoundError
from repro.stegfs.file import HiddenFile
from repro.stegfs.filesystem import StegFsVolume

_MAGIC = b"SGDR"
_KIND_FILE = 0
_KIND_DIRECTORY = 1


@dataclass(frozen=True)
class DirectoryEntry:
    """One child of a hidden directory."""

    name: str
    path: str
    fak: FileAccessKey
    is_directory: bool = False


def _encode_key(key: bytes | None) -> bytes:
    return key if key is not None else b"\x00" * KEY_SIZE


def _serialise_entry(entry: DirectoryEntry) -> bytes:
    name = entry.name.encode("utf-8")
    path = entry.path.encode("utf-8")
    record = bytearray()
    record.append(_KIND_DIRECTORY if entry.is_directory else _KIND_FILE)
    record.append(1 if entry.fak.is_dummy else 0)
    record += len(name).to_bytes(2, "big") + name
    record += len(path).to_bytes(2, "big") + path
    secret = entry.fak.secret
    record += len(secret).to_bytes(2, "big") + secret
    record += _encode_key(entry.fak.header_key)
    record.append(0 if entry.fak.content_key is None else 1)
    record += _encode_key(entry.fak.content_key)
    return bytes(record)


def _parse_entry(data: bytes, offset: int) -> tuple[DirectoryEntry, int]:
    kind = data[offset]
    is_dummy = bool(data[offset + 1])
    offset += 2
    name_len = int.from_bytes(data[offset : offset + 2], "big")
    offset += 2
    name = data[offset : offset + name_len].decode("utf-8")
    offset += name_len
    path_len = int.from_bytes(data[offset : offset + 2], "big")
    offset += 2
    path = data[offset : offset + path_len].decode("utf-8")
    offset += path_len
    secret_len = int.from_bytes(data[offset : offset + 2], "big")
    offset += 2
    secret = data[offset : offset + secret_len]
    offset += secret_len
    header_key = data[offset : offset + KEY_SIZE]
    offset += KEY_SIZE
    has_content_key = bool(data[offset])
    offset += 1
    content_key = data[offset : offset + KEY_SIZE] if has_content_key else None
    offset += KEY_SIZE
    fak = FileAccessKey(
        secret=secret, header_key=header_key, content_key=content_key, is_dummy=is_dummy
    )
    entry = DirectoryEntry(
        name=name, path=path, fak=fak, is_directory=kind == _KIND_DIRECTORY
    )
    return entry, offset


def serialise_directory(entries: list[DirectoryEntry]) -> bytes:
    """Pack a directory's entries into its hidden-file content."""
    body = bytearray(_MAGIC)
    body += len(entries).to_bytes(4, "big")
    for entry in entries:
        body += _serialise_entry(entry)
    return bytes(body)


def deserialise_directory(content: bytes) -> list[DirectoryEntry]:
    """Unpack a directory's hidden-file content."""
    if content[:4] != _MAGIC:
        raise HiddenFileNotFoundError("content is not a hidden directory")
    count = int.from_bytes(content[4:8], "big")
    entries = []
    offset = 8
    for _ in range(count):
        entry, offset = _parse_entry(content, offset)
        entries.append(entry)
    return entries


class HiddenDirectory:
    """A hidden directory opened through a StegFS volume.

    The directory content lives in an ordinary hidden file; this wrapper
    keeps the parsed entries in memory and rewrites the file when they
    change (creating the new version through whatever agent or volume
    write path the caller supplies keeps the hiding guarantees intact).
    """

    def __init__(self, volume: StegFsVolume, fak: FileAccessKey, path: str,
                 handle: HiddenFile, entries: list[DirectoryEntry]):
        self.volume = volume
        self.fak = fak
        self.path = path
        self._handle = handle
        self._entries = {entry.name: entry for entry in entries}

    # -- lifecycle ------------------------------------------------------------------

    @classmethod
    def create(cls, volume: StegFsVolume, fak: FileAccessKey, path: str) -> "HiddenDirectory":
        """Create an empty hidden directory at ``path``."""
        handle = volume.create_file(fak, path, serialise_directory([]))
        return cls(volume, fak, path, handle, [])

    @classmethod
    def open(cls, volume: StegFsVolume, fak: FileAccessKey, path: str) -> "HiddenDirectory":
        """Open an existing hidden directory from its FAK and path."""
        handle = volume.open_file(fak, path)
        entries = deserialise_directory(volume.read_file(handle))
        return cls(volume, fak, path, handle, entries)

    def _rewrite(self) -> None:
        """Persist the current entry list (delete + recreate the backing file)."""
        self.volume.delete_file(self._handle)
        self._handle = self.volume.create_file(
            self.fak, self.path, serialise_directory(list(self._entries.values()))
        )

    # -- queries --------------------------------------------------------------------

    def names(self) -> list[str]:
        """Child names, sorted."""
        return sorted(self._entries)

    def entry(self, name: str) -> DirectoryEntry:
        """The entry for ``name``."""
        if name not in self._entries:
            raise HiddenFileNotFoundError(f"{name!r} is not in directory {self.path!r}")
        return self._entries[name]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- mutation --------------------------------------------------------------------

    def add_file(self, name: str, fak: FileAccessKey, path: str) -> DirectoryEntry:
        """Record a child file's access key under ``name``."""
        entry = DirectoryEntry(name=name, path=path, fak=fak, is_directory=False)
        self._entries[name] = entry
        self._rewrite()
        return entry

    def add_subdirectory(self, name: str, fak: FileAccessKey, path: str) -> DirectoryEntry:
        """Record a child directory's access key under ``name``."""
        entry = DirectoryEntry(name=name, path=path, fak=fak, is_directory=True)
        self._entries[name] = entry
        self._rewrite()
        return entry

    def remove(self, name: str) -> None:
        """Forget a child (the child's own blocks are untouched)."""
        if name not in self._entries:
            raise HiddenFileNotFoundError(f"{name!r} is not in directory {self.path!r}")
        del self._entries[name]
        self._rewrite()

    # -- navigation -------------------------------------------------------------------

    def open_subdirectory(self, name: str) -> "HiddenDirectory":
        """Open a child directory recorded in this one."""
        entry = self.entry(name)
        if not entry.is_directory:
            raise HiddenFileNotFoundError(f"{name!r} is a file, not a directory")
        return HiddenDirectory.open(self.volume, entry.fak, entry.path)

    def open_file(self, name: str) -> HiddenFile:
        """Open a child file recorded in this directory."""
        entry = self.entry(name)
        if entry.is_directory:
            raise HiddenFileNotFoundError(f"{name!r} is a directory, not a file")
        return self.volume.open_file(entry.fak, entry.path)

    def resolve(self, relative_path: str) -> DirectoryEntry:
        """Resolve a multi-component path like ``"projects/2004/budget"``."""
        parts = [part for part in relative_path.split("/") if part]
        if not parts:
            raise HiddenFileNotFoundError("empty path")
        current = self
        for part in parts[:-1]:
            current = current.open_subdirectory(part)
        return current.entry(parts[-1])
