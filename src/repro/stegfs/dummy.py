"""Dummy files: hidden files whose blocks hold only random bytes.

Section 4.1.2: "All the dummy blocks in the raw storage belong to a
single dummy file, a hidden file whose FAK is held by the agent" (the
non-volatile construction).  Section 4.2.1: for the volatile
construction, "dummy blocks in the raw storage are organized into dummy
files of approximately the size of data files, and distributed to the
users."

A dummy file is structurally identical to any other hidden file; only
its content is meaningless, which is exactly why an observer cannot
tell dummy traffic from real traffic.
"""

from __future__ import annotations

from repro.crypto.keys import FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.stegfs.file import HiddenFile
from repro.stegfs.filesystem import StegFsVolume


def build_dummy_content(prng: Sha256Prng, num_blocks: int, data_field_bytes: int) -> bytes:
    """Random content filling ``num_blocks`` whole data blocks."""
    if num_blocks < 0:
        raise ValueError("num_blocks must be non-negative")
    return prng.random_bytes(num_blocks * data_field_bytes)


def create_dummy_file(
    volume: StegFsVolume,
    path: str,
    num_blocks: int,
    prng: Sha256Prng,
    fak: FileAccessKey | None = None,
    header_key: bytes | None = None,
    content_key: bytes | None = None,
    stream: str = "default",
) -> tuple[FileAccessKey, HiddenFile]:
    """Create a dummy file of ``num_blocks`` blocks and return its FAK and handle.

    The dummy file's content key is never needed to use the file (its
    content is random), so the blocks are encrypted under the header key
    unless an explicit ``content_key`` is supplied (the non-volatile
    agent passes its master key).
    """
    if fak is None:
        fak = FileAccessKey.generate(prng.spawn(f"dummy-fak:{path}"), is_dummy=True)
    content = build_dummy_content(
        prng.spawn(f"dummy-content:{path}"), num_blocks, volume.data_field_bytes
    )
    handle = volume.create_file(
        fak,
        path,
        content,
        header_key=header_key,
        content_key=content_key,
        is_dummy=True,
        stream=stream,
    )
    return fak, handle
