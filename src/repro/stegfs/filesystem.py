"""The StegFS volume: hidden files over an encrypted, randomised block device.

This is the substrate of ref [12] that the paper's two mechanisms build
on.  The volume

* keeps every block encrypted with a per-block IV (Section 4.1.1),
* locates the root header of a file purely from its FAK and path
  (Section 4.1.2), falling back to a deterministic probe sequence when
  the derived slot is occupied,
* scatters data and header blocks uniformly at random, and
* maintains the allocation table (the equivalent of StegFS's encrypted
  block bitmap) so new allocations never overwrite existing hidden data.

The volume is deliberately *passive*: it performs exactly the device
I/O it is asked to and leaves all hiding policy (dummy updates, block
relocation, oblivious caching) to the agents in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.crypto.cipher import FastFieldCipher, FieldCipher
from repro.crypto.keys import FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.errors import (
    HiddenFileNotFoundError,
    IntegrityError,
    VolumeFullError,
)
from repro.stegfs.allocator import RandomAllocator
from repro.stegfs.constants import NO_BLOCK
from repro.stegfs.file import HiddenFile
from repro.stegfs.header import FileHeader, path_digest
from repro.storage.block import BLOCK_IV_SIZE, StoredBlock, data_field_size
from repro.storage.device import BlockDevice

CipherFactory = Callable[[bytes], FieldCipher]


@dataclass
class VolumeConfig:
    """Tunable knobs of a StegFS volume.

    Attributes
    ----------
    cipher_factory:
        Builds a length-preserving cipher from a key.  The default is
        the fast SHAKE-256 stream cipher; tests can pass
        ``lambda key: CbcCipher(key, pad=False)`` for authentic AES-CBC.
    header_probe_limit:
        Maximum number of candidate slots tried when placing or locating
        a root header.  The default tolerates volumes that are ~98%
        occupied; probing is cheap because placement probes consult only
        the in-memory allocation table.
    """

    cipher_factory: CipherFactory = FastFieldCipher
    header_probe_limit: int = 256


class StegFsVolume:
    """A steganographic file system over one block device (or partition)."""

    def __init__(
        self,
        device: BlockDevice,
        prng: Sha256Prng,
        config: VolumeConfig | None = None,
    ):
        self.device = device
        self.config = config if config is not None else VolumeConfig()
        self._prng = prng
        self._iv_prng = prng.spawn("iv")
        self.allocator = RandomAllocator(device.num_blocks, prng.spawn("allocator"))
        self._cipher_cache: dict[bytes, FieldCipher] = {}

    # -- geometry ----------------------------------------------------------------

    @property
    def block_size(self) -> int:
        """Raw block size of the underlying device."""
        return self.device.block_size

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the volume."""
        return self.device.num_blocks

    @property
    def data_field_bytes(self) -> int:
        """Usable payload bytes per block (block size minus the IV)."""
        return data_field_size(self.device.block_size)

    @property
    def utilisation(self) -> float:
        """Fraction of blocks holding useful data (headers included)."""
        return self.allocator.utilisation

    # -- low-level encrypted block access ------------------------------------------

    def cipher_for(self, key: bytes) -> FieldCipher:
        """Return (and cache) the field cipher for ``key``."""
        cipher = self._cipher_cache.get(key)
        if cipher is None:
            cipher = self.config.cipher_factory(key)
            self._cipher_cache[key] = cipher
        return cipher

    def fresh_iv(self) -> bytes:
        """Draw a fresh per-block IV."""
        return self._iv_prng.random_bytes(BLOCK_IV_SIZE)

    def fresh_ivs(self, count: int) -> list[bytes]:
        """Draw ``count`` fresh IVs in one call.

        The PRNG is a buffered counter-mode stream, so one draw of
        ``count * BLOCK_IV_SIZE`` bytes consumes exactly the bytes that
        ``count`` :meth:`fresh_iv` calls would — the IVs are
        bit-identical, only the per-call overhead collapses.
        """
        stream = self._iv_prng.random_bytes(BLOCK_IV_SIZE * count)
        return [stream[i : i + BLOCK_IV_SIZE] for i in range(0, len(stream), BLOCK_IV_SIZE)]

    def _pad_payload(self, payload: bytes) -> bytes:
        if len(payload) > self.data_field_bytes:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds data field of {self.data_field_bytes}"
            )
        return payload + b"\x00" * (self.data_field_bytes - len(payload))

    def write_payload(
        self,
        index: int,
        key: bytes,
        payload: bytes,
        stream: str = "default",
        iv: bytes | None = None,
    ) -> None:
        """Encrypt ``payload`` under ``key`` with a fresh IV and write it to ``index``."""
        iv = iv if iv is not None else self.fresh_iv()
        block = StoredBlock.seal(self.cipher_for(key), iv, self._pad_payload(payload))
        self.device.write_block(index, block.raw, stream)

    def read_payload(self, index: int, key: bytes, stream: str = "default") -> bytes:
        """Read block ``index`` and decrypt its data field under ``key``."""
        raw = self.device.read_block(index, stream)
        return StoredBlock.from_raw(raw).open(self.cipher_for(key))

    # -- batched encrypted block access ---------------------------------------------
    #
    # The batched paths draw IVs, produce ciphertexts and issue device
    # requests in exactly the order the equivalent single-block loops
    # would, so the written bytes and the observable I/O trace are
    # byte-identical; only the Python-level per-block overhead goes away.

    def seal_payloads(
        self, key: bytes, payloads: list[bytes], ivs: list[bytes]
    ) -> list[bytes]:
        """Pad and encrypt payloads under ``key``, returning raw on-disk blocks."""
        padded = [self._pad_payload(payload) for payload in payloads]
        ciphertexts = self.cipher_for(key).encrypt_many(ivs, padded)
        return [iv + ciphertext for iv, ciphertext in zip(ivs, ciphertexts, strict=True)]

    def write_payloads(
        self,
        indices: list[int],
        key: bytes,
        payloads: list[bytes],
        stream: str = "default",
    ) -> None:
        """Batched :meth:`write_payload` over many blocks in one device call."""
        if len(indices) != len(payloads):
            raise ValueError(f"{len(indices)} indices but {len(payloads)} payloads")
        if not indices:
            return
        ivs = [self.fresh_iv() for _ in payloads]
        datas = self.seal_payloads(key, payloads, ivs)
        write_blocks = getattr(self.device, "write_blocks", None)
        if write_blocks is not None:
            write_blocks(indices, datas, stream)
        else:
            for index, data in zip(indices, datas, strict=True):
                self.device.write_block(index, data, stream)

    def read_payloads(self, indices: list[int], key: bytes, stream: str = "default") -> list[bytes]:
        """Batched :meth:`read_payload` over many blocks in one device call."""
        if not indices:
            return []
        read_blocks = getattr(self.device, "read_blocks", None)
        if read_blocks is not None:
            raws = read_blocks(indices, stream)
        else:
            raws = [self.device.read_block(index, stream) for index in indices]
        blocks = [StoredBlock.from_raw(raw) for raw in raws]
        return self.cipher_for(key).decrypt_many(
            [block.iv for block in blocks], [block.ciphertext for block in blocks]
        )

    def rewrite_with_new_iv(self, index: int, key: bytes, stream: str = "default") -> None:
        """Perform a dummy update on block ``index``: decrypt, new IV, re-encrypt.

        This is the paper's primitive for making a block *look* updated
        without changing its contents (Section 4.1.3).  It costs exactly
        one read and one write.
        """
        raw = self.device.read_block(index, stream)
        block = StoredBlock.from_raw(raw)
        resealed = block.reseal_with_new_iv(self.cipher_for(key), self.fresh_iv())
        self.device.write_block(index, resealed.raw, stream)

    # -- content packing -------------------------------------------------------------

    def blocks_for_size(self, size_bytes: int) -> int:
        """Number of data blocks needed to store ``size_bytes`` of content."""
        if size_bytes <= 0:
            return 0
        return -(-size_bytes // self.data_field_bytes)

    def _split_content(self, content: bytes) -> list[bytes]:
        step = self.data_field_bytes
        return [content[i : i + step] for i in range(0, len(content), step)] or []

    # -- header placement and lookup ---------------------------------------------------

    def _place_root_header(self, fak: FileAccessKey, path: str) -> int:
        """Choose and allocate the root header slot from the FAK probe sequence."""
        for candidate in fak.header_probe_sequence(
            path, self.num_blocks, self.config.header_probe_limit
        ):
            if self.allocator.allocate_specific(candidate):
                return candidate
        raise VolumeFullError(
            f"no free slot in the {self.config.header_probe_limit}-entry "
            f"probe sequence for {path!r}"
        )

    def _locate_root_header(
        self, fak: FileAccessKey, path: str, header_key: bytes, stream: str
    ) -> tuple[int, "object"]:
        """Walk the probe sequence until a block parses as this file's header.

        A candidate must both decrypt into a well-formed header *and* carry
        this path's digest — another file encrypted under the same key (e.g.
        a sibling opened with the same master key) is skipped, not returned.
        """
        expected_digest = path_digest(path)
        for candidate in fak.header_probe_sequence(
            path, self.num_blocks, self.config.header_probe_limit
        ):
            try:
                payload = self.read_payload(candidate, header_key, stream)
                chunk = FileHeader.parse_chunk(payload)
            except IntegrityError:
                continue
            if chunk.path_digest != expected_digest:
                continue
            return candidate, chunk
        raise HiddenFileNotFoundError(f"no header found for {path!r} with the supplied key")

    # -- file operations ------------------------------------------------------------------

    def create_file(
        self,
        fak: FileAccessKey,
        path: str,
        content: bytes,
        header_key: bytes | None = None,
        content_key: bytes | None = None,
        is_dummy: bool = False,
        stream: str = "default",
    ) -> HiddenFile:
        """Create a hidden file and write its header chain and data blocks.

        ``header_key``/``content_key`` default to the FAK's own keys
        (volatile-agent construction); the non-volatile agent passes its
        master key for both.
        """
        header_key = header_key if header_key is not None else fak.header_key
        if content_key is None:
            content_key = fak.content_key if fak.content_key is not None else header_key

        chunks = self._split_content(content)
        needed_data_blocks = len(chunks)
        # Rough pre-check so we fail before allocating anything.
        if needed_data_blocks + 1 > self.allocator.free_blocks:
            raise VolumeFullError(
                f"file needs {needed_data_blocks + 1}+ blocks, only "
                f"{self.allocator.free_blocks} free"
            )

        root = self._place_root_header(fak, path)
        try:
            data_blocks = self.allocator.allocate_many(needed_data_blocks)
        except VolumeFullError:
            self.allocator.free(root)
            raise

        header = FileHeader(
            path=path,
            file_size=len(content),
            block_pointers=data_blocks,
            header_blocks=[root],
            is_dummy=is_dummy,
        )
        extra_headers = header.headers_needed(self.data_field_bytes) - 1
        if extra_headers > 0:
            try:
                header.header_blocks.extend(self.allocator.allocate_many(extra_headers))
            except VolumeFullError:
                for index in data_blocks:
                    self.allocator.free(index)
                self.allocator.free(root)
                raise

        handle = HiddenFile(
            header=header,
            fak=fak,
            header_key=header_key,
            content_key=content_key,
        )
        self.write_payloads(header.block_pointers[: len(chunks)], content_key, chunks, stream)
        self.save_header(handle, stream)
        return handle

    def open_file(
        self,
        fak: FileAccessKey,
        path: str,
        header_key: bytes | None = None,
        content_key: bytes | None = None,
        stream: str = "default",
    ) -> HiddenFile:
        """Locate and load a hidden file's header chain from its FAK and path."""
        header_key = header_key if header_key is not None else fak.header_key
        if content_key is None:
            content_key = fak.content_key if fak.content_key is not None else header_key

        root, chunk = self._locate_root_header(fak, path, header_key, stream)
        chunks = [chunk]
        header_blocks = [root]
        current = chunk
        while current.has_next and current.next_header != NO_BLOCK:
            next_index = current.next_header
            payload = self.read_payload(next_index, header_key, stream)
            current = FileHeader.parse_chunk(payload)
            chunks.append(current)
            header_blocks.append(next_index)

        header = FileHeader.from_chunks(path, chunks, header_blocks)
        # Re-register the file's blocks with the allocation table; opening a
        # file after an agent restart (volatile agent) is how the allocator
        # re-learns which blocks are live.
        for index in header.all_blocks():
            self.allocator.allocate_specific(index)
        return HiddenFile(
            header=header,
            fak=fak,
            header_key=header_key,
            content_key=content_key,
        )

    def plan_header_save(self, handle: HiddenFile) -> tuple[list[int], list[bytes]]:
        """Plan a header-chain save: bookkeeping and sealing, no device I/O.

        Grows/shrinks the chain through the allocator, serialises and
        seals the chunks, and returns ``(indices, raw_blocks)`` ready
        for the device.  Allocator and IV draws happen here, in the
        exact order the unplanned save performed them, so a planned
        save is draw- and byte-identical to the legacy path.  The
        handle is marked clean once the plan exists: the plan *is* the
        pending save (a journalled intent), and executing it is the
        caller's obligation.
        """
        header = handle.header
        needed = header.headers_needed(self.data_field_bytes)
        while len(header.header_blocks) < needed:
            header.header_blocks.append(self.allocator.allocate_random())
        while len(header.header_blocks) > needed:
            surplus = header.header_blocks.pop()
            self.allocator.free(surplus)
        payloads = header.serialise(self.data_field_bytes)
        count = min(len(header.header_blocks), len(payloads))
        ivs = [self.fresh_iv() for _ in payloads[:count]]
        datas = self.seal_payloads(handle.header_key, payloads[:count], ivs)
        handle.dirty = False
        return header.header_blocks[:count], datas

    def save_header(self, handle: HiddenFile, stream: str = "default") -> None:
        """Write the cached header chain back to the device.

        The header chain may have grown (block relocations never grow
        it, but appends do); extra chain blocks are allocated on demand.
        """
        indices, datas = self.plan_header_save(handle)
        self.device.write_blocks(indices, datas, stream)

    def read_block(self, handle: HiddenFile, logical_index: int, stream: str = "default") -> bytes:
        """Read and decrypt one logical data block of an open file."""
        physical = handle.header.physical_block(logical_index)
        return self.read_payload(physical, handle.content_key, stream)

    def read_file(self, handle: HiddenFile, stream: str = "default") -> bytes:
        """Read the whole file content, in logical block order."""
        physicals = [handle.header.physical_block(i) for i in range(handle.num_blocks)]
        pieces = self.read_payloads(physicals, handle.content_key, stream)
        return b"".join(pieces)[: handle.size_bytes]

    def write_block_in_place(
        self, handle: HiddenFile, logical_index: int, payload: bytes, stream: str = "default"
    ) -> None:
        """Update one logical block at its current location (plain StegFS behaviour).

        This is the baseline update path *without* the paper's hiding
        mechanism: one read-modify-write at a fixed location, which is
        exactly what the update-analysis attacker exploits.
        """
        physical = handle.header.physical_block(logical_index)
        # Read-modify-write: real file systems fetch the block before updating it.
        self.device.read_block(physical, stream)
        self.write_payload(physical, handle.content_key, payload, stream)

    def delete_file(self, handle: HiddenFile, stream: str = "default") -> None:
        """Release all blocks of a file back to the dummy pool.

        The freed blocks keep their (now meaningless) ciphertext, so
        deletion leaves no trace distinguishable from dummy data.
        """
        self.allocator.free_many(handle.header.all_blocks())
        handle.header.block_pointers.clear()
        handle.header.header_blocks.clear()
        handle.header.file_size = 0
        handle.dirty = False

    def plan_append_block(self, handle: HiddenFile, payload: bytes) -> tuple[int, int, bytes]:
        """Plan one appended block: allocate, account and seal, no device I/O.

        Returns ``(logical, physical, raw_block)``; the caller owns the
        device write.  The allocator and IV draws run in the order the
        unplanned append performed them, so plans stay draw-identical.
        """
        physical = self.allocator.allocate_random()
        logical = handle.num_blocks
        handle.header.block_pointers.append(physical)
        handle.header.file_size = logical * self.data_field_bytes + len(payload)
        [sealed] = self.seal_payloads(handle.content_key, [payload], [self.fresh_iv()])
        handle.mark_dirty()
        return logical, physical, sealed

    def append_block(self, handle: HiddenFile, payload: bytes, stream: str = "default") -> int:
        """Append one data block to a file, returning its logical index."""
        logical, physical, sealed = self.plan_append_block(handle, payload)
        self.device.write_block(physical, sealed, stream)
        return logical
