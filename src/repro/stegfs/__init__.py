"""StegFS substrate: the steganographic file system of ref [12].

The paper builds its two access-hiding mechanisms on top of the authors'
earlier StegFS (ICDE 2003).  This subpackage implements that substrate:

* every block of the volume is encrypted and initially filled with
  random bytes, so data blocks, dummy blocks and abandoned blocks are
  indistinguishable without a key;
* a hidden file is a set of data blocks organised in a tree rooted at a
  *file header* whose location is derivable from the file's access key
  (FAK) and path name;
* dummy files are hidden files whose blocks hold only random bytes.

The update-hiding agents and the oblivious storage in :mod:`repro.core`
drive this layer.
"""

from repro.stegfs.allocator import RandomAllocator
from repro.stegfs.constants import HEADER_MAGIC, NO_BLOCK
from repro.stegfs.directory import DirectoryEntry, HiddenDirectory
from repro.stegfs.dummy import build_dummy_content, create_dummy_file
from repro.stegfs.file import HiddenFile
from repro.stegfs.filesystem import StegFsVolume, VolumeConfig
from repro.stegfs.header import FileHeader

__all__ = [
    "RandomAllocator",
    "HEADER_MAGIC",
    "NO_BLOCK",
    "DirectoryEntry",
    "HiddenDirectory",
    "HiddenFile",
    "FileHeader",
    "StegFsVolume",
    "VolumeConfig",
    "build_dummy_content",
    "create_dummy_file",
]
