"""In-memory file header and its on-disk serialisation.

Section 4.1.2 of the paper: "A hidden file is a set of data blocks that
are organized in a tree structure, with the file header as the root
node. ... The location of the header of a hidden file is derivable from
its access key FAK and path name."

The header records the physical location of every data block of the
file (necessary because the update-hiding agents relocate blocks on
every update).  When the pointer list does not fit in one block, the
header spills into a chain of continuation header blocks, each stored —
like all other blocks — at a location indistinguishable from random.

While a file is open the header lives in the agent's cache and is only
written back when the file is saved (Section 4.1.5), so header
maintenance does not add to the per-update I/O cost.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import IntegrityError
from repro.stegfs.constants import (
    FLAG_DUMMY,
    FLAG_HAS_NEXT,
    HEADER_FIXED_SIZE,
    HEADER_MAGIC,
    NO_BLOCK,
    POINTER_SIZE,
    pointers_per_header,
)


def path_digest(path: str) -> bytes:
    """16-byte digest of a path, stored in the header for validation."""
    return hashlib.sha256(path.encode("utf-8")).digest()[:16]


@dataclass
class FileHeader:
    """The in-memory (agent cache) view of a hidden file's metadata.

    Attributes
    ----------
    path:
        Logical path of the file (known only to the key holder).
    file_size:
        Length of the file content in bytes.
    block_pointers:
        Physical block index of each logical data block, in order.
    header_blocks:
        Physical locations of the header chain; the first entry is the
        root header block derived from the FAK and path.
    is_dummy:
        True for dummy files (content is random bytes).
    """

    path: str
    file_size: int = 0
    block_pointers: list[int] = field(default_factory=list)
    header_blocks: list[int] = field(default_factory=list)
    is_dummy: bool = False

    @property
    def total_blocks(self) -> int:
        """Number of data blocks in the file."""
        return len(self.block_pointers)

    def physical_block(self, logical_index: int) -> int:
        """Physical location of logical block ``logical_index``."""
        return self.block_pointers[logical_index]

    def relocate(self, logical_index: int, new_physical: int) -> int:
        """Point logical block ``logical_index`` at a new physical block.

        Returns the previous physical location (which becomes a dummy
        block after the move).
        """
        old = self.block_pointers[logical_index]
        self.block_pointers[logical_index] = new_physical
        return old

    def logical_of_physical(self, physical: int) -> int | None:
        """Logical index of a physical block, or None if not part of the file."""
        try:
            return self.block_pointers.index(physical)
        except ValueError:
            return None

    def all_blocks(self) -> set[int]:
        """Every physical block the file occupies (data + header chain)."""
        return set(self.block_pointers) | set(self.header_blocks)

    # -- serialisation --------------------------------------------------------

    def headers_needed(self, data_field_bytes: int) -> int:
        """How many header blocks are required to hold the pointer list."""
        per_block = pointers_per_header(data_field_bytes)
        return max(1, -(-len(self.block_pointers) // per_block))

    def serialise(self, data_field_bytes: int) -> list[bytes]:
        """Serialise the header into a chain of data-field payloads.

        ``header_blocks`` must already contain one physical location per
        chain element (see :meth:`headers_needed`); the serialised
        payloads embed the *next* pointers from that list.
        """
        per_block = pointers_per_header(data_field_bytes)
        needed = self.headers_needed(data_field_bytes)
        if len(self.header_blocks) < needed:
            raise ValueError(
                f"header chain has {len(self.header_blocks)} locations, needs {needed}"
            )
        digest = path_digest(self.path)
        payloads = []
        for chunk_index in range(needed):
            chunk = self.block_pointers[chunk_index * per_block : (chunk_index + 1) * per_block]
            has_next = chunk_index + 1 < needed
            flags = (FLAG_DUMMY if self.is_dummy else 0) | (FLAG_HAS_NEXT if has_next else 0)
            next_header = self.header_blocks[chunk_index + 1] if has_next else NO_BLOCK
            body = bytearray()
            body += HEADER_MAGIC
            body.append(flags)
            body += b"\x00" * 3
            body += self.file_size.to_bytes(8, "big")
            body += self.total_blocks.to_bytes(4, "big")
            body += len(chunk).to_bytes(4, "big")
            body += next_header.to_bytes(8, "big")
            body += digest
            for pointer in chunk:
                body += pointer.to_bytes(POINTER_SIZE, "big")
            body += b"\x00" * (data_field_bytes - len(body))
            payloads.append(bytes(body))
        return payloads

    @staticmethod
    def parse_chunk(payload: bytes) -> "HeaderChunk":
        """Parse one header-block payload into a :class:`HeaderChunk`."""
        if payload[:4] != HEADER_MAGIC:
            raise IntegrityError("header magic mismatch (wrong key or not a header block)")
        flags = payload[4]
        file_size = int.from_bytes(payload[8:16], "big")
        total_blocks = int.from_bytes(payload[16:20], "big")
        pointer_count = int.from_bytes(payload[20:24], "big")
        next_header = int.from_bytes(payload[24:32], "big")
        digest = payload[32:48]
        pointers = []
        offset = HEADER_FIXED_SIZE
        for _ in range(pointer_count):
            pointers.append(int.from_bytes(payload[offset : offset + POINTER_SIZE], "big"))
            offset += POINTER_SIZE
        return HeaderChunk(
            is_dummy=bool(flags & FLAG_DUMMY),
            has_next=bool(flags & FLAG_HAS_NEXT),
            file_size=file_size,
            total_blocks=total_blocks,
            pointers=pointers,
            next_header=next_header,
            path_digest=digest,
        )

    @classmethod
    def from_chunks(
        cls, path: str, chunks: list["HeaderChunk"], header_blocks: list[int]
    ) -> "FileHeader":
        """Rebuild a header from a parsed chain of chunks."""
        if not chunks:
            raise IntegrityError("empty header chain")
        expected_digest = path_digest(path)
        for chunk in chunks:
            if chunk.path_digest != expected_digest:
                raise IntegrityError("header path digest mismatch (wrong path or key)")
        pointers: list[int] = []
        for chunk in chunks:
            pointers.extend(chunk.pointers)
        first = chunks[0]
        if len(pointers) != first.total_blocks:
            raise IntegrityError(
                f"header chain has {len(pointers)} pointers, expected {first.total_blocks}"
            )
        return cls(
            path=path,
            file_size=first.file_size,
            block_pointers=pointers,
            header_blocks=list(header_blocks),
            is_dummy=first.is_dummy,
        )


@dataclass(frozen=True)
class HeaderChunk:
    """One parsed element of a header chain."""

    is_dummy: bool
    has_next: bool
    file_size: int
    total_blocks: int
    pointers: list[int]
    next_header: int
    path_digest: bytes
