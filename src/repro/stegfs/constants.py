"""Layout constants shared by the StegFS on-disk structures."""

from __future__ import annotations

# Magic bytes identifying a correctly decrypted header block.  A wrong
# header key yields pseudo-random plaintext, so the probability of the
# magic matching by accident is 2^-32.
HEADER_MAGIC = b"SGFS"

# Sentinel block pointer meaning "no block".
NO_BLOCK = (1 << 64) - 1

# Header field sizes (bytes).
MAGIC_SIZE = 4
FLAGS_SIZE = 1
RESERVED_SIZE = 3
FILE_SIZE_FIELD = 8
TOTAL_BLOCKS_FIELD = 4
POINTER_COUNT_FIELD = 4
NEXT_HEADER_FIELD = 8
PATH_DIGEST_SIZE = 16
POINTER_SIZE = 8

HEADER_FIXED_SIZE = (
    MAGIC_SIZE
    + FLAGS_SIZE
    + RESERVED_SIZE
    + FILE_SIZE_FIELD
    + TOTAL_BLOCKS_FIELD
    + POINTER_COUNT_FIELD
    + NEXT_HEADER_FIELD
    + PATH_DIGEST_SIZE
)

# Header flag bits.
FLAG_DUMMY = 0x01
FLAG_HAS_NEXT = 0x02


def pointers_per_header(data_field_bytes: int) -> int:
    """How many block pointers fit in one header block of the given payload size."""
    usable = data_field_bytes - HEADER_FIXED_SIZE
    if usable < POINTER_SIZE:
        raise ValueError(
            f"data field of {data_field_bytes} bytes cannot hold a file header"
        )
    return usable // POINTER_SIZE
