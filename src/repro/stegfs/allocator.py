"""Random block allocation for the StegFS volume.

StegFS scatters the blocks of hidden files uniformly across the volume
(Section 2.1), which is what makes data blocks indistinguishable from
abandoned/dummy blocks and what makes every data access a random I/O.

The allocator keeps the volume's allocation table — the equivalent of
StegFS's encrypted block allocation bitmap — so that newly created files
never overwrite blocks that belong to files whose keys the agent does
not currently hold.
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.prng import Sha256Prng
from repro.errors import VolumeFullError
from repro.storage.bitmap import Bitmap


class RandomAllocator:
    """Allocates uniformly random free blocks from a volume.

    Parameters
    ----------
    num_blocks:
        Size of the volume in blocks.
    prng:
        Source of randomness for block selection.
    max_probes:
        How many random probes to try before falling back to scanning
        the bitmap (only relevant on nearly full volumes).
    """

    def __init__(self, num_blocks: int, prng: Sha256Prng, max_probes: int = 4096):
        self.bitmap = Bitmap(num_blocks)
        self._num_blocks = num_blocks
        self._prng = prng
        self._max_probes = max_probes

    @property
    def num_blocks(self) -> int:
        """Total number of blocks managed."""
        return self._num_blocks

    @property
    def used_blocks(self) -> int:
        """Number of allocated (data) blocks."""
        return self.bitmap.set_count

    @property
    def free_blocks(self) -> int:
        """Number of unallocated (dummy/abandoned) blocks."""
        return self.bitmap.clear_count

    @property
    def utilisation(self) -> float:
        """Fraction of the volume holding useful data."""
        return self.used_blocks / self._num_blocks

    def is_allocated(self, index: int) -> bool:
        """Whether block ``index`` currently holds useful data."""
        return self.bitmap.get(index)

    def allocate_random(self) -> int:
        """Allocate one uniformly random free block."""
        if self.free_blocks == 0:
            raise VolumeFullError("no free blocks left in the volume")
        for _ in range(self._max_probes):
            candidate = self._prng.randrange(self._num_blocks)
            if not self.bitmap.get(candidate):
                self.bitmap.set(candidate)
                return candidate
        # Extremely full volume: pick uniformly among the remaining free blocks.
        free = list(self.bitmap.iter_clear())
        choice = self._prng.choice(free)
        self.bitmap.set(choice)
        return choice

    def allocate_many(self, count: int) -> list[int]:
        """Allocate ``count`` random free blocks."""
        if count > self.free_blocks:
            raise VolumeFullError(
                f"requested {count} blocks but only {self.free_blocks} are free"
            )
        return [self.allocate_random() for _ in range(count)]

    def allocate_specific(self, index: int) -> bool:
        """Allocate a specific block; returns False if it was already taken."""
        if self.bitmap.get(index):
            return False
        self.bitmap.set(index)
        return True

    def free(self, index: int) -> None:
        """Return a block to the free pool (it becomes a dummy block)."""
        self.bitmap.clear(index)

    def free_many(self, indices: Iterable[int]) -> None:
        """Return a run of blocks to the free pool (deletion's bookkeeping)."""
        for index in indices:
            self.bitmap.clear(index)

    def transfer(self, old_index: int, new_index: int) -> None:
        """Record a block relocation: ``old_index`` freed, ``new_index`` taken.

        Used by the Figure-6 update algorithm when a data block swaps
        places with a dummy block.
        """
        self.bitmap.clear(old_index)
        self.bitmap.set(new_index)
