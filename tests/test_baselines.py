"""Unit tests for the baseline file systems and the adapter interface."""

from __future__ import annotations

import pytest

from repro.baselines.cleandisk import CleanDiskFileSystem
from repro.baselines.fragdisk import FragDiskFileSystem
from repro.baselines.plainstegfs import PlainStegFsAdapter
from repro.baselines.steghide import StegHideAdapter
from repro.core.nonvolatile import NonVolatileAgent
from repro.crypto.prng import Sha256Prng
from repro.errors import VolumeFullError
from repro.stegfs.filesystem import StegFsVolume
from repro.storage.device import RawDevice

from conftest import make_storage


def _content(adapter, blocks: int, fill: bytes = b"z") -> bytes:
    return fill * (adapter.payload_bytes * blocks)


class TestCleanDisk:
    def test_contiguous_allocation(self, storage):
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", _content(fs, 5))
        blocks = handle.native_handle
        assert blocks == list(range(blocks[0], blocks[0] + 5))

    def test_read_roundtrip(self, storage):
        fs = CleanDiskFileSystem(storage)
        content = b"clean disk data" * 100
        handle = fs.create_file("/a", content)
        assert fs.read_file(handle) == content

    def test_read_block(self, storage):
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", _content(fs, 2, b"A") + _content(fs, 1, b"B"))
        assert fs.read_block(handle, 2) == _content(fs, 1, b"B")

    def test_update_in_place(self, storage):
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", _content(fs, 3))
        fs.update_blocks(handle, 1, [b"updated" + b"\x00" * 10])
        assert fs.read_block(handle, 1).startswith(b"updated")
        assert handle.native_handle == sorted(handle.native_handle)

    def test_sequential_files_packed_back_to_back(self, storage):
        fs = CleanDiskFileSystem(storage)
        h1 = fs.create_file("/a", _content(fs, 3))
        h2 = fs.create_file("/b", _content(fs, 3))
        assert h2.native_handle[0] == h1.native_handle[-1] + 1

    def test_volume_full(self, storage):
        fs = CleanDiskFileSystem(storage)
        with pytest.raises(VolumeFullError):
            fs.create_file("/big", _content(fs, storage.geometry.num_blocks + 1))

    def test_utilisation(self, storage):
        fs = CleanDiskFileSystem(storage)
        fs.create_file("/a", _content(fs, storage.geometry.num_blocks // 4))
        assert fs.utilisation == pytest.approx(0.25)

    def test_sequential_read_is_cheap(self):
        storage = make_storage(timed=True)
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", _content(fs, 100))
        storage.reset_counters()
        fs.read_file(handle)
        # 100 blocks: one seek plus ~99 sequential transfers.
        assert (
            storage.clock_ms
            < 2 * storage.latency.random_access_ms + 100 * storage.latency.sequential_access_ms
        )


class TestFragDisk:
    def test_fragments_of_eight_blocks(self, storage, prng):
        fs = FragDiskFileSystem(storage, prng)
        handle = fs.create_file("/a", _content(fs, 24))
        blocks = handle.native_handle
        for start in range(0, 24, 8):
            fragment = blocks[start : start + 8]
            assert fragment == list(range(fragment[0], fragment[0] + 8))

    def test_fragments_are_scattered(self, storage, prng):
        fs = FragDiskFileSystem(storage, prng)
        handle = fs.create_file("/a", _content(fs, 32))
        blocks = handle.native_handle
        fragment_starts = [blocks[i] for i in range(0, 32, 8)]
        gaps = [b - a for a, b in zip(fragment_starts, fragment_starts[1:], strict=False)]
        assert any(abs(gap) != 8 for gap in gaps)

    def test_read_roundtrip(self, storage, prng):
        fs = FragDiskFileSystem(storage, prng)
        content = b"fragmented" * 500
        handle = fs.create_file("/a", content)
        assert fs.read_file(handle) == content

    def test_update_in_place(self, storage, prng):
        fs = FragDiskFileSystem(storage, prng)
        handle = fs.create_file("/a", _content(fs, 10))
        before = list(handle.native_handle)
        fs.update_blocks(handle, 4, [b"new data"])
        assert handle.native_handle == before
        assert fs.read_block(handle, 4).startswith(b"new data")

    def test_no_overlap_between_files(self, storage, prng):
        fs = FragDiskFileSystem(storage, prng)
        h1 = fs.create_file("/a", _content(fs, 20))
        h2 = fs.create_file("/b", _content(fs, 20))
        assert set(h1.native_handle).isdisjoint(h2.native_handle)

    def test_full_volume_rejected(self, prng):
        storage = make_storage(num_blocks=32)
        fs = FragDiskFileSystem(storage, prng)
        fs.create_file("/a", _content(fs, 24))
        with pytest.raises(VolumeFullError):
            fs.create_file("/b", _content(fs, 16))

    def test_read_slower_than_cleandisk_faster_than_random(self):
        storage_frag = make_storage(timed=True)
        storage_clean = make_storage(timed=True)
        frag = FragDiskFileSystem(storage_frag, Sha256Prng("frag"))
        clean = CleanDiskFileSystem(storage_clean)
        h_frag = frag.create_file("/a", _content(frag, 64))
        h_clean = clean.create_file("/a", _content(clean, 64))
        storage_frag.reset_counters()
        storage_clean.reset_counters()
        frag.read_file(h_frag)
        clean.read_file(h_clean)
        assert storage_clean.clock_ms < storage_frag.clock_ms
        # But fragmentation still beats 64 fully random accesses.
        assert storage_frag.clock_ms < 64 * storage_frag.latency.random_access_ms


class TestStegAdapters:
    def test_plain_stegfs_adapter_roundtrip(self, storage, prng):
        volume = StegFsVolume(RawDevice(storage), prng.spawn("v"))
        fs = PlainStegFsAdapter(storage, volume, prng.spawn("a"))
        content = b"steg content" * 200
        handle = fs.create_file("/hidden", content)
        assert fs.read_file(handle) == content
        assert fs.read_block(handle, 0) == content[: fs.payload_bytes]

    def test_plain_stegfs_updates_in_place(self, storage, prng):
        volume = StegFsVolume(RawDevice(storage), prng.spawn("v"))
        fs = PlainStegFsAdapter(storage, volume, prng.spawn("a"))
        handle = fs.create_file("/hidden", _content(fs, 4))
        physical_before = list(handle.native_handle.header.block_pointers)
        fs.update_blocks(handle, 2, [b"inplace"])
        assert handle.native_handle.header.block_pointers == physical_before

    def test_steghide_adapter_relocates_on_update(self, storage, prng):
        volume = StegFsVolume(RawDevice(storage), prng.spawn("v"))
        agent = NonVolatileAgent(volume, prng.spawn("agent"))
        fs = StegHideAdapter(storage, agent, prng.spawn("a"), label="StegHide*")
        handle = fs.create_file("/hidden", _content(fs, 4))
        moved = False
        for _ in range(20):
            before = list(handle.native_handle.header.block_pointers)
            fs.update_blocks(handle, 1, [b"reloc"])
            if handle.native_handle.header.block_pointers != before:
                moved = True
                break
        assert moved, "Figure-6 updates never relocated in 20 attempts"
        assert fs.read_block(handle, 1).startswith(b"reloc")

    def test_steghide_adapter_exposes_fak(self, storage, prng):
        volume = StegFsVolume(RawDevice(storage), prng.spawn("v"))
        agent = NonVolatileAgent(volume, prng.spawn("agent"))
        fs = StegHideAdapter(storage, agent, prng.spawn("a"), label="StegHide*")
        fs.create_file("/hidden", b"x")
        assert fs.fak_of("/hidden") is not None

    def test_labels(self, storage, prng):
        assert CleanDiskFileSystem(storage).label == "CleanDisk"
        assert FragDiskFileSystem(storage, prng).label == "FragDisk"
        volume = StegFsVolume(RawDevice(storage), prng.spawn("v"))
        assert PlainStegFsAdapter(storage, volume, prng).label == "StegFS"
