"""Unit tests for the pure-Python AES implementation (FIPS 197 vectors)."""

from __future__ import annotations

import pytest

from repro.crypto.aes import AES
from repro.errors import InvalidBlockSizeError, InvalidKeyError


class TestAesKnownVectors:
    """Official FIPS-197 / NIST example vectors."""

    def test_fips197_aes128_example(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_fips197_aes192_example(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_fips197_aes256_example(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_nist_sp800_38a_ecb_aes128_first_block(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_decrypt_inverts_known_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert AES(key).decrypt_block(ciphertext) == expected


class TestAesRoundTrip:
    def test_roundtrip_aes128(self):
        cipher = AES(b"0123456789abcdef")
        block = bytes(range(16))
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_roundtrip_aes256(self):
        cipher = AES(bytes(range(32)))
        block = b"\xff" * 16
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_different_keys_give_different_ciphertexts(self):
        block = b"same plaintext!!"
        c1 = AES(b"A" * 16).encrypt_block(block)
        c2 = AES(b"B" * 16).encrypt_block(block)
        assert c1 != c2

    def test_encryption_changes_every_block(self):
        cipher = AES(b"k" * 16)
        block = b"\x00" * 16
        assert cipher.encrypt_block(block) != block

    def test_rounds_by_key_size(self):
        assert AES(b"k" * 16).rounds == 10
        assert AES(b"k" * 24).rounds == 12
        assert AES(b"k" * 32).rounds == 14

    def test_key_size_property(self):
        assert AES(b"k" * 24).key_size == 24


class TestAesValidation:
    def test_rejects_bad_key_length(self):
        with pytest.raises(InvalidKeyError):
            AES(b"short")

    def test_rejects_non_bytes_key(self):
        with pytest.raises(InvalidKeyError):
            AES("not-bytes-0123456")  # type: ignore[arg-type]

    def test_rejects_wrong_block_size_encrypt(self):
        with pytest.raises(InvalidBlockSizeError):
            AES(b"k" * 16).encrypt_block(b"too short")

    def test_rejects_wrong_block_size_decrypt(self):
        with pytest.raises(InvalidBlockSizeError):
            AES(b"k" * 16).decrypt_block(b"x" * 17)
