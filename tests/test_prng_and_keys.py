"""Unit tests for the SHA-256 PRNG and the FAK / key-ring structures."""

from __future__ import annotations

import pytest

from repro.crypto.keys import (
    KEY_SIZE,
    FileAccessKey,
    KeyRing,
    derive_header_location,
    probe_sequence,
)
from repro.crypto.prng import Sha256Prng
from repro.errors import InvalidKeyError


class TestSha256Prng:
    def test_determinism(self):
        a = Sha256Prng("seed").random_bytes(64)
        b = Sha256Prng("seed").random_bytes(64)
        assert a == b

    def test_different_seeds_differ(self):
        assert Sha256Prng("s1").random_bytes(32) != Sha256Prng("s2").random_bytes(32)

    def test_int_and_bytes_seeds_accepted(self):
        assert Sha256Prng(12345).random_bytes(8) == Sha256Prng(12345).random_bytes(8)
        assert Sha256Prng(b"raw").random_bytes(8) == Sha256Prng(b"raw").random_bytes(8)

    def test_spawn_independence_and_determinism(self):
        parent = Sha256Prng("seed")
        child_a = parent.spawn("a")
        child_b = parent.spawn("b")
        assert child_a.random_bytes(16) != child_b.random_bytes(16)
        assert Sha256Prng("seed").spawn("a").random_bytes(16) == Sha256Prng("seed").spawn(
            "a"
        ).random_bytes(16)

    def test_randint_bounds(self):
        prng = Sha256Prng(1)
        values = [prng.randint(3, 7) for _ in range(500)]
        assert min(values) == 3
        assert max(values) == 7

    def test_randrange_single_argument(self):
        prng = Sha256Prng(1)
        assert all(0 <= prng.randrange(10) < 10 for _ in range(200))

    def test_randrange_empty_raises(self):
        with pytest.raises(ValueError):
            Sha256Prng(1).randrange(5, 5)

    def test_choice(self):
        prng = Sha256Prng(2)
        population = ["a", "b", "c"]
        assert all(prng.choice(population) in population for _ in range(50))

    def test_choice_empty_raises(self):
        with pytest.raises(IndexError):
            Sha256Prng(1).choice([])

    def test_shuffle_is_permutation(self):
        prng = Sha256Prng(3)
        items = list(range(50))
        shuffled = list(items)
        prng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_sample_without_replacement(self):
        prng = Sha256Prng(4)
        sample = prng.sample(list(range(100)), 20)
        assert len(sample) == 20
        assert len(set(sample)) == 20

    def test_sample_size_validation(self):
        with pytest.raises(ValueError):
            Sha256Prng(1).sample([1, 2, 3], 4)

    def test_permutation_covers_range(self):
        perm = Sha256Prng(5).permutation(30)
        assert sorted(perm) == list(range(30))

    def test_random_in_unit_interval(self):
        prng = Sha256Prng(6)
        assert all(0.0 <= prng.random() < 1.0 for _ in range(200))

    def test_random_is_roughly_uniform(self):
        prng = Sha256Prng(7)
        values = [prng.random() for _ in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55

    def test_expovariate_positive(self):
        prng = Sha256Prng(8)
        assert all(prng.expovariate(2.0) >= 0.0 for _ in range(100))

    def test_expovariate_distribution_shape(self):
        """The inverse-CDF transform must match Exp(rate) — an earlier
        version remapped some draws to a constant, skewing the shape."""
        import math

        rate = 2.0
        prng = Sha256Prng(88)
        values = sorted(prng.expovariate(rate) for _ in range(20_000))
        mean = sum(values) / len(values)
        assert mean == pytest.approx(1.0 / rate, rel=0.05)
        median = values[len(values) // 2]
        assert median == pytest.approx(math.log(2.0) / rate, rel=0.05)
        # P(X > 2/rate) should be about e^-2.
        tail = sum(1 for v in values if v > 2.0 / rate) / len(values)
        assert tail == pytest.approx(math.exp(-2.0), rel=0.15)

    def test_gauss_reasonable_spread(self):
        prng = Sha256Prng(9)
        values = [prng.gauss(0.0, 1.0) for _ in range(2000)]
        mean = sum(values) / len(values)
        assert -0.1 < mean < 0.1

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Sha256Prng(1).random_bytes(-1)


class TestDerivedLocations:
    def test_header_location_is_stable(self):
        assert derive_header_location(b"secret", "/a", 1000) == derive_header_location(
            b"secret", "/a", 1000
        )

    def test_header_location_in_range(self):
        for path in ("/a", "/b", "/c/d"):
            assert 0 <= derive_header_location(b"s", path, 321) < 321

    def test_location_depends_on_path_and_secret(self):
        assert derive_header_location(b"s", "/a", 10_000) != derive_header_location(
            b"s", "/b", 10_000
        )
        assert derive_header_location(b"s1", "/a", 10_000) != derive_header_location(
            b"s2", "/a", 10_000
        )

    def test_probe_sequence_distinct_and_bounded(self):
        sequence = probe_sequence(b"s", "/a", 500, 64)
        assert len(sequence) == 64
        assert len(set(sequence)) == 64
        assert all(0 <= index < 500 for index in sequence)

    def test_probe_sequence_starts_with_primary_location(self):
        assert probe_sequence(b"s", "/a", 500, 8)[0] == derive_header_location(b"s", "/a", 500)

    def test_probe_sequence_tiny_volume(self):
        sequence = probe_sequence(b"s", "/a", 4, 16)
        assert sorted(sequence) == [0, 1, 2, 3]

    def test_volume_must_be_positive(self):
        with pytest.raises(ValueError):
            derive_header_location(b"s", "/a", 0)


class TestFileAccessKey:
    def test_generate_hidden(self, prng):
        fak = FileAccessKey.generate(prng)
        assert len(fak.secret) == KEY_SIZE
        assert len(fak.header_key) == KEY_SIZE
        assert fak.content_key is not None
        assert not fak.is_dummy

    def test_generate_dummy_has_no_content_key(self, prng):
        fak = FileAccessKey.generate(prng, is_dummy=True)
        assert fak.content_key is None
        assert fak.is_dummy

    def test_as_disclosed_dummy_hides_content_key(self, prng):
        fak = FileAccessKey.generate(prng)
        disclosed = fak.as_disclosed_dummy()
        assert disclosed.content_key is None
        assert disclosed.is_dummy
        assert disclosed.secret == fak.secret
        assert disclosed.header_key == fak.header_key

    def test_fingerprint_is_short_and_stable(self, prng):
        fak = FileAccessKey.generate(prng)
        assert fak.fingerprint() == fak.fingerprint()
        assert len(fak.fingerprint()) == 12

    def test_invalid_key_sizes_rejected(self):
        with pytest.raises(InvalidKeyError):
            FileAccessKey(secret=b"", header_key=b"x" * KEY_SIZE)
        with pytest.raises(InvalidKeyError):
            FileAccessKey(secret=b"s", header_key=b"short")
        with pytest.raises(InvalidKeyError):
            FileAccessKey(secret=b"s", header_key=b"x" * KEY_SIZE, content_key=b"bad")

    def test_header_location_helper(self, prng):
        fak = FileAccessKey.generate(prng)
        assert fak.header_location("/a", 100) == derive_header_location(fak.secret, "/a", 100)


class TestKeyRing:
    def test_add_and_merge(self, prng):
        ring = KeyRing(owner="alice")
        hidden = FileAccessKey.generate(prng.spawn("h"))
        dummy = FileAccessKey.generate(prng.spawn("d"), is_dummy=True)
        ring.add_hidden("/h", hidden)
        ring.add_dummy("/d", dummy)
        merged = ring.all_keys()
        assert merged["/h"] is hidden
        assert merged["/d"] is dummy

    def test_hidden_fak_must_not_be_dummy(self, prng):
        ring = KeyRing(owner="alice")
        with pytest.raises(InvalidKeyError):
            ring.add_hidden("/h", FileAccessKey.generate(prng, is_dummy=True))

    def test_deniable_view_hides_all_content_keys(self, prng):
        ring = KeyRing(owner="alice")
        ring.add_hidden("/h", FileAccessKey.generate(prng.spawn("h")))
        ring.add_dummy("/d", FileAccessKey.generate(prng.spawn("d"), is_dummy=True))
        view = ring.deniable_view()
        assert set(view) == {"/h", "/d"}
        assert all(fak.content_key is None for fak in view.values())
        assert all(fak.is_dummy for fak in view.values())
