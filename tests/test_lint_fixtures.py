"""The deliberate-defect fixture packages under ``tests/lint_fixtures/``.

Every interprocedural rule introduced by the whole-program analyses has
a committed package pair: a flagged variant the rule must catch (with
the full call/flow chain in the message) and a sanitized/pragma'd twin
that lints to zero findings.  The packages live outside ``src/`` so the
real tree stays clean while the defects stay reviewable in-repo.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.core import lint_paths

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: case directory -> the rule code its flagged package must trip.
CASES = {
    "abba_deadlock": "LCK001",
    "wait_foreign_lock": "LCK002",
    "unlocked_shared_write": "LCK003",
    "trace_leak": "SEC001",
    "exception_leak": "SEC001",
    "secret_repr": "SEC002",
    "cross_module_planner": "PLN001",
    "use_after_close": "TYP001",
    "exception_open_leak": "TYP002",
    "secret_branch_write": "OBL001",
    "secret_plan_shape": "OBL002",
}


def _lint(case: str, variant: str):
    return lint_paths([FIXTURES / case / variant])


@pytest.mark.parametrize("case", sorted(CASES))
def test_flagged_package_is_flagged(case):
    findings = _lint(case, "flagged")
    assert CASES[case] in {finding.code for finding in findings}


@pytest.mark.parametrize("case", sorted(CASES))
def test_clean_twin_is_clean(case):
    assert _lint(case, "clean") == []


class TestFindingQuality:
    """The messages must be actionable: chains, roles, and witnesses."""

    def test_abba_cycle_names_both_witnesses(self):
        (finding,) = _lint("abba_deadlock", "flagged")
        assert "Engine.submit takes" in finding.message
        assert "Engine.drain takes" in finding.message
        assert "opposite orders deadlock" in finding.message

    def test_wait_finding_names_the_foreign_lock(self):
        (finding,) = _lint("wait_foreign_lock", "flagged")
        assert "WaitQueue._lock" in finding.message
        assert "self._cond.wait()" in finding.message

    def test_shared_write_finding_names_both_roles(self):
        (finding,) = _lint("unlocked_shared_write", "flagged")
        assert "scheduler thread (Poller._loop" in finding.message
        assert "client thread (Poller.reset" in finding.message

    def test_trace_leak_carries_the_flow_chain(self):
        (finding,) = _lint("trace_leak", "flagged")
        assert "parameter 'fak_entropy'" in finding.message
        assert "IoTrace.record()" in finding.message
        assert "Recorder.log_update" in finding.message

    def test_exception_leak_names_the_sink(self):
        (finding,) = _lint("exception_leak", "flagged")
        assert "exception message" in finding.message
        assert "KeyStore.register" in finding.message

    def test_secret_repr_catches_both_shapes(self):
        findings = _lint("secret_repr", "flagged")
        messages = " | ".join(finding.message for finding in findings)
        assert "__repr__() output" in messages
        assert "dataclass auto-repr exposes secret field 'Credentials.secret'" in messages

    def test_cross_module_chain_spans_both_modules(self):
        (finding,) = _lint("cross_module_planner", "flagged")
        assert finding.path.endswith("loader.py"), "finding lands on the I/O site"
        assert "Session.plan_write -> load_header" in finding.message

    def test_use_after_close_names_state_and_close_site(self):
        (finding,) = _lint("use_after_close", "flagged")
        assert "RawStorage value 'store' may be closed" in finding.message
        assert "(closed at line 20)" in finding.message
        assert "'.read_block()'" in finding.message

    def test_leak_and_double_close_are_both_reported(self):
        leak, double = _lint("exception_open_leak", "flagged")
        assert "still open when the exception raised at line 21" in leak.message
        assert "close it in a finally block" in leak.message
        assert "may already be closed (closed at line 27)" in double.message
        assert "not annotated idempotent" in double.message

    def test_secret_branch_finding_carries_full_witness_path(self):
        (finding,) = _lint("secret_branch_write", "flagged")
        assert finding.line == 14, "finding lands on the sink, not the branch"
        assert "device call .write_block()" in finding.message
        assert "secret-derived condition 'matched' (line 13)" in finding.message
        assert "witness path: L13 -> L14" in finding.message

    def test_plan_shape_reports_the_interval_per_arm(self):
        findings = _lint("secret_plan_shape", "flagged")
        (shape,) = [f for f in findings if f.code == "OBL002"]
        assert "emits 2 plan steps when 'key == probe' holds but 0 otherwise" in shape.message
        # The conditional emissions are themselves OBL001 sinks.
        assert {f.line for f in findings if f.code == "OBL001"} == {13, 14}
