"""Tests for the session-oriented service facade and the scenario runner.

The heart of this module is the trace-equivalence property: a
``Session.write`` over any byte range must issue a device trace
bit-identical to the equivalent hand-wired sequence of raw
``agent.read_block`` boundary fetches plus one ``agent.update_range``
call — the facade adds expressiveness, never observable behaviour.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ByteRangeError,
    ServiceError,
    SessionClosedError,
    SessionConflictError,
    WorkloadError,
)
from repro.service import (
    HiddenVolumeService,
    ObliviousConfig,
    Retrieval,
    Scenario,
    TableUpdates,
    Updates,
    run_experiment,
)
from repro.storage.latency import ZeroLatencyModel
from repro.workloads.filegen import FileSpec

SECRET = b"the merger closes on friday; tell no one.\n" * 120  # ~5 KiB


def make_service(seed: int = 7, construction: str = "volatile") -> HiddenVolumeService:
    """A small, zero-latency service for fast tests."""
    return HiddenVolumeService.create(
        construction, volume_mib=1, seed=seed, block_size=512, latency=ZeroLatencyModel()
    )


def enrolled_session(service: HiddenVolumeService, user: str = "alice"):
    session = service.login(service.new_keyring(user))
    session.create(f"/{user}/secret", SECRET)
    session.create_decoy(f"/{user}/decoy", size_bytes=len(SECRET))
    return session


class TestSessionLifecycle:
    def test_login_opens_all_keyring_files(self):
        service = make_service()
        session = enrolled_session(service)
        keyring = session.keyring
        session.logout()
        again = service.login(keyring)
        assert again.paths == ["/alice/decoy", "/alice/secret"]
        assert again.read("/alice/secret") == SECRET

    def test_logout_forgets_keys_and_blocks(self):
        service = make_service()
        session = enrolled_session(service)
        assert service.disclosed_block_count() > 0
        assert service.logged_in_users == ["alice"]
        session.logout()
        assert not session.active
        assert service.logged_in_users == []
        # The agent retains nothing: no known blocks, no selection space.
        assert len(service.agent.known_blocks) == 0
        assert service.disclosed_block_count() == 0

    def test_operations_after_logout_raise(self):
        service = make_service()
        session = enrolled_session(service)
        session.logout()
        with pytest.raises(SessionClosedError):
            session.read("/alice/secret")
        with pytest.raises(SessionClosedError):
            session.write("/alice/secret", b"x")
        with pytest.raises(SessionClosedError):
            session.logout()

    def test_double_login_conflicts(self):
        service = make_service()
        session = enrolled_session(service)
        with pytest.raises(SessionConflictError):
            service.login(session.keyring)

    def test_unknown_path_raises(self):
        service = make_service()
        session = service.login(service.new_keyring("alice"))
        with pytest.raises(ServiceError):
            session.read("/nope")

    def test_concurrent_sessions_widen_dummy_selection_space(self):
        service = make_service()
        alice = enrolled_session(service, "alice")
        after_alice_blocks = service.disclosed_block_count()
        after_alice_dummies = service.disclosed_dummy_block_count()
        assert after_alice_dummies > 0

        bob = enrolled_session(service, "bob")
        assert service.disclosed_block_count() > after_alice_blocks
        assert service.disclosed_dummy_block_count() > after_alice_dummies
        assert service.logged_in_users == ["alice", "bob"]

        bob.logout()
        assert service.disclosed_block_count() == after_alice_blocks
        assert service.disclosed_dummy_block_count() == after_alice_dummies
        alice.logout()
        assert service.disclosed_block_count() == 0


class TestDelete:
    def test_delete_frees_bitmap_blocks_without_device_io(self):
        service = make_service()
        session = enrolled_session(service)
        stat = session.stat("/alice/secret")
        allocator = service.volume.allocator
        occupied = allocator.used_blocks
        trace_before = len(service.storage.trace)
        counters_before = service.storage.counters.snapshot()

        session.delete("/alice/secret")

        # Freed: every data block plus the header chain (>= 1 block).
        freed = occupied - allocator.used_blocks
        assert freed >= stat.num_blocks + 1
        # The paper's guarantee: deletion is invisible on the device —
        # zero I/O events, zero counter movement.
        assert len(service.storage.trace) == trace_before
        assert service.storage.counters.delta(counters_before).total_ops == 0

    def test_delete_removes_path_and_key(self):
        service = make_service()
        session = enrolled_session(service)
        session.delete("/alice/secret")
        assert session.paths == ["/alice/decoy"]
        assert "/alice/secret" not in session.keyring.all_keys()
        with pytest.raises(ServiceError):
            session.read("/alice/secret")
        # The ring no longer locates the file after a fresh login either.
        keyring = session.keyring
        session.logout()
        again = service.login(keyring)
        assert again.paths == ["/alice/decoy"]

    def test_delete_decoy_shrinks_dummy_selection_space(self):
        service = make_service()
        session = enrolled_session(service)
        dummies_before = service.disclosed_dummy_block_count()
        assert dummies_before > 0
        session.delete("/alice/decoy")
        assert service.disclosed_dummy_block_count() < dummies_before
        assert "/alice/decoy" not in session.keyring.all_keys()

    def test_deleted_blocks_are_reusable(self):
        service = make_service()
        session = service.login(service.new_keyring("alice"))
        session.create("/alice/a", SECRET)
        free_before_delete = service.volume.allocator.free_blocks
        session.delete("/alice/a")
        assert service.volume.allocator.free_blocks > free_before_delete
        # The freed space accommodates a new file of the same size.
        session.create("/alice/b", SECRET)
        assert session.read("/alice/b") == SECRET

    def test_delete_unknown_path_raises(self):
        service = make_service()
        session = enrolled_session(service)
        with pytest.raises(ServiceError):
            session.delete("/alice/never-created")


class TestByteGranularIo:
    def test_write_and_read_roundtrip_across_blocks(self):
        service = make_service()
        session = enrolled_session(service)
        oracle = bytearray(SECRET)
        # A write that straddles several 496-byte payload blocks.
        session.write("/alice/secret", b"X" * 1500, at=100)
        oracle[100:1600] = b"X" * 1500
        assert session.read("/alice/secret") == bytes(oracle)
        assert session.read("/alice/secret", at=99, size=3) == bytes(oracle[99:102])

    def test_write_beyond_extent_rejected(self):
        service = make_service()
        session = enrolled_session(service)
        with pytest.raises(ByteRangeError):
            session.write("/alice/secret", b"x", at=len(SECRET))
        with pytest.raises(ByteRangeError):
            session.read("/alice/secret", at=0, size=len(SECRET) + 1)
        with pytest.raises(ByteRangeError):
            session.write("/alice/secret", b"x", at=-1)

    def test_append_grows_file_byte_granularly(self):
        service = make_service()
        session = service.login(service.new_keyring("alice"))
        session.create("/alice/log", b"day one\n")
        session.create_decoy("/alice/decoy", size_bytes=4096)
        oracle = bytearray(b"day one\n")
        for i in range(4):
            chunk = (b"day %d: nothing happened\n" % (i + 2)) * (30 * i + 1)
            session.append("/alice/log", chunk)
            oracle += chunk
        assert session.stat("/alice/log").size_bytes == len(oracle)
        assert session.read("/alice/log") == bytes(oracle)
        # The grown file survives a logout/login cycle (header was saved).
        keyring = session.keyring
        session.logout()
        session = service.login(keyring)
        assert session.read("/alice/log") == bytes(oracle)

    def test_nonvolatile_construction_supports_sessions_too(self):
        service = make_service(construction="nonvolatile")
        session = enrolled_session(service)
        session.write("/alice/secret", b"REDACTED", at=0)
        assert session.read("/alice/secret", size=8) == b"REDACTED"
        session.logout()
        assert service.logged_in_users == []


class TestCoercion:
    def test_deniable_view_marks_everything_dummy(self):
        service = make_service()
        session = enrolled_session(service)
        disclosed = session.deniable_view()
        assert set(disclosed.all_keys()) == {"/alice/secret", "/alice/decoy"}
        assert all(fak.is_dummy for fak in disclosed.all_keys().values())
        assert all(fak.content_key is None for fak in disclosed.all_keys().values())

    def test_coercer_login_never_sees_plaintext(self):
        service = make_service()
        session = enrolled_session(service)
        disclosed = session.deniable_view()
        session.logout()
        coerced = service.login(disclosed)
        leaked = coerced.read("/alice/secret")
        assert len(leaked) == len(SECRET)
        assert b"merger" not in leaked


class TestObliviousReadPath:
    def test_oblivious_reads_return_identical_content(self):
        service = HiddenVolumeService.create(
            "volatile",
            volume_mib=2,
            seed=3,
            block_size=512,
            latency=ZeroLatencyModel(),
            oblivious=ObliviousConfig(buffer_blocks=4, last_level_blocks=64),
        )
        session = service.login(service.new_keyring("bob"))
        session.create("/bob/data", SECRET)
        assert session.read("/bob/data", oblivious=True) == SECRET
        assert session.read("/bob/data", at=500, size=100, oblivious=True) == SECRET[500:600]
        service.dummy_oblivious_read()

    def test_oblivious_read_requires_config(self):
        service = make_service()
        session = enrolled_session(service)
        with pytest.raises(ServiceError):
            session.read("/alice/secret", oblivious=True)


class TestTraceEquivalence:
    """Session.write == boundary read_block fetches + one update_range."""

    @staticmethod
    def _twin(seed: int):
        service = make_service(seed=seed)
        session = service.login(service.new_keyring("u"))
        session.create("/u/f", SECRET)
        session.create_decoy("/u/d", size_bytes=len(SECRET))
        return service, session

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_session_write_trace_identical_to_raw_update_range(self, data):
        at = data.draw(st.integers(min_value=0, max_value=len(SECRET) - 1), label="at")
        length = data.draw(
            st.integers(min_value=1, max_value=len(SECRET) - at), label="length"
        )
        payload = bytes((at + i * 37) % 256 for i in range(length))

        service_a, session_a = self._twin(seed=1234)
        service_b, session_b = self._twin(seed=1234)

        mark_a = len(service_a.storage.trace)
        mark_b = len(service_b.storage.trace)

        # Facade path.
        session_a.write("/u/f", payload, at=at)

        # Equivalent hand-wired path on the bit-identical twin.
        agent = service_b.agent
        handle = session_b._handles["/u/f"]
        payload_bytes = service_b.volume.data_field_bytes
        end = at + length
        first = at // payload_bytes
        last = (end - 1) // payload_bytes
        head_pad = at - first * payload_bytes
        tail_pad = (last + 1) * payload_bytes - end
        region = bytearray()
        first_current = None
        if head_pad:
            first_current = agent.read_block(handle, first)
            region += first_current[:head_pad]
        region += payload
        if tail_pad:
            if last == first and first_current is not None:
                last_current = first_current
            else:
                last_current = agent.read_block(handle, last)
            region += last_current[payload_bytes - tail_pad :]
        payloads = [
            bytes(region[offset : offset + payload_bytes])
            for offset in range(0, len(region), payload_bytes)
        ]
        agent.update_range(handle, first, payloads)

        events_a = [
            (e.op, e.index, e.time_ms, e.stream)
            for e in service_a.storage.trace.since(mark_a)
        ]
        events_b = [
            (e.op, e.index, e.time_ms, e.stream)
            for e in service_b.storage.trace.since(mark_b)
        ]
        assert events_a == events_b
        assert events_a, "a write must issue device I/O"
        # And the resulting plaintext matches the oracle on both systems.
        oracle = SECRET[:at] + payload + SECRET[end:]
        assert session_a.read("/u/f") == oracle
        assert session_b.read("/u/f") == oracle


class TestScenarioRunner:
    def test_measured_retrieval_keys_by_target(self):
        result = run_experiment(
            Scenario(
                system="CleanDisk",
                volume_mib=4,
                files=(FileSpec("/a", 64 * 1024), FileSpec("/b", 128 * 1024)),
                workload=Retrieval(),
            )
        )
        assert set(result.measurements) == {"/a", "/b"}
        assert result.measurements["/b"] > result.measurements["/a"] > 0

    def test_concurrency_sweep_keys_by_user_count(self):
        result = run_experiment(
            Scenario(
                system="FragDisk",
                volume_mib=4,
                files=(FileSpec("/u0", 64 * 1024), FileSpec("/u1", 64 * 1024)),
                users=(1, 2),
                workload=Retrieval(),
            )
        )
        assert set(result.measurements) == {"users=1", "users=2"}
        assert result.simulations[2].total_elapsed_ms > 0
        assert result.series(["users=1", "users=2"]) == [
            result.measurements["users=1"],
            result.measurements["users=2"],
        ]

    def test_update_range_sweep(self):
        result = run_experiment(
            Scenario(
                system="StegFS",
                volume_mib=4,
                files=(FileSpec("/t", 64 * 1024),),
                workload=Updates(count=3, range_blocks=(1, 2)),
            )
        )
        assert set(result.measurements) == {"range=1", "range=2"}
        assert result.measurements["range=2"] > result.measurements["range=1"]

    def test_table_updates_with_attacker(self):
        result = run_experiment(
            Scenario(
                system="CleanDisk",
                volume_mib=4,
                files=(FileSpec("/seed", 4096),),
                latency=ZeroLatencyModel(),
                workload=TableUpdates(rows=100, intervals=3, updates_per_interval=2),
                attackers=("update-analysis",),
            )
        )
        verdict = result.verdict("update-analysis")
        assert verdict.suspects_hidden_activity is True
        assert result.measurements["blocks-touched"] >= 6

    def test_unknown_system_and_attacker_rejected(self):
        with pytest.raises(ValueError):
            Scenario(system="BogusDisk")
        with pytest.raises(WorkloadError):
            run_experiment(
                Scenario(system="CleanDisk", volume_mib=4, attackers=("psychic",))
            )

    def test_concurrency_sweep_rejects_range_tuple(self):
        with pytest.raises(WorkloadError):
            run_experiment(
                Scenario(
                    system="CleanDisk",
                    volume_mib=4,
                    files=(FileSpec("/u0", 64 * 1024),),
                    users=(1,),
                    workload=Updates(range_blocks=(1, 2)),
                )
            )
