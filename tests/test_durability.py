"""Durable volumes: BlockBackend implementations and the service lifecycle.

The contract under test (ISSUE 4):

* ``MemoryBackend`` is bit-identical to the pre-split ``RawStorage``
  (the hypothesis trace tests in ``test_batched_io.py`` /
  ``test_trace_columnar.py`` pin this from the other side; here we pin
  memory vs mmap against *each other*);
* ``MmapFileBackend`` persists: create a file-backed volume, write
  hidden and decoy files, ``close()``, reopen the file with
  ``HiddenVolumeService.open`` in a fresh service object and read back
  bit-identical contents with the saved key ring;
* a wrong key ring (or, for the non-volatile agent, a wrong seed)
  recovers nothing;
* ``flush`` persists mid-session, ``close`` is idempotent, and both
  service and sessions work as context managers.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    HiddenFileNotFoundError,
    HiddenVolumeService,
    KeyRing,
    MemoryBackend,
    MmapFileBackend,
    RawStorage,
    Sha256Prng,
    StorageGeometry,
)
from repro.crypto.keys import FileAccessKey
from repro.errors import BackendClosedError, ServiceClosedError, VolumeFileError

BLOCK = 512


def small_geometry(num_blocks: int = 64) -> StorageGeometry:
    return StorageGeometry(block_size=BLOCK, num_blocks=num_blocks)


class TestBackendEquivalence:
    """MemoryBackend and MmapFileBackend move bytes identically."""

    def _pair(self, tmp_path, num_blocks=64):
        memory = MemoryBackend(BLOCK, num_blocks)
        mapped = MmapFileBackend.create(tmp_path / "vol.img", BLOCK, num_blocks)
        return memory, mapped

    def test_fill_random_identical(self, tmp_path):
        memory, mapped = self._pair(tmp_path)
        memory.fill_random(42)
        mapped.fill_random(42)
        assert memory.raw_bytes() == mapped.raw_bytes()

    def test_single_and_batched_ops_identical(self, tmp_path):
        memory, mapped = self._pair(tmp_path)
        prng = Sha256Prng("backend-equivalence")
        for backend in (memory, mapped):
            backend.fill_random(7)
        for _step in range(50):
            index = prng.randrange(64)
            data = prng.random_bytes(BLOCK)
            for backend in (memory, mapped):
                backend.write(index, data)
            indices = np.array([prng.randrange(64) for _ in range(5)], dtype=np.int64)
            assert memory.read_many(indices) == mapped.read_many(indices)
        datas = [prng.random_bytes(BLOCK) for _ in range(4)]
        # Duplicate targets: last writer must win on both backends.
        dup = np.array([3, 9, 3, 9], dtype=np.int64)
        memory.write_many(dup, datas)
        mapped.write_many(dup, datas)
        assert memory.raw_bytes() == mapped.raw_bytes()
        assert memory.read(3) == datas[2]

    def test_rawstorage_traces_identical_across_backends(self, tmp_path):
        geometry = small_geometry()
        mem_storage = RawStorage(geometry)
        map_storage = RawStorage(
            geometry,
            backend=MmapFileBackend.create(tmp_path / "vol.img", BLOCK, geometry.num_blocks),
        )
        for storage in (mem_storage, map_storage):
            storage.fill_random(3)
            storage.write_block(5, bytes(BLOCK))
            storage.read_blocks([1, 2, 3])
            storage.write_blocks([8, 9], [b"\x01" * BLOCK, b"\x02" * BLOCK])
            storage.read_write_blocks([4, 5])
        assert mem_storage.raw_bytes() == map_storage.raw_bytes()
        assert mem_storage.counters == map_storage.counters
        assert mem_storage.clock_ms == map_storage.clock_ms
        mem_events = [(e.op, e.index, e.time_ms) for e in mem_storage.trace]
        map_events = [(e.op, e.index, e.time_ms) for e in map_storage.trace]
        assert mem_events == map_events


class TestMmapFileBackend:
    def test_persists_across_close_and_open(self, tmp_path):
        path = tmp_path / "vol.img"
        backend = MmapFileBackend.create(path, BLOCK, 16)
        backend.fill_random(1)
        image = backend.raw_bytes()
        backend.write(7, b"\xaa" * BLOCK)
        backend.close()

        reopened = MmapFileBackend.open(path, BLOCK)
        assert reopened.num_blocks == 16
        assert reopened.read(7) == b"\xaa" * BLOCK
        assert reopened.read(3) == image[3 * BLOCK : 4 * BLOCK]
        reopened.close()

    def test_create_refuses_to_clobber(self, tmp_path):
        path = tmp_path / "vol.img"
        MmapFileBackend.create(path, BLOCK, 4).close()
        with pytest.raises(FileExistsError):
            MmapFileBackend.create(path, BLOCK, 4)

    def test_open_rejects_non_volume_files(self, tmp_path):
        path = tmp_path / "torn.img"
        path.write_bytes(b"x" * (BLOCK + 1))
        with pytest.raises(VolumeFileError):
            MmapFileBackend.open(path, BLOCK)
        empty = tmp_path / "empty.img"
        empty.write_bytes(b"")
        with pytest.raises(VolumeFileError):
            MmapFileBackend.open(empty, BLOCK)

    def test_geometry_mismatch_rejected(self, tmp_path):
        backend = MmapFileBackend.create(tmp_path / "vol.img", BLOCK, 8)
        with pytest.raises(VolumeFileError):
            RawStorage(small_geometry(16), backend=backend)
        backend.close()

    def test_closed_backend_raises_everywhere(self, tmp_path):
        backend = MmapFileBackend.create(tmp_path / "vol.img", BLOCK, 4)
        backend.close()
        assert backend.closed
        backend.close()  # idempotent
        with pytest.raises(BackendClosedError):
            backend.read(0)
        with pytest.raises(BackendClosedError):
            backend.write(0, bytes(BLOCK))
        with pytest.raises(BackendClosedError):
            backend.flush()

    def test_memory_backend_close(self):
        backend = MemoryBackend(BLOCK, 4)
        backend.flush()  # no-op while open
        backend.close()
        with pytest.raises(BackendClosedError):
            backend.read(0)


def make_volume(tmp_path, construction="volatile", seed=7, name="vol.img"):
    return HiddenVolumeService.create(
        construction,
        volume_mib=1,
        seed=seed,
        block_size=4096,
        path=tmp_path / name,
    )


class TestServiceRoundTrip:
    @pytest.mark.parametrize("construction", ["volatile", "nonvolatile"])
    def test_close_reopen_reads_back_bit_identical(self, tmp_path, construction):
        secret = b"the hidden payload " * 700  # several blocks
        service = make_volume(tmp_path, construction)
        alice = service.login(service.new_keyring("alice"))
        alice.create("/alice/secret.bin", secret)
        alice.create_decoy("/alice/decoy.bin", size_bytes=8192)
        alice.append("/alice/secret.bin", b"and an appended tail")
        alice.write("/alice/secret.bin", b"THE", at=0)
        ring_json = alice.keyring.to_json()
        service.close()
        assert service.closed

        reopened = HiddenVolumeService.open(
            tmp_path / "vol.img", construction, seed=7, session_nonce="s2"
        )
        assert reopened is not service
        session = reopened.login(KeyRing.from_json(ring_json))
        expected = b"THE" + secret[3:] + b"and an appended tail"
        assert session.read("/alice/secret.bin") == expected
        stat = session.stat("/alice/secret.bin")
        assert stat.size_bytes == len(expected)
        assert session.stat("/alice/decoy.bin").is_decoy
        # The reopened session can keep updating the recovered file.
        session.write("/alice/secret.bin", b"xyz", at=10)
        assert session.read("/alice/secret.bin", at=10, size=3) == b"xyz"
        reopened.close()

    def test_wrong_keyring_recovers_nothing(self, tmp_path):
        service = make_volume(tmp_path)
        alice = service.login(service.new_keyring("alice"))
        alice.create("/alice/secret.bin", b"really hidden")
        service.close()

        reopened = HiddenVolumeService.open(tmp_path / "vol.img", "volatile", seed=7)
        wrong = KeyRing(owner="mallory")
        wrong.add_hidden("/alice/secret.bin", FileAccessKey.generate(Sha256Prng(12345)))
        with pytest.raises(HiddenFileNotFoundError):
            reopened.login(wrong)
        # An empty ring logs in but sees no files.
        empty = reopened.login(reopened.new_keyring("mallory"))
        assert empty.paths == []
        reopened.close()

    def test_wrong_seed_locks_out_nonvolatile_volume(self, tmp_path):
        service = make_volume(tmp_path, "nonvolatile", seed=21)
        bob = service.login(service.new_keyring("bob"))
        bob.create("/bob/ledger", b"master-keyed data")
        ring_json = bob.keyring.to_json()
        service.close()

        # Same volume file, wrong seed: the re-derived master key opens nothing.
        wrong_seed = HiddenVolumeService.open(tmp_path / "vol.img", "nonvolatile", seed=22)
        with pytest.raises(HiddenFileNotFoundError):
            wrong_seed.login(KeyRing.from_json(ring_json))
        wrong_seed.close()

    def test_flush_persists_without_logout(self, tmp_path):
        service = make_volume(tmp_path)
        alice = service.login(service.new_keyring("alice"))
        alice.create("/alice/wip.txt", b"work in progress")
        alice.append("/alice/wip.txt", b", now longer")
        service.flush()
        # Simulate a crash: map the volume file independently, without
        # going through the (still-open) service.
        image = (tmp_path / "vol.img").read_bytes()
        assert image == service.storage.raw_bytes()
        service.close()

    def test_memory_service_still_defaults_and_flushes(self):
        service = HiddenVolumeService.create("volatile", volume_mib=1, seed=7)
        assert isinstance(service.storage.backend, MemoryBackend)
        alice = service.login(service.new_keyring("alice"))
        alice.create("/a", b"ephemeral")
        service.flush()  # no-op but legal
        service.close()
        assert service.closed
        assert service.storage.closed

    def test_closed_service_refuses_work(self, tmp_path):
        service = make_volume(tmp_path)
        service.close()
        service.close()  # idempotent
        with pytest.raises(ServiceClosedError):
            service.login(service.new_keyring("alice"))
        with pytest.raises(ServiceClosedError):
            service.flush()

    def test_context_managers(self, tmp_path):
        with make_volume(tmp_path) as service:
            with service.login(service.new_keyring("alice")) as alice:
                alice.create("/alice/f", b"scoped")
                ring_json = alice.keyring.to_json()
            assert not alice.active
            assert service.logged_in_users == []
        assert service.closed

        with HiddenVolumeService.open(tmp_path / "vol.img", "volatile", seed=7) as reopened:
            with reopened.login(KeyRing.from_json(ring_json)) as session:
                assert session.read("/alice/f") == b"scoped"

    def test_close_saves_dirty_headers_of_live_sessions(self, tmp_path):
        service = make_volume(tmp_path)
        alice = service.login(service.new_keyring("alice"))
        alice.create("/alice/f", b"v" * 5000)
        # A write relocates blocks and dirties the header; close() must
        # save it even though alice never logs out explicitly.
        alice.write("/alice/f", b"W" * 100, at=4000)
        ring_json = alice.keyring.to_json()
        service.close()
        reopened = HiddenVolumeService.open(tmp_path / "vol.img", "volatile", seed=7)
        session = reopened.login(KeyRing.from_json(ring_json))
        assert session.read("/alice/f", at=4000, size=100) == b"W" * 100
        reopened.close()


class TestRoundTripProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        content=st.binary(min_size=1, max_size=12000),
        patch=st.binary(min_size=1, max_size=200),
        offset=st.integers(min_value=0, max_value=11999),
        construction=st.sampled_from(["volatile", "nonvolatile"]),
    )
    def test_any_write_pattern_survives_reopen(
        self, tmp_path_factory, content, patch, offset, construction
    ):
        tmp_path = tmp_path_factory.mktemp("roundtrip")
        offset = min(offset, len(content) - 1)
        patch = patch[: max(1, len(content) - offset)]
        expected = content[:offset] + patch + content[offset + len(patch) :]

        service = make_volume(tmp_path, construction)
        session = service.login(service.new_keyring("u"))
        session.create("/f", content)
        session.write("/f", patch, at=offset)
        ring_json = session.keyring.to_json()
        service.close()

        reopened = HiddenVolumeService.open(
            tmp_path / "vol.img", construction, seed=7, session_nonce="prop"
        )
        recovered = reopened.login(KeyRing.from_json(ring_json))
        assert recovered.read("/f") == expected
        reopened.close()


class TestReopenedServiceIsIndependent:
    def test_reopen_does_not_replay_create_session_ivs(self, tmp_path):
        """A reopened service must not redraw the create-session IV stream.

        IV reuse across sessions would let an attacker XOR two volume
        images; the reopen wiring salts the IV/selection PRNGs with the
        session nonce, so the first fresh IV drawn after reopen differs
        from the first IV the create session drew.
        """
        service = make_volume(tmp_path)
        create_iv = service.volume.fresh_iv()
        service.close()
        reopened = HiddenVolumeService.open(tmp_path / "vol.img", "volatile", seed=7)
        assert reopened.volume.fresh_iv() != create_iv
        # Distinct nonces give distinct serving-session streams too.
        reopened.close()
        second = HiddenVolumeService.open(
            tmp_path / "vol.img", "volatile", seed=7, session_nonce="another"
        )
        assert second.volume.fresh_iv() != create_iv
        second.close()

    def test_volume_file_created_with_0600(self, tmp_path):
        service = make_volume(tmp_path)
        service.close()
        mode = os.stat(tmp_path / "vol.img").st_mode & 0o777
        assert mode == 0o600

    def test_session_nonce_type_is_part_of_the_salt(self, tmp_path):
        service = make_volume(tmp_path)
        service.close()
        with HiddenVolumeService.open(
            tmp_path / "vol.img", "volatile", seed=7, session_nonce=1
        ) as a:
            iv_int = a.volume.fresh_iv()
        with HiddenVolumeService.open(
            tmp_path / "vol.img", "volatile", seed=7, session_nonce="1"
        ) as b:
            assert b.volume.fresh_iv() != iv_int

    def test_failed_create_leaves_no_stray_file(self, tmp_path, monkeypatch):
        import mmap as mmap_module

        def explode(*args, **kwargs):
            raise OSError("simulated mmap failure")

        monkeypatch.setattr(mmap_module, "mmap", explode)
        with pytest.raises(OSError):
            MmapFileBackend.create(tmp_path / "vol.img", BLOCK, 8)
        # No half-formatted file may survive: it would trip the
        # clobber guard on retry while holding no volume at all.
        assert not (tmp_path / "vol.img").exists()
        monkeypatch.undo()
        MmapFileBackend.create(tmp_path / "vol.img", BLOCK, 8).close()


class TestFakEntropy:
    def test_entropy_decouples_file_keys_from_the_seed(self, tmp_path):
        """With fak_entropy, knowing the seed no longer re-derives FAKs."""
        entropy = b"\x42" * 32
        with_entropy = HiddenVolumeService.create(
            "volatile", volume_mib=1, seed=7, fak_entropy=entropy
        )
        derived_only = HiddenVolumeService.create("volatile", volume_mib=1, seed=7)
        s1 = with_entropy.login(with_entropy.new_keyring("alice"))
        s2 = derived_only.login(derived_only.new_keyring("alice"))
        s1.create("/alice/f", b"x")
        s2.create("/alice/f", b"x")
        fak_with = s1.keyring.hidden["/alice/f"]
        fak_derived = s2.keyring.hidden["/alice/f"]
        assert fak_with.secret != fak_derived.secret
        assert fak_with.header_key != fak_derived.header_key
        # Same entropy reproduces the same keys (it is a credential).
        twin = HiddenVolumeService.create("volatile", volume_mib=1, seed=7, fak_entropy=entropy)
        t = twin.login(twin.new_keyring("alice"))
        t.create("/alice/f", b"x")
        assert t.keyring.hidden["/alice/f"].secret == fak_with.secret

    def test_default_derivation_unchanged(self):
        """Omitting fak_entropy keeps the historical seed-derived FAKs."""
        a = HiddenVolumeService.create("volatile", volume_mib=1, seed=7)
        b = HiddenVolumeService.create("volatile", volume_mib=1, seed=7)
        sa = a.login(a.new_keyring("alice"))
        sb = b.login(b.new_keyring("alice"))
        sa.create("/alice/f", b"x")
        sb.create("/alice/f", b"x")
        assert sa.keyring.hidden["/alice/f"].secret == sb.keyring.hidden["/alice/f"].secret
