"""Self-tests for the repro.lint invariant linter.

Every rule gets the same four-way fixture treatment: a violating
snippet is flagged, a compliant snippet is clean, a pragma *with* a
justification suppresses the finding, and a pragma *without* one is
itself a finding.  On top of that the suite pins the acceptance
criteria: the registry carries all six project rules, the real tree
lints clean, and a seeded violation in ``core/agent.py`` is caught.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import lint_source, registered_rules
from repro.lint.cli import main
from repro.lint.core import PRAGMA_CODE, SYNTAX_CODE
from repro.lint.rules.closedguards import GUARD_SPECS, static_inventory

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

ENT_BAD = "import random\n"
ENT_GOOD = "from repro.crypto.prng import Sha256Prng\n\nprng = Sha256Prng('seed')\n"

PLN_BAD = """\
class Thing:
    def plan_write(self, storage):
        return storage.read_block(0)
"""
PLN_GOOD = """\
class Thing:
    def plan_write(self):
        return [("write", 0)]

    def execute(self, storage, steps):
        return storage.read_block(0)
"""

CLS_BAD = """\
class RawStorage:
    def read_block(self, index):
        return self.backend.read(index)
"""
CLS_GOOD = """\
class RawStorage:
    def _check_open(self):
        pass

    def read_block(self, index):
        self._check_open()
        return self.backend.read(index)

    def close(self):
        pass
"""

CON_METHODS = (
    "dummy_update",
    "dummy_update_batch",
    "update_block",
    "update_range",
    "plan_update_range",
    "append_blocks",
    "plan_append_blocks",
)
CON_BAD = """\
class VolatileAgent:
    def dummy_update(self):
        self._relocate()
"""
CON_GOOD = "class StegAgent:\n" + "".join(
    f"    def {name}(self):\n        with self._exclusive('{name}'):\n            pass\n"
    for name in CON_METHODS
)

EXC_BAD = """\
def run(workload):
    try:
        workload()
    except Exception:
        return None
"""
EXC_GOOD = """\
def run(workload, future):
    try:
        workload()
    except ValueError:
        return None
    except BaseException as error:
        future.fail(error)
        raise
"""

TRC_BAD = """\
def replay(trace, events):
    for op, index, time_ms in events:
        trace.record(op, index, time_ms)
"""
TRC_GOOD = """\
def replay(trace, ops, indices, times):
    trace.record_many(ops, indices, times)
"""

TYP_USE_BAD = """\
class RawStorage:
    def read_block(self, index):
        return bytes(16)

    def close(self):
        self._closed = True


def drain(path, stale):
    store = RawStorage(path)
    if stale:
        store.close()
    return store.read_block(0)
"""
TYP_USE_GOOD = """\
class RawStorage:
    def read_block(self, index):
        return bytes(16)

    def close(self):
        self._closed = True


def drain(path, stale):
    store = RawStorage(path)
    try:
        return store.read_block(0)
    finally:
        store.close()
"""

TYP_LEAK_BAD = """\
class MmapFileBackend:
    @classmethod
    def open(cls, path):
        return cls()

    def write(self, index, data):
        pass

    def close(self):
        pass


def rewrite(path, blocks):
    backend = MmapFileBackend.open(path)
    for index, data in blocks:
        backend.write(index, data)
    backend.close()
"""
TYP_LEAK_GOOD = """\
class MmapFileBackend:
    @classmethod
    def open(cls, path):
        return cls()

    def write(self, index, data):
        pass

    def close(self):
        pass


def rewrite(path, blocks):
    backend = MmapFileBackend.open(path)
    try:
        for index, data in blocks:
            backend.write(index, data)
    finally:
        backend.close()
"""

OBL_BAD = """\
def refresh(device, key, probe, payload):
    if key == probe:
        device.write_block(0, payload)
"""
OBL_GOOD = """\
def refresh(device, key, probe, payload):
    matched = key == probe
    credit = 1 if matched else 0
    device.write_block(0, payload)
    return credit
"""

OBL_SHAPE_BAD = """\
class WriteStep:
    def __init__(self, index):
        self.index = index


def plan_update(key, probe, index):
    steps = [WriteStep(index)]
    if key == probe:
        steps.append(WriteStep(index + 1))
    return steps
"""
OBL_SHAPE_GOOD = """\
class WriteStep:
    def __init__(self, index):
        self.index = index


def plan_update(key, probe, index, decoy):
    target = index if key == probe else decoy
    return [WriteStep(target), WriteStep(target + 1)]
"""

CASES = {
    "ENT001": (ENT_BAD, ENT_GOOD, 1),
    "PLN001": (PLN_BAD, PLN_GOOD, 3),
    "CLS001": (CLS_BAD, CLS_GOOD, 2),
    "CON001": (CON_BAD, CON_GOOD, 2),
    "EXC001": (EXC_BAD, EXC_GOOD, 4),
    "TRC001": (TRC_BAD, TRC_GOOD, 3),
    "TYP001": (TYP_USE_BAD, TYP_USE_GOOD, 13),
    "TYP002": (TYP_LEAK_BAD, TYP_LEAK_GOOD, 16),
    "OBL001": (OBL_BAD, OBL_GOOD, 3),
    "OBL002": (OBL_SHAPE_BAD, OBL_SHAPE_GOOD, 8),
}

#: Paths that put the fixture inside each rule's scope.
FIXTURE_PATHS = {
    "CLS001": "src/repro/storage/disk.py",
    "CON001": "src/repro/core/agent.py",
}


def _codes(findings):
    return [finding.code for finding in findings]


@pytest.mark.parametrize("code", sorted(CASES))
def test_violating_fixture_is_flagged(code):
    bad, _, _ = CASES[code]
    path = FIXTURE_PATHS.get(code, "src/repro/fixture.py")
    assert code in _codes(lint_source(bad, path))


@pytest.mark.parametrize("code", sorted(CASES))
def test_compliant_fixture_is_clean(code):
    _, good, _ = CASES[code]
    path = FIXTURE_PATHS.get(code, "src/repro/fixture.py")
    assert lint_source(good, path) == []


@pytest.mark.parametrize("code", sorted(CASES))
def test_pragma_with_justification_suppresses(code):
    bad, _, line = CASES[code]
    path = FIXTURE_PATHS.get(code, "src/repro/fixture.py")
    lines = bad.splitlines()
    indent = " " * (len(lines[line - 1]) - len(lines[line - 1].lstrip()))
    pragma = f"{indent}# repro-lint: ignore[{code}] -- fixture-approved exception"
    suppressed = "\n".join(lines[: line - 1] + [pragma] + lines[line - 1 :]) + "\n"
    assert code not in _codes(lint_source(suppressed, path))


@pytest.mark.parametrize("code", sorted(CASES))
def test_pragma_without_justification_is_a_finding(code):
    bad, _, line = CASES[code]
    path = FIXTURE_PATHS.get(code, "src/repro/fixture.py")
    lines = bad.splitlines()
    indent = " " * (len(lines[line - 1]) - len(lines[line - 1].lstrip()))
    pragma = f"{indent}# repro-lint: ignore[{code}]"
    unsuppressed = "\n".join(lines[: line - 1] + [pragma] + lines[line - 1 :]) + "\n"
    codes = _codes(lint_source(unsuppressed, path))
    assert PRAGMA_CODE in codes, "a justification-less pragma must itself be reported"
    assert code in codes, "a justification-less pragma must not suppress"


class TestFrameworkBehaviour:
    def test_registry_has_all_fifteen_rules(self):
        assert set(registered_rules()) >= set(CASES)
        assert len(registered_rules()) == 15

    def test_trailing_pragma_suppresses_same_line(self):
        source = "import random  # repro-lint: ignore[ENT001] -- fixture\n"
        assert lint_source(source, "src/repro/fixture.py") == []

    def test_pragma_only_suppresses_listed_codes(self):
        source = "# repro-lint: ignore[TRC001] -- wrong code\nimport random\n"
        assert "ENT001" in _codes(lint_source(source, "src/repro/fixture.py"))

    def test_syntax_error_is_reported_not_raised(self):
        assert _codes(lint_source("def broken(:\n")) == [SYNTAX_CODE]

    def test_entropy_rule_resolves_aliases(self):
        source = "import numpy as np\n\nvalue = np.random.default_rng(0)\n"
        findings = lint_source(source, "src/repro/fixture.py")
        assert [(f.code, f.line) for f in findings] == [("ENT001", 3)]

    def test_entropy_rule_allows_prng_seam_file(self):
        assert lint_source(ENT_BAD, "src/repro/crypto/prng.py") == []

    def test_entropy_rule_allows_monotonic_clock(self):
        source = "import time\n\nstart = time.monotonic()\n"
        assert lint_source(source, "src/repro/fixture.py") == []

    def test_plan_purity_follows_transitive_calls(self):
        source = (
            "class Thing:\n"
            "    def plan_write(self):\n"
            "        return self._helper()\n"
            "\n"
            "    def _helper(self):\n"
            "        return self.storage.write_blocks([], [])\n"
        )
        findings = lint_source(source, "src/repro/fixture.py")
        assert any(
            f.code == "PLN001" and "Thing.plan_write -> Thing._helper" in f.message
            for f in findings
        )

    def test_closed_guard_rule_flags_missing_class(self):
        source = "class SomethingElse:\n    pass\n"
        findings = lint_source(source, "src/repro/storage/disk.py")
        assert any(f.code == "CLS001" and "RawStorage" in f.message for f in findings)

    def test_concurrency_rule_flags_missing_primitive(self):
        source = "class StegAgent:\n    def dummy_update(self):\n        pass\n"
        findings = lint_source(source, "src/repro/core/agent.py")
        messages = [f.message for f in findings if f.code == "CON001"]
        assert any("plan_update_range" in message and "not found" in message for message in messages)

    def test_broad_except_with_bare_reraise_is_clean(self):
        source = "try:\n    pass\nexcept BaseException:\n    raise\n"
        assert lint_source(source, "src/repro/fixture.py") == []


class TestAnchoring:
    """Findings on continuation lines anchor to the statement's first line."""

    MULTILINE = "import numpy as np\n\nvalue = (\n    np.random.default_rng(0)\n)\n"

    def test_finding_on_continuation_line_is_anchored_to_statement(self):
        findings = lint_source(self.MULTILINE, "src/repro/fixture.py")
        assert [(f.code, f.line) for f in findings] == [("ENT001", 3)]

    def test_pragma_on_opening_line_covers_the_whole_statement(self):
        source = self.MULTILINE.replace(
            "value = (", "value = (  # repro-lint: ignore[ENT001] -- fixture"
        )
        assert lint_source(source, "src/repro/fixture.py") == []

    def test_compound_body_is_not_anchored_to_the_header(self):
        source = (
            "def build():  # repro-lint: ignore[ENT001] -- fixture: wrong line\n"
            "    import random\n"
        )
        assert "ENT001" in _codes(lint_source(source, "src/repro/fixture.py"))


class TestRealTree:
    def test_src_tree_is_clean(self):
        assert main([str(SRC_ROOT)]) == 0

    def test_seeded_violation_in_agent_is_caught(self):
        """The acceptance scenario: a stray ``import random`` in core/agent.py."""
        agent_path = SRC_ROOT / "repro" / "core" / "agent.py"
        source = agent_path.read_text()
        assert lint_source(source, str(agent_path)) == []
        seeded = source.replace(
            "from __future__ import annotations",
            "from __future__ import annotations\nimport random",
            1,
        )
        assert seeded != source
        findings = lint_source(seeded, str(agent_path))
        assert [f.code for f in findings] == ["ENT001"]

    def test_static_inventory_covers_all_specs(self):
        inventory = static_inventory(SRC_ROOT)
        assert set(inventory) == {spec.class_name for spec in GUARD_SPECS}
        assert all(inventory.values()), "every guarded class has at least one guarded method"


class TestCli:
    def _violating_tree(self, tmp_path):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("import random\n")
        return tmp_path / "src"

    def test_exit_one_and_github_annotation(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        assert main([str(root), "--format=github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "title=ENT001" in out

    def test_json_format_is_parseable(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        assert main([str(root), "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["code"] == "ENT001"
        assert payload[0]["line"] == 1

    def test_explain_prints_contract_for_every_code(self, capsys):
        codes = [*registered_rules(), PRAGMA_CODE, SYNTAX_CODE]
        for code in codes:
            assert main(["--explain", code]) == 0
            out = capsys.readouterr().out
            assert out.startswith(f"{code}:")
            assert "contract:" in out and "rationale:" in out and "dynamic:" in out

    def test_explain_unknown_code_exits_two(self, capsys):
        assert main(["--explain", "ZZZ999"]) == 2
        assert "known codes" in capsys.readouterr().out

    def test_sarif_format_carries_rule_metadata(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        assert main([str(root), "--format=sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert set(rule_ids) >= {"ENT001", "TYP001", "OBL001", PRAGMA_CODE}
        (result,) = run["results"]
        assert result["ruleId"] == "ENT001"
        assert rule_ids[result["ruleIndex"]] == "ENT001"
        assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 1

    def test_sarif_witness_chain_becomes_related_locations(self, tmp_path, capsys):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "leak.py").write_text(OBL_BAD)
        assert main([str(tmp_path / "src"), "--format=sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        (result,) = document["runs"][0]["results"]
        steps = [
            (
                location["physicalLocation"]["region"]["startLine"],
                location["message"]["text"],
            )
            for location in result["relatedLocations"]
        ]
        assert steps == [(2, "witness step 1"), (3, "witness step 2")]

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "good.py").write_text("VALUE = 1\n")
        assert main([str(tmp_path / "src")]) == 0
        assert "0 findings" in capsys.readouterr().out
