"""Unit tests for the StegFS substrate: headers, allocator, volume operations."""

from __future__ import annotations

import pytest

from repro.crypto.cbc import CbcCipher
from repro.crypto.keys import FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.errors import (
    HiddenFileNotFoundError,
    IntegrityError,
    VolumeFullError,
)
from repro.stegfs.allocator import RandomAllocator
from repro.stegfs.constants import pointers_per_header
from repro.stegfs.dummy import build_dummy_content, create_dummy_file
from repro.stegfs.filesystem import StegFsVolume, VolumeConfig
from repro.stegfs.header import FileHeader, path_digest
from repro.storage.device import RawDevice

from conftest import make_storage


class TestFileHeader:
    def test_serialise_parse_roundtrip_single_chunk(self):
        header = FileHeader(path="/a", file_size=1000, block_pointers=[5, 9, 13], header_blocks=[2])
        payloads = header.serialise(496)
        assert len(payloads) == 1
        chunk = FileHeader.parse_chunk(payloads[0])
        rebuilt = FileHeader.from_chunks("/a", [chunk], [2])
        assert rebuilt.block_pointers == [5, 9, 13]
        assert rebuilt.file_size == 1000
        assert not rebuilt.is_dummy

    def test_serialise_parse_roundtrip_multi_chunk(self):
        per_block = pointers_per_header(496)
        pointers = list(range(per_block * 2 + 3))
        header = FileHeader(
            path="/big",
            file_size=12345,
            block_pointers=pointers,
            header_blocks=[1, 2, 3],
            is_dummy=True,
        )
        payloads = header.serialise(496)
        assert len(payloads) == 3
        chunks = [FileHeader.parse_chunk(p) for p in payloads]
        assert chunks[0].has_next and chunks[0].next_header == 2
        assert chunks[1].has_next and chunks[1].next_header == 3
        assert not chunks[2].has_next
        rebuilt = FileHeader.from_chunks("/big", chunks, [1, 2, 3])
        assert rebuilt.block_pointers == pointers
        assert rebuilt.is_dummy

    def test_parse_rejects_garbage(self):
        with pytest.raises(IntegrityError):
            FileHeader.parse_chunk(b"\x00" * 496)

    def test_wrong_path_digest_rejected(self):
        header = FileHeader(path="/a", file_size=10, block_pointers=[1], header_blocks=[0])
        chunk = FileHeader.parse_chunk(header.serialise(496)[0])
        with pytest.raises(IntegrityError):
            FileHeader.from_chunks("/other", [chunk], [0])

    def test_relocate_updates_pointer_and_returns_old(self):
        header = FileHeader(path="/a", block_pointers=[10, 20, 30], header_blocks=[1])
        old = header.relocate(1, 99)
        assert old == 20
        assert header.block_pointers == [10, 99, 30]

    def test_logical_of_physical(self):
        header = FileHeader(path="/a", block_pointers=[10, 20], header_blocks=[1])
        assert header.logical_of_physical(20) == 1
        assert header.logical_of_physical(77) is None

    def test_all_blocks_includes_headers(self):
        header = FileHeader(path="/a", block_pointers=[10, 20], header_blocks=[1, 2])
        assert header.all_blocks() == {1, 2, 10, 20}

    def test_headers_needed(self):
        per_block = pointers_per_header(496)
        header = FileHeader(path="/a", block_pointers=list(range(per_block + 1)), header_blocks=[])
        assert header.headers_needed(496) == 2

    def test_path_digest_is_16_bytes(self):
        assert len(path_digest("/x")) == 16

    def test_serialise_requires_enough_header_blocks(self):
        per_block = pointers_per_header(496)
        header = FileHeader(path="/a", block_pointers=list(range(per_block * 2)), header_blocks=[1])
        with pytest.raises(ValueError):
            header.serialise(496)


class TestRandomAllocator:
    def test_allocate_marks_blocks(self):
        allocator = RandomAllocator(100, Sha256Prng(1))
        index = allocator.allocate_random()
        assert allocator.is_allocated(index)
        assert allocator.used_blocks == 1

    def test_allocate_many_unique(self):
        allocator = RandomAllocator(200, Sha256Prng(2))
        blocks = allocator.allocate_many(50)
        assert len(set(blocks)) == 50
        assert allocator.used_blocks == 50

    def test_allocation_exhaustion(self):
        allocator = RandomAllocator(10, Sha256Prng(3))
        allocator.allocate_many(10)
        with pytest.raises(VolumeFullError):
            allocator.allocate_random()

    def test_allocate_many_overflow_rejected(self):
        allocator = RandomAllocator(10, Sha256Prng(3))
        with pytest.raises(VolumeFullError):
            allocator.allocate_many(11)

    def test_free_and_reuse(self):
        allocator = RandomAllocator(10, Sha256Prng(4))
        blocks = allocator.allocate_many(10)
        allocator.free(blocks[0])
        assert allocator.free_blocks == 1
        assert allocator.allocate_random() == blocks[0]

    def test_allocate_specific(self):
        allocator = RandomAllocator(10, Sha256Prng(5))
        assert allocator.allocate_specific(7)
        assert not allocator.allocate_specific(7)

    def test_transfer(self):
        allocator = RandomAllocator(10, Sha256Prng(6))
        allocator.allocate_specific(3)
        allocator.transfer(3, 8)
        assert not allocator.is_allocated(3)
        assert allocator.is_allocated(8)

    def test_utilisation(self):
        allocator = RandomAllocator(100, Sha256Prng(7))
        allocator.allocate_many(25)
        assert allocator.utilisation == pytest.approx(0.25)

    def test_nearly_full_volume_fallback(self):
        allocator = RandomAllocator(64, Sha256Prng(8), max_probes=1)
        blocks = allocator.allocate_many(63)
        last = allocator.allocate_random()
        assert last not in blocks


class TestStegFsVolume:
    def test_create_open_read_roundtrip(self, volume, fak):
        content = b"the quick brown fox" * 50
        created = volume.create_file(fak, "/docs/secret", content)
        reopened = volume.open_file(fak, "/docs/secret")
        assert reopened.header.block_pointers == created.header.block_pointers
        assert volume.read_file(reopened) == content

    def test_read_block_by_logical_index(self, volume, fak):
        payload = volume.data_field_bytes
        content = b"A" * payload + b"B" * payload + b"C" * 10
        handle = volume.create_file(fak, "/f", content)
        assert volume.read_block(handle, 0) == b"A" * payload
        assert volume.read_block(handle, 1) == b"B" * payload
        assert volume.read_block(handle, 2).startswith(b"C" * 10)

    def test_empty_file(self, volume, fak):
        handle = volume.create_file(fak, "/empty", b"")
        assert handle.num_blocks == 0
        assert volume.read_file(handle) == b""
        reopened = volume.open_file(fak, "/empty")
        assert volume.read_file(reopened) == b""

    def test_wrong_key_cannot_open(self, volume, fak, prng):
        volume.create_file(fak, "/f", b"data")
        wrong = FileAccessKey.generate(prng.spawn("wrong"))
        with pytest.raises(HiddenFileNotFoundError):
            volume.open_file(wrong, "/f")

    def test_wrong_path_cannot_open(self, volume, fak):
        volume.create_file(fak, "/f", b"data")
        with pytest.raises(HiddenFileNotFoundError):
            volume.open_file(fak, "/g")

    def test_blocks_are_scattered_not_contiguous(self, volume, fak):
        content = b"x" * (volume.data_field_bytes * 20)
        handle = volume.create_file(fak, "/scatter", content)
        pointers = handle.header.block_pointers
        gaps = [b - a for a, b in zip(pointers, pointers[1:], strict=False)]
        assert any(abs(gap) > 1 for gap in gaps)

    def test_write_block_in_place_keeps_location(self, volume, fak):
        content = b"y" * (volume.data_field_bytes * 3)
        handle = volume.create_file(fak, "/inplace", content)
        physical_before = handle.header.physical_block(1)
        volume.write_block_in_place(handle, 1, b"updated")
        assert handle.header.physical_block(1) == physical_before
        assert volume.read_block(handle, 1).startswith(b"updated")

    def test_update_is_visible_after_reopen_and_save(self, volume, fak):
        handle = volume.create_file(fak, "/persist", b"z" * volume.data_field_bytes * 2)
        volume.write_block_in_place(handle, 0, b"fresh")
        volume.save_header(handle)
        reopened = volume.open_file(fak, "/persist")
        assert volume.read_block(reopened, 0).startswith(b"fresh")

    def test_delete_frees_blocks(self, volume, fak):
        handle = volume.create_file(fak, "/del", b"d" * volume.data_field_bytes * 4)
        used_before = volume.allocator.used_blocks
        volume.delete_file(handle)
        assert volume.allocator.used_blocks < used_before

    def test_volume_full(self, prng):
        storage = make_storage(num_blocks=16)
        small = StegFsVolume(RawDevice(storage), prng.spawn("small"))
        fak = FileAccessKey.generate(prng.spawn("fak"))
        with pytest.raises(VolumeFullError):
            small.create_file(fak, "/huge", b"x" * small.data_field_bytes * 32)

    def test_rewrite_with_new_iv_preserves_content(self, volume, fak):
        handle = volume.create_file(fak, "/dummyupd", b"stable content")
        physical = handle.header.physical_block(0)
        raw_before = volume.device.peek_block(physical)
        volume.rewrite_with_new_iv(physical, handle.content_key)
        raw_after = volume.device.peek_block(physical)
        assert raw_before != raw_after
        assert volume.read_block(handle, 0).startswith(b"stable content")

    def test_append_block(self, volume, fak):
        handle = volume.create_file(fak, "/grow", b"a" * volume.data_field_bytes)
        logical = volume.append_block(handle, b"appended")
        assert logical == 1
        assert volume.read_block(handle, 1).startswith(b"appended")
        volume.save_header(handle)
        reopened = volume.open_file(fak, "/grow")
        assert reopened.num_blocks == 2

    def test_two_files_do_not_collide(self, volume, prng):
        fak1 = FileAccessKey.generate(prng.spawn("1"))
        fak2 = FileAccessKey.generate(prng.spawn("2"))
        h1 = volume.create_file(fak1, "/one", b"1" * volume.data_field_bytes * 5)
        h2 = volume.create_file(fak2, "/two", b"2" * volume.data_field_bytes * 5)
        assert h1.header.all_blocks().isdisjoint(h2.header.all_blocks())
        assert volume.read_file(h1) == b"1" * volume.data_field_bytes * 5
        assert volume.read_file(h2) == b"2" * volume.data_field_bytes * 5

    def test_cbc_cipher_factory_also_works(self, prng):
        storage = make_storage(num_blocks=64)
        config = VolumeConfig(cipher_factory=lambda key: CbcCipher(key, pad=False))
        volume = StegFsVolume(RawDevice(storage), prng.spawn("cbcvol"), config)
        fak = FileAccessKey.generate(prng.spawn("fak"))
        handle = volume.create_file(fak, "/cbc", b"cbc protected content")
        assert volume.read_file(volume.open_file(fak, "/cbc")) == b"cbc protected content"

    def test_ciphertext_on_disk_differs_from_plaintext(self, volume, fak):
        content = b"plaintext marker" * 10
        handle = volume.create_file(fak, "/ct", content)
        physical = handle.header.physical_block(0)
        assert b"plaintext marker" not in volume.device.peek_block(physical)


class TestDummyFiles:
    def test_create_dummy_file(self, volume, prng):
        fak, handle = create_dummy_file(volume, "/dummy0", 5, prng)
        assert handle.is_dummy
        assert handle.num_blocks == 5
        assert fak.is_dummy

    def test_dummy_file_reopens(self, volume, prng):
        fak, _ = create_dummy_file(volume, "/dummy1", 3, prng)
        reopened = volume.open_file(fak, "/dummy1")
        assert reopened.is_dummy
        assert reopened.num_blocks == 3

    def test_build_dummy_content_size(self, prng):
        content = build_dummy_content(prng, 4, 100)
        assert len(content) == 400

    def test_dummy_content_negative_rejected(self, prng):
        with pytest.raises(ValueError):
            build_dummy_content(prng, -1, 100)
