"""Integration tests: end-to-end scenarios spanning several subsystems.

These tests exercise the claims of the paper rather than individual
modules: the update-analysis attacker wins against the unprotected
systems and loses against StegHide; the traffic-analysis attacker wins
against plain StegFS reads and loses against the oblivious store; a
coerced user can produce a deniable view of his keys.
"""

from __future__ import annotations

import pytest

from repro import HiddenVolumeService, build_nonvolatile_system, build_steghide_system
from repro.attacks.observer import SnapshotObserver, TraceObserver
from repro.attacks.traffic_analysis import TrafficAnalysisAttacker
from repro.attacks.update_analysis import UpdateAnalysisAttacker
from repro.baselines.cleandisk import CleanDiskFileSystem
from repro.core.nonvolatile import NonVolatileAgent
from repro.core.oblivious.reader import ObliviousReader
from repro.core.oblivious.store import ObliviousStore, ObliviousStoreConfig
from repro.crypto.keys import FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.errors import HiddenFileNotFoundError
from repro.stegfs.filesystem import StegFsVolume
from repro.storage.device import RawDevice, split_volume
from repro.storage.trace import IoTrace
from repro.workloads.tableupdate import SalaryTable, TableUpdateWorkload

from conftest import make_storage


class TestUpdateAnalysisEndToEnd:
    """The Figure-1 scenario: snapshots betray a conventional system, not StegHide."""

    def _run_salary_updates(self, adapter, storage, updates=12, intervals=6):
        prng = Sha256Prng("salary-run")
        workload = TableUpdateWorkload(adapter, SalaryTable.generate(400, prng.spawn("table")))
        observer = SnapshotObserver(storage)
        observer.observe("t0")
        for interval in range(intervals):
            workload.run_random_updates(updates // intervals or 1, prng.spawn(f"i{interval}"))
            observer.observe(f"t{interval + 1}")
        return observer.changed_blocks_per_interval()

    def test_cleandisk_updates_are_detected(self):
        storage = make_storage(num_blocks=2048)
        adapter = CleanDiskFileSystem(storage)
        changed = self._run_salary_updates(adapter, storage)
        attacker = UpdateAnalysisAttacker(num_blocks=storage.geometry.num_blocks)
        assert attacker.analyse(changed).suspects_hidden_activity

    def test_steghide_updates_with_dummies_are_not_detected(self):
        prng = Sha256Prng("steghide-e2e")
        storage = make_storage(num_blocks=2048)
        volume = StegFsVolume(RawDevice(storage), prng.spawn("volume"))
        agent = NonVolatileAgent(volume, prng.spawn("agent"))
        fak = FileAccessKey.generate(prng.spawn("fak"))
        table = SalaryTable.generate(400, prng.spawn("table"))
        handle = agent.create_file(fak, "/db/sal_table", table.serialise())

        observer = SnapshotObserver(storage)
        observer.observe("t0")
        workload_prng = prng.spawn("updates")
        for interval in range(6):
            # Two real row updates mixed with dummy updates, as the agent does.
            for _ in range(2):
                name, _ = table.rows[workload_prng.randrange(len(table.rows))]
                table.set_salary(name, 30_000 + workload_prng.randrange(200_000))
                serialised = table.serialise()
                offset = table.row_offset(name)
                first = offset // volume.data_field_bytes
                last = (offset + 63) // volume.data_field_bytes
                for logical in range(first, last + 1):
                    start = logical * volume.data_field_bytes
                    agent.update_block(
                        handle, logical, serialised[start : start + volume.data_field_bytes]
                    )
            agent.idle(6)
            observer.observe(f"t{interval + 1}")

        attacker = UpdateAnalysisAttacker(num_blocks=storage.geometry.num_blocks)
        verdict = attacker.analyse(observer.changed_blocks_per_interval())
        assert not verdict.suspects_hidden_activity
        # And the table still reads back correctly.
        assert SalaryTable.deserialise(agent.read_file(handle)).rows == table.rows

    def test_dummy_only_intervals_look_like_busy_intervals(self):
        """Idle periods with dummy updates are indistinguishable from busy periods."""
        service = HiddenVolumeService.create("nonvolatile", volume_mib=4, seed=11)
        session = service.login(service.new_keyring("dba"))
        session.create("/f", b"d" * service.volume.data_field_bytes * 8)
        observer = SnapshotObserver(service.storage)

        busy_counts, idle_counts = [], []
        observer.observe()
        for interval in range(8):
            if interval % 2 == 0:
                session.write("/f", b"real update", at=0)
                service.idle(3)
            else:
                service.idle(4)
            observer.observe()
            diff = observer.diffs()[-1]
            (busy_counts if interval % 2 == 0 else idle_counts).append(diff.change_count)

        attacker = UpdateAnalysisAttacker(num_blocks=service.storage.geometry.num_blocks)
        assert attacker.activity_correlation(busy_counts, idle_counts) < 0.2


class TestTrafficAnalysisEndToEnd:
    def test_plain_stegfs_sequential_reads_are_detected(self):
        prng = Sha256Prng("traffic-plain")
        storage = make_storage(num_blocks=2048)
        volume = StegFsVolume(RawDevice(storage), prng.spawn("volume"))
        fak = FileAccessKey.generate(prng.spawn("fak"))
        handle = volume.create_file(fak, "/f", b"x" * volume.data_field_bytes * 64)
        observer = TraceObserver(storage)
        observer.start()
        for _ in range(5):
            volume.read_file(handle)
        attacker = TrafficAnalysisAttacker(num_blocks=storage.geometry.num_blocks)
        verdict = attacker.analyse(observer.capture())
        # Re-reading the same scattered blocks five times gives repeated
        # addresses and a skewed distribution: the attacker wins.
        assert verdict.suspects_hidden_activity

    def test_oblivious_store_reads_are_not_detected(self):
        prng = Sha256Prng("traffic-oblivious")
        storage = make_storage(num_blocks=4096)
        steg_part, obli_part = split_volume(storage, 2048)
        volume = StegFsVolume(steg_part, prng.spawn("volume"))
        fak = FileAccessKey.generate(prng.spawn("fak"))
        handle = volume.create_file(fak, "/f", b"x" * volume.data_field_bytes * 48)
        store = ObliviousStore(
            obli_part,
            ObliviousStoreConfig(buffer_blocks=8, last_level_blocks=256),
            prng.spawn("store"),
        )
        reader = ObliviousReader(volume, store, prng.spawn("reader"))

        # Warm the cache, then observe repeated reads of the same file.
        reader.read_file(handle)
        observer = TraceObserver(storage)
        observer.start()
        for _ in range(3):
            reader.read_file(handle)
        observed = observer.capture()
        # The attacker's reference: dummy reads through the same store.
        observer.start()
        for _ in range(3 * handle.num_blocks):
            reader.dummy_oblivious_read()
        reference = observer.capture()

        # The re-order (sort) traffic is request-independent bulk I/O; the
        # distinguishing question is whether the *probe* pattern of real
        # reads differs from that of dummy reads (Definition 1).
        def probes(trace):
            return IoTrace([e for e in trace.reads() if not e.stream.endswith("-sort")])

        attacker = TrafficAnalysisAttacker(num_blocks=storage.geometry.num_blocks)
        observed_verdict = attacker.analyse(probes(observed), probes(reference))
        reference_verdict = attacker.analyse(probes(reference))
        assert observed_verdict.advantage_vs_reference < 0.25
        assert observed_verdict.sequential_run_fraction < 0.2
        assert abs(
            observed_verdict.sequential_run_fraction
            - reference_verdict.sequential_run_fraction
        ) < 0.1


class TestPlausibleDeniability:
    def test_disclosed_dummy_view_cannot_open_real_file_content(self):
        service = HiddenVolumeService.create("volatile", volume_mib=4, seed=21)
        secret_content = b"the real secret" * 100
        alice = service.login(service.new_keyring("alice"))
        alice.create("/alice/secret", secret_content)
        alice.create_decoy("/alice/decoy", size_bytes=len(secret_content))
        keyring = alice.keyring

        # Under coercion Alice reveals only the deniable view and walks away.
        disclosed = alice.deniable_view()
        assert all(k.content_key is None for k in disclosed.all_keys().values())
        alice.logout()

        # The coercer can log in and open the files as dummies but never
        # sees the plaintext.
        coercer = service.login(disclosed)
        leaked = coercer.read("/alice/secret")
        assert secret_content not in leaked
        coercer.logout()

        # Alice herself can still recover everything with the true keys.
        alice = service.login(keyring)
        assert alice.read("/alice/secret") == secret_content

    def test_without_any_key_files_are_undiscoverable(self):
        service = HiddenVolumeService.create("volatile", volume_mib=4, seed=22)
        session = service.login(service.new_keyring("alice"))
        session.create("/alice/secret", b"hidden")
        stranger_key = FileAccessKey.generate(service.prng.spawn("stranger"))
        with pytest.raises(HiddenFileNotFoundError):
            service.volume.open_file(stranger_key, "/alice/secret")


class TestDeprecatedBuilderShims:
    """The pre-2.0 builders still work, but warn and route through the facade."""

    def test_build_steghide_system_flow(self):
        with pytest.deprecated_call():
            system = build_steghide_system(volume_mib=4, seed=7)
        fak = system.new_fak()
        handle = system.agent.create_file(fak, "/secret/report.txt", b"top secret")
        assert system.agent.read_file(handle) == b"top secret"

    def test_build_nonvolatile_system_flow(self):
        with pytest.deprecated_call():
            system = build_nonvolatile_system(volume_mib=4, seed=8)
        fak = system.new_fak()
        handle = system.agent.create_file(fak, "/secret/report.txt", b"top secret")
        system.agent.update_block(handle, 0, b"revised secret")
        assert system.agent.read_block(handle, 0).startswith(b"revised secret")
