"""Unit tests for the Definition-1 security metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.security import (
    access_distribution,
    distinguishing_advantage,
    kl_divergence,
    repeat_access_counts,
    total_variation_distance,
    uniformity_chi_square,
)
from repro.crypto.prng import Sha256Prng
from repro.storage.trace import IoTrace


class TestDistributions:
    def test_access_distribution_sums_to_one(self):
        dist = access_distribution([0, 1, 1, 2], num_blocks=4)
        assert dist.sum() == pytest.approx(1.0)
        assert dist[1] == pytest.approx(0.5)

    def test_access_distribution_accepts_trace(self):
        trace = IoTrace()
        trace.record("read", 2, 0.0)
        trace.record("write", 2, 1.0)
        dist = access_distribution(trace, num_blocks=4)
        assert dist[2] == pytest.approx(1.0)

    def test_empty_distribution_is_zero(self):
        assert access_distribution([], num_blocks=4).sum() == 0.0

    def test_total_variation_bounds(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert total_variation_distance(p, q) == pytest.approx(1.0)
        assert total_variation_distance(p, p) == pytest.approx(0.0)

    def test_total_variation_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.ones(3), np.ones(4))

    def test_kl_divergence_zero_for_identical(self):
        p = np.array([0.25, 0.25, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_kl_divergence_positive_for_different(self):
        assert kl_divergence(np.array([0.9, 0.1]), np.array([0.1, 0.9])) > 0.5


class TestUniformityTest:
    def test_uniform_sample_passes(self):
        prng = Sha256Prng("uniform")
        indices = [prng.randrange(1000) for _ in range(5000)]
        _, p_value = uniformity_chi_square(indices, 1000)
        assert p_value > 0.001

    def test_skewed_sample_fails(self):
        indices = [5] * 500 + [900] * 500
        _, p_value = uniformity_chi_square(indices, 1000)
        assert p_value < 1e-6

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            uniformity_chi_square([], 10)


class TestAdvantage:
    def test_identical_traces_have_no_advantage(self):
        prng = Sha256Prng("adv")
        a = [prng.randrange(500) for _ in range(2000)]
        b = [prng.randrange(500) for _ in range(2000)]
        assert distinguishing_advantage(a, b, 500) < 0.15

    def test_concentrated_trace_is_distinguishable(self):
        prng = Sha256Prng("adv2")
        uniform = [prng.randrange(500) for _ in range(2000)]
        concentrated = [7] * 2000
        assert distinguishing_advantage(concentrated, uniform, 500) > 0.8


class TestRepeatCounts:
    def test_repeat_access_counts(self):
        counts = repeat_access_counts([1, 1, 1, 2, 2, 3])
        assert counts[3] == 1  # one block touched three times
        assert counts[2] == 1
        assert counts[1] == 1
