"""API-surface snapshot: accidental exports and plumbing leaks fail CI.

Two guarantees:

* ``repro.__all__`` (and the service package's surface) is pinned
  exactly — adding or removing a public name is a deliberate,
  reviewed change to this file, never an accident;
* the examples and the Figure-10/11 benchmarks stay on the public
  session/scenario API — no ``_faks``, ``data_field_bytes`` or manual
  ``FileAccessKey`` wiring outside ``src/repro/``.
"""

from __future__ import annotations

import pathlib

import pytest

import repro
import repro.service

REPO_ROOT = pathlib.Path(__file__).parent.parent

EXPECTED_TOP_LEVEL = [
    "AES",
    "BlockBackend",
    "CbcCipher",
    "ConcurrencyScenario",
    "ConcurrentSession",
    "ConcurrentVolumeService",
    "CrashScenario",
    "DiskLatencyModel",
    "EngineStats",
    "ExperimentResult",
    "FastFieldCipher",
    "FaultInjectingBackend",
    "FileAccessKey",
    "FileSpec",
    "FileStat",
    "HiddenFileExistsError",
    "HiddenFileNotFoundError",
    "HiddenVolumeService",
    "IoPlan",
    "IoTrace",
    "JournalBackend",
    "KeyRing",
    "MemoryBackend",
    "MmapFileBackend",
    "NonVolatileAgent",
    "ObliviousConfig",
    "ObliviousCostModel",
    "ObliviousReader",
    "ObliviousStore",
    "ObliviousStoreConfig",
    "Partition",
    "PlanJournal",
    "PlannedOp",
    "RawDevice",
    "RawStorage",
    "Retrieval",
    "Scenario",
    "Session",
    "Sha256Prng",
    "StegAgent",
    "StegFsVolume",
    "SteghideSystem",
    "StorageGeometry",
    "TableUpdates",
    "TornWrite",
    "TrafficAnalysisProbe",
    "UpdateAnalysisProbe",
    "UpdateResult",
    "Updates",
    "VolatileAgent",
    "VolumeConfig",
    "ZeroLatencyModel",
    "build_nonvolatile_system",
    "build_steghide_system",
    "create_dummy_file",
    "diff_snapshots",
    "oblivious_height",
    "overhead_factor",
    "run_experiment",
    "take_snapshot",
]

EXPECTED_SERVICE = [
    "CONSTRUCTIONS",
    "ConcurrencyScenario",
    "ConcurrentSession",
    "ConcurrentVolumeService",
    "CrashScenario",
    "EngineStats",
    "ExperimentResult",
    "FileStat",
    "HiddenVolumeService",
    "ObliviousConfig",
    "Retrieval",
    "Scenario",
    "Session",
    "TableUpdates",
    "TrafficAnalysisProbe",
    "UpdateAnalysisProbe",
    "Updates",
    "run_experiment",
]


class TestExportSnapshot:
    def test_top_level_all_is_pinned(self):
        assert sorted(repro.__all__) == EXPECTED_TOP_LEVEL

    def test_service_all_is_pinned(self):
        assert sorted(repro.service.__all__) == EXPECTED_SERVICE

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
        for name in repro.service.__all__:
            assert getattr(repro.service, name) is not None

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))


class TestDeprecatedShims:
    def test_legacy_builders_warn_but_work(self):
        with pytest.deprecated_call():
            system = repro.build_steghide_system(volume_mib=1, seed=3, block_size=512)
        fak = system.new_fak()
        handle = system.agent.create_file(fak, "/f", b"still works")
        assert system.agent.read_file(handle) == b"still works"

    def test_legacy_builder_matches_service_wiring(self):
        """The shim and the facade produce bit-identical volumes."""
        with pytest.deprecated_call():
            legacy = repro.build_nonvolatile_system(volume_mib=1, seed=5, block_size=512)
        service = repro.HiddenVolumeService.create(
            "nonvolatile", volume_mib=1, seed=5, block_size=512
        )
        assert legacy.storage.geometry == service.storage.geometry
        indices = [0, 1, legacy.storage.geometry.num_blocks - 1]
        for index in indices:
            assert legacy.storage.read_block(index) == service.storage.read_block(index)


class TestDeprecatedErrorAliases:
    def test_old_names_warn_and_resolve_to_new_classes(self):
        import repro.errors

        with pytest.deprecated_call():
            alias = repro.errors.FileNotFoundError_
        assert alias is repro.errors.HiddenFileNotFoundError
        with pytest.deprecated_call():
            alias = repro.errors.FileExistsError_
        assert alias is repro.errors.HiddenFileExistsError

    def test_old_names_still_catch_new_raises(self):
        import repro.errors

        with pytest.deprecated_call():
            legacy = repro.errors.FileNotFoundError_
        with pytest.raises(legacy):
            raise repro.errors.HiddenFileNotFoundError("same class, old name")

    def test_unknown_attribute_still_raises(self):
        import repro.errors

        with pytest.raises(AttributeError):
            repro.errors.NoSuchError  # noqa: B018


# The examples and the Figure-10/11 benchmarks must speak the public
# session/scenario API only.
BANNED_TOKENS = ("_faks", "data_field_bytes", "FileAccessKey")
CLEAN_FILES = [
    "examples/quickstart.py",
    "examples/durable_volume.py",
    "examples/multiuser_agent.py",
    "examples/oblivious_reads.py",
    "examples/salary_database.py",
    "examples/concurrent_server.py",
    "examples/crash_recovery.py",
    "benchmarks/test_concurrent_throughput.py",
    "benchmarks/test_crash_recovery_bench.py",
    "benchmarks/test_plan_fusion_throughput.py",
    "benchmarks/test_fig10a_retrieval_filesize.py",
    "benchmarks/test_fig10b_retrieval_concurrency.py",
    "benchmarks/test_fig11a_update_utilisation.py",
    "benchmarks/test_fig11b_update_range.py",
    "benchmarks/test_fig11c_update_concurrency.py",
]


class TestNoPlumbingOutsideCore:
    @pytest.mark.parametrize("relative", CLEAN_FILES)
    def test_file_uses_public_api_only(self, relative):
        source = (REPO_ROOT / relative).read_text(encoding="utf-8")
        for token in BANNED_TOKENS:
            assert token not in source, f"{relative} references internal plumbing {token!r}"
