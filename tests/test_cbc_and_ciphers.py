"""Unit tests for CBC mode, the fast stream cipher and crypto utilities."""

from __future__ import annotations

import pytest

from repro.crypto.cbc import CbcCipher
from repro.crypto.cipher import FastFieldCipher
from repro.crypto.util import (
    constant_time_equals,
    pkcs7_pad,
    pkcs7_unpad,
    split_blocks,
    xor_bytes,
)
from repro.errors import InvalidBlockSizeError, InvalidKeyError, PaddingError


class TestCbcCipher:
    def test_nist_sp800_38a_cbc_aes128_first_block(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("7649abac8119b246cee98e9b12e9197d")
        cipher = CbcCipher(key, pad=False)
        assert cipher.encrypt(iv, plaintext) == expected

    def test_roundtrip_with_padding(self):
        cipher = CbcCipher(b"k" * 16)
        iv = b"i" * 16
        message = b"hello steganographic world"
        assert cipher.decrypt(iv, cipher.encrypt(iv, message)) == message

    def test_roundtrip_without_padding(self):
        cipher = CbcCipher(b"k" * 32, pad=False)
        iv = b"i" * 16
        message = b"0123456789abcdef" * 4
        assert cipher.decrypt(iv, cipher.encrypt(iv, message)) == message

    def test_changing_iv_changes_whole_ciphertext(self):
        cipher = CbcCipher(b"k" * 16, pad=False)
        message = b"A" * 64
        c1 = cipher.encrypt(b"1" * 16, message)
        c2 = cipher.encrypt(b"2" * 16, message)
        assert c1 != c2
        # CBC chains, so every 16-byte block differs, not just the first.
        assert all(c1[i : i + 16] != c2[i : i + 16] for i in range(0, 64, 16))

    def test_short_iv_is_stretched_deterministically(self):
        cipher = CbcCipher(b"k" * 16)
        message = b"msg"
        assert cipher.encrypt(b"ab", message) == cipher.encrypt(b"ab", message)

    def test_wrong_key_never_recovers_plaintext(self):
        enc = CbcCipher(b"k" * 16)
        wrong = CbcCipher(b"x" * 16)
        iv = b"i" * 16
        ciphertext = enc.encrypt(iv, b"secret data")
        try:
            decrypted = wrong.decrypt(iv, ciphertext)
        except PaddingError:
            return  # garbage padding is the common outcome
        assert decrypted != b"secret data"

    def test_empty_iv_rejected(self):
        cipher = CbcCipher(b"k" * 16)
        with pytest.raises(InvalidKeyError):
            cipher.encrypt(b"", b"data")

    def test_unpadded_requires_multiple_of_block(self):
        cipher = CbcCipher(b"k" * 16, pad=False)
        with pytest.raises(InvalidBlockSizeError):
            cipher.encrypt(b"i" * 16, b"not a multiple")


class TestFastFieldCipher:
    def test_roundtrip(self):
        cipher = FastFieldCipher(b"key-material")
        iv = b"\x01" * 16
        message = bytes(range(256))
        assert cipher.decrypt(iv, cipher.encrypt(iv, message)) == message

    def test_length_preserving(self):
        cipher = FastFieldCipher(b"key")
        assert len(cipher.encrypt(b"iv", b"x" * 1000)) == 1000

    def test_different_ivs_give_different_ciphertexts(self):
        cipher = FastFieldCipher(b"key")
        message = b"\x00" * 128
        assert cipher.encrypt(b"iv1", message) != cipher.encrypt(b"iv2", message)

    def test_different_keys_give_different_ciphertexts(self):
        message = b"\x00" * 128
        assert FastFieldCipher(b"k1").encrypt(b"iv", message) != FastFieldCipher(b"k2").encrypt(
            b"iv", message
        )

    def test_empty_key_rejected(self):
        with pytest.raises(InvalidKeyError):
            FastFieldCipher(b"")

    def test_empty_message(self):
        cipher = FastFieldCipher(b"key")
        assert cipher.encrypt(b"iv", b"") == b""


class TestCryptoUtil:
    def test_xor_bytes(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    def test_pkcs7_roundtrip(self):
        for length in range(0, 33):
            data = b"x" * length
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_pkcs7_pad_always_adds_bytes(self):
        assert len(pkcs7_pad(b"x" * 16)) == 32

    def test_pkcs7_unpad_rejects_bad_padding(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"x" * 15 + b"\x05")

    def test_pkcs7_unpad_rejects_zero_pad_byte(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"x" * 15 + b"\x00")

    def test_pkcs7_unpad_rejects_wrong_length(self):
        with pytest.raises(InvalidBlockSizeError):
            pkcs7_unpad(b"x" * 15)

    def test_split_blocks(self):
        assert split_blocks(b"a" * 32) == [b"a" * 16, b"a" * 16]

    def test_split_blocks_rejects_partial(self):
        with pytest.raises(InvalidBlockSizeError):
            split_blocks(b"a" * 17)

    def test_constant_time_equals(self):
        assert constant_time_equals(b"abc", b"abc")
        assert not constant_time_equals(b"abc", b"abd")
        assert not constant_time_equals(b"abc", b"abcd")
