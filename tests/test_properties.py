"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.cbc import CbcCipher
from repro.crypto.cipher import FastFieldCipher
from repro.crypto.keys import derive_header_location, probe_sequence
from repro.crypto.prng import Sha256Prng
from repro.crypto.util import pkcs7_pad, pkcs7_unpad
from repro.stegfs.constants import pointers_per_header
from repro.stegfs.header import FileHeader
from repro.storage.bitmap import Bitmap
from repro.storage.block import StoredBlock

_SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestCryptoProperties:
    @given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
    @_SLOW
    def test_aes_roundtrip(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(
        key=st.sampled_from([b"k" * 16, b"q" * 24, b"z" * 32]),
        iv=st.binary(min_size=1, max_size=32),
        message=st.binary(min_size=0, max_size=200),
    )
    @_SLOW
    def test_cbc_roundtrip_arbitrary_messages(self, key, iv, message):
        cipher = CbcCipher(key)
        assert cipher.decrypt(iv, cipher.encrypt(iv, message)) == message

    @given(
        key=st.binary(min_size=1, max_size=64),
        iv=st.binary(min_size=1, max_size=32),
        message=st.binary(min_size=0, max_size=512),
    )
    @_SLOW
    def test_fast_cipher_roundtrip_and_length(self, key, iv, message):
        cipher = FastFieldCipher(key)
        ciphertext = cipher.encrypt(iv, message)
        assert len(ciphertext) == len(message)
        assert cipher.decrypt(iv, ciphertext) == message

    @given(data=st.binary(min_size=0, max_size=100))
    @_SLOW
    def test_pkcs7_roundtrip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    @given(seed=st.binary(min_size=1, max_size=32), n=st.integers(min_value=0, max_value=500))
    @_SLOW
    def test_prng_reproducibility(self, seed, n):
        assert Sha256Prng(seed).random_bytes(n) == Sha256Prng(seed).random_bytes(n)

    @given(
        seed=st.binary(min_size=1, max_size=16),
        upper=st.integers(min_value=1, max_value=10_000),
    )
    @_SLOW
    def test_prng_randrange_bounds(self, seed, upper):
        prng = Sha256Prng(seed)
        assert all(0 <= prng.randrange(upper) < upper for _ in range(20))

    @given(seed=st.binary(min_size=1, max_size=16), size=st.integers(min_value=0, max_value=200))
    @_SLOW
    def test_prng_shuffle_is_permutation(self, seed, size):
        items = list(range(size))
        shuffled = list(items)
        Sha256Prng(seed).shuffle(shuffled)
        assert sorted(shuffled) == items

    @given(
        secret=st.binary(min_size=1, max_size=64),
        path=st.text(min_size=0, max_size=64),
        volume=st.integers(min_value=1, max_value=100_000),
    )
    @_SLOW
    def test_header_location_always_in_range(self, secret, path, volume):
        assert 0 <= derive_header_location(secret, path, volume) < volume

    @given(
        secret=st.binary(min_size=1, max_size=32),
        path=st.text(min_size=0, max_size=32),
        volume=st.integers(min_value=1, max_value=5_000),
        limit=st.integers(min_value=1, max_value=64),
    )
    @_SLOW
    def test_probe_sequence_distinct_and_in_range(self, secret, path, volume, limit):
        sequence = probe_sequence(secret, path, volume, limit)
        assert len(sequence) == min(limit, volume)
        assert len(set(sequence)) == len(sequence)
        assert all(0 <= index < volume for index in sequence)


class TestStorageProperties:
    @given(
        iv=st.binary(min_size=16, max_size=16),
        payload=st.binary(min_size=0, max_size=300),
        key=st.binary(min_size=1, max_size=32),
    )
    @_SLOW
    def test_stored_block_seal_open_roundtrip(self, iv, payload, key):
        cipher = FastFieldCipher(key)
        block = StoredBlock.seal(cipher, iv, payload)
        assert block.open(cipher) == payload
        assert StoredBlock.from_raw(block.raw) == block

    @given(
        size=st.integers(min_value=1, max_value=300),
        operations=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=299)), max_size=100
        ),
    )
    @_SLOW
    def test_bitmap_count_invariant(self, size, operations):
        bitmap = Bitmap(size)
        reference: set[int] = set()
        for set_it, index in operations:
            if index >= size:
                continue
            if set_it:
                bitmap.set(index)
                reference.add(index)
            else:
                bitmap.clear(index)
                reference.discard(index)
        assert bitmap.set_count == len(reference)
        assert set(bitmap.iter_set()) == reference


class TestHeaderProperties:
    @given(
        pointers=st.lists(st.integers(min_value=0, max_value=2**40), min_size=0, max_size=300),
        file_size=st.integers(min_value=0, max_value=2**40),
        is_dummy=st.booleans(),
    )
    @_SLOW
    def test_header_serialise_parse_roundtrip(self, pointers, file_size, is_dummy):
        data_field = 496
        header = FileHeader(
            path="/property/file",
            file_size=file_size,
            block_pointers=list(pointers),
            header_blocks=[],
            is_dummy=is_dummy,
        )
        needed = header.headers_needed(data_field)
        header.header_blocks = list(range(1_000_000, 1_000_000 + needed))
        payloads = header.serialise(data_field)
        chunks = [FileHeader.parse_chunk(p) for p in payloads]
        rebuilt = FileHeader.from_chunks("/property/file", chunks, header.header_blocks)
        assert rebuilt.block_pointers == list(pointers)
        assert rebuilt.file_size == file_size
        assert rebuilt.is_dummy == is_dummy

    @given(per_block_payload=st.integers(min_value=120, max_value=4096))
    @_SLOW
    def test_pointers_per_header_positive(self, per_block_payload):
        assert pointers_per_header(per_block_payload) >= 1


class TestUpdateAlgorithmProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SLOW
    def test_figure6_update_preserves_file_content(self, seed):
        """After any sequence of updates, the file reads back exactly what was written."""
        from repro.core.nonvolatile import NonVolatileAgent
        from repro.crypto.keys import FileAccessKey
        from repro.stegfs.filesystem import StegFsVolume
        from repro.storage.device import RawDevice
        from conftest import make_storage

        storage = make_storage(num_blocks=128)
        prng = Sha256Prng(seed)
        volume = StegFsVolume(RawDevice(storage), prng.spawn("volume"))
        agent = NonVolatileAgent(volume, prng.spawn("agent"))
        fak = FileAccessKey.generate(prng.spawn("fak"))
        payload_bytes = volume.data_field_bytes
        blocks = 5
        expected = [bytes([i]) * payload_bytes for i in range(blocks)]
        handle = agent.create_file(fak, "/prop", b"".join(expected))

        workload_prng = prng.spawn("workload")
        for _ in range(10):
            logical = workload_prng.randrange(blocks)
            fill = workload_prng.randrange(256)
            expected[logical] = bytes([fill]) * payload_bytes
            agent.update_block(handle, logical, expected[logical])

        assert agent.read_file(handle) == b"".join(expected)
        # Invariant: the allocation table size equals the number of live blocks.
        assert volume.allocator.used_blocks == len(handle.header.all_blocks())

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SLOW
    def test_update_never_corrupts_other_files(self, seed):
        from repro.core.nonvolatile import NonVolatileAgent
        from repro.crypto.keys import FileAccessKey
        from repro.stegfs.filesystem import StegFsVolume
        from repro.storage.device import RawDevice
        from conftest import make_storage

        storage = make_storage(num_blocks=256)
        prng = Sha256Prng(seed)
        volume = StegFsVolume(RawDevice(storage), prng.spawn("volume"))
        agent = NonVolatileAgent(volume, prng.spawn("agent"))
        payload = volume.data_field_bytes
        bystander_content = b"B" * payload * 4
        bystander = agent.create_file(
            FileAccessKey.generate(prng.spawn("f1")), "/bystander", bystander_content
        )
        target = agent.create_file(
            FileAccessKey.generate(prng.spawn("f2")), "/target", b"T" * payload * 4
        )
        workload_prng = prng.spawn("updates")
        for _ in range(15):
            agent.update_block(target, workload_prng.randrange(4), b"N" * payload)
        assert agent.read_file(bystander) == bystander_content


class TestObliviousStoreProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        count=st.integers(min_value=1, max_value=60),
    )
    @_SLOW
    def test_cache_never_loses_or_corrupts_blocks(self, seed, count):
        from repro.core.oblivious.store import ObliviousStore, ObliviousStoreConfig
        from repro.storage.device import split_volume
        from conftest import make_storage

        storage = make_storage(num_blocks=512)
        _, obli_part = split_volume(storage, 128)
        prng = Sha256Prng(seed)
        store = ObliviousStore(
            obli_part,
            ObliviousStoreConfig(buffer_blocks=4, last_level_blocks=64, charge_sort_io=False),
            prng.spawn("store"),
        )
        expected = {}
        for logical in range(count):
            payload = bytes([logical % 256]) * store.payload_bytes
            expected[logical] = payload
            store.insert(logical, payload)
        for logical, payload in expected.items():
            if store.contains(logical):
                assert store.read(logical) == payload
        # Nothing should have been evicted below the last level's capacity.
        if count <= 64:
            assert all(store.contains(logical) for logical in expected)
