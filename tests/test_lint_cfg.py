"""CFG builder oracles: hand-computed edges and post-dominators.

The typestate and obliviousness rules are only as sound as the graph
underneath them, so this suite pins the builder's output on the exact
control-flow shapes those rules reason about: branches, loops with
``break``/``continue``, ``try``/``except``/``finally`` (including abrupt
exits routed through the ``finally``), ``with`` bodies, and ``match``.

Each oracle test describes the expected graph with the nodes'
:meth:`~repro.lint.cfg.CfgNode.describe` labels (``L4`` is the statement
on source line 4 of the snippet, ``handler@L7`` the handler entry at
line 7), so a failure prints a readable diff of the edge set.  On top of
the fixed oracles, a hypothesis sweep over generated function shapes
checks the structural invariants every client assumes: all reachable
nodes can reach an exit, and normal edges never originate at the exits.
"""

from __future__ import annotations

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.cfg import (
    EDGE_BACK,
    EDGE_EXC,
    EDGE_FALSE,
    EDGE_NEXT,
    EDGE_TRUE,
    EDGE_UNWIND,
    EXCEPTIONAL_KINDS,
    build_cfg,
)


def _cfg(source: str):
    tree = ast.parse(textwrap.dedent(source).strip())
    fn = tree.body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(fn)


def _edges(cfg) -> set[tuple[str, str, str]]:
    labelled = set()
    for node in cfg.nodes:
        for edge in cfg.succs(node.index):
            labelled.add(
                (cfg.nodes[edge.src].describe(), edge.kind, cfg.nodes[edge.dst].describe())
            )
    return labelled


def _node(cfg, label: str) -> int:
    matches = [n.index for n in cfg.nodes if n.describe() == label]
    assert len(matches) == 1, f"{label!r} matched {len(matches)} nodes"
    return matches[0]


class TestOracles:
    def test_if_else_joins_at_ipostdom(self):
        cfg = _cfg(
            """
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        assert _edges(cfg) == {
            ("entry", EDGE_NEXT, "L2"),
            ("L2", EDGE_TRUE, "L3"),
            ("L2", EDGE_FALSE, "L5"),
            ("L3", EDGE_NEXT, "L6"),
            ("L5", EDGE_NEXT, "L6"),
            ("L6", EDGE_NEXT, "exit"),
        }
        assert cfg.ipostdom(_node(cfg, "L2")) == _node(cfg, "L6")

    def test_while_with_break_and_continue(self):
        cfg = _cfg(
            """
            def f(n):
                while n:
                    if n == 1:
                        break
                    n -= 1
                    continue
                return n
            """
        )
        edges = _edges(cfg)
        # break jumps to the loop's join node; continue takes a back edge.
        assert ("L4", EDGE_NEXT, "join") in edges
        assert ("L6", EDGE_BACK, "L2") in edges
        assert ("join", EDGE_NEXT, "L7") in edges
        assert ("L2", EDGE_FALSE, "L7") in edges
        # The loop head's region ends at the statement after the loop.
        assert cfg.ipostdom(_node(cfg, "L2")) == _node(cfg, "L7")

    def test_try_finally_routes_return_through_finally(self):
        cfg = _cfg(
            """
            def f(x):
                try:
                    return x.use()
                finally:
                    x.close()
            """
        )
        edges = _edges(cfg)
        # The return enters the finally, and the finally's body fans out
        # to the function exit (for the return) — never straight there.
        assert ("L3", EDGE_NEXT, "finally@L2") in edges
        assert ("L5", EDGE_NEXT, "exit") in edges
        assert ("L3", EDGE_NEXT, "exit") not in edges
        # An exception in the body also runs the finally, then unwinds.
        assert ("L3", EDGE_EXC, "finally@L2") in edges
        assert ("L5", EDGE_UNWIND, "exc-exit") in edges

    def test_except_handler_and_no_match_unwind(self):
        cfg = _cfg(
            """
            def f(x):
                try:
                    x.use()
                except ValueError:
                    x.reset()
                return x
            """
        )
        edges = _edges(cfg)
        assert ("L3", EDGE_EXC, "handler@L4") in edges
        assert ("handler@L4", EDGE_NEXT, "L5") in edges
        # ValueError may not match: the exception keeps unwinding.
        assert ("handler@L4", EDGE_UNWIND, "exc-exit") in edges
        assert ("L5", EDGE_NEXT, "L6") in edges

    def test_catch_all_handler_has_no_unwind(self):
        cfg = _cfg(
            """
            def f(x):
                try:
                    x.use()
                except BaseException:
                    x.release()
                    raise
                return x
            """
        )
        edges = _edges(cfg)
        # A catch-all cannot be bypassed; only its body re-raises.
        assert ("handler@L4", EDGE_UNWIND, "exc-exit") not in edges
        assert ("L6", EDGE_EXC, "exc-exit") in edges

    def test_with_exit_closes_both_paths(self):
        cfg = _cfg(
            """
            def f(path):
                with open(path) as fh:
                    fh.read()
                return 1
            """
        )
        edges = _edges(cfg)
        # The body's exception runs __exit__ (the with-exit node), which
        # may re-raise; normal completion continues to the return.
        assert ("L3", EDGE_EXC, "with-exit@L2") in edges
        assert ("L3", EDGE_NEXT, "with-exit@L2") in edges
        assert ("with-exit@L2", EDGE_UNWIND, "exc-exit") in edges
        assert ("with-exit@L2", EDGE_NEXT, "L4") in edges

    def test_match_arms_and_conservative_fallthrough(self):
        cfg = _cfg(
            """
            def f(cmd):
                match cmd:
                    case "a":
                        x = 1
                    case _:
                        x = 2
                return x
            """
        )
        edges = _edges(cfg)
        assert ("L2", EDGE_TRUE, "L4") in edges
        assert ("L2", EDGE_TRUE, "L6") in edges
        assert ("L2", EDGE_FALSE, "L7") in edges  # conservative no-match
        assert cfg.ipostdom(_node(cfg, "L2")) == _node(cfg, "L7")

    def test_postdominators_ignore_exceptional_edges(self):
        cfg = _cfg(
            """
            def f(a, x):
                if a:
                    x.use()
                x.done()
            """
        )
        branch = _node(cfg, "L2")
        join = _node(cfg, "L4")
        assert cfg.ipostdom(branch) == join
        # The exc edge from L3 must not drag exc-exit into the region.
        region = cfg.region_between(branch, join)
        assert cfg.exc_exit not in region
        assert _node(cfg, "L3") in region


# -- generated shapes: structural invariants ------------------------------------------

_SIMPLE = st.sampled_from(["x = f()", "x += 1", "f(x)", "pass"])
_ABRUPT = st.sampled_from(["return x", "break", "continue", "raise ValueError(x)"])


@st.composite
def _function_sources(draw) -> str:
    """A small function built from nested compounds around simple stmts."""

    def block(depth: int, in_loop: bool) -> list[str]:
        lines = [draw(_SIMPLE)]
        if depth < 3:
            shape = draw(st.sampled_from(["if", "while", "for", "try", "with", "flat"]))
            if shape == "if":
                inner = block(depth + 1, in_loop)
                lines += [f"if x == {draw(st.integers(0, 3))}:"]
                lines += ["    " + line for line in inner]
                if draw(st.booleans()):
                    lines += ["else:"]
                    lines += ["    " + line for line in block(depth + 1, in_loop)]
            elif shape in ("while", "for"):
                header = "while x:" if shape == "while" else "for i in f(x):"
                lines += [header]
                body = block(depth + 1, True)
                if draw(st.booleans()):
                    body.append(draw(st.sampled_from(["break", "continue"])))
                lines += ["    " + line for line in body]
            elif shape == "try":
                lines += ["try:"]
                lines += ["    " + line for line in block(depth + 1, in_loop)]
                if draw(st.booleans()):
                    lines += ["except ValueError:"]
                    lines += ["    " + line for line in block(depth + 1, in_loop)]
                lines += ["finally:"]
                lines += ["    " + line for line in block(depth + 1, in_loop)]
            elif shape == "with":
                lines += ["with f(x) as g:"]
                lines += ["    " + line for line in block(depth + 1, in_loop)]
        maybe_abrupt = draw(st.one_of(st.none(), _ABRUPT))
        if maybe_abrupt is not None and (in_loop or maybe_abrupt not in ("break", "continue")):
            lines.append(maybe_abrupt)
        lines.append(draw(_SIMPLE))
        return lines

    body = block(0, False)
    return "def fn(x):\n" + "\n".join("    " + line for line in body)


@given(_function_sources())
@settings(max_examples=60, deadline=None)
def test_every_reachable_node_reaches_an_exit(source: str):
    cfg = _cfg(source)
    exits = {cfg.exit, cfg.exc_exit}
    # Reverse reachability from both exits over all edges.
    can_exit = set(exits)
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node.index in can_exit:
                continue
            if any(e.dst in can_exit for e in cfg.succs(node.index)):
                can_exit.add(node.index)
                changed = True
    reachable = cfg.reachable()
    stuck = [cfg.nodes[i].describe() for i in reachable - can_exit - exits]
    assert not stuck, f"nodes with no path to an exit: {stuck}\n{source}"


@given(_function_sources())
@settings(max_examples=60, deadline=None)
def test_exits_have_no_successors_and_edges_are_consistent(source: str):
    cfg = _cfg(source)
    assert not cfg.succs(cfg.exit)
    assert not cfg.succs(cfg.exc_exit)
    for node in cfg.nodes:
        for edge in cfg.succs(node.index):
            assert edge.src == node.index
            assert edge in cfg.preds(edge.dst)
            if edge.kind not in EXCEPTIONAL_KINDS:
                assert edge.dst != cfg.exc_exit or cfg.nodes[edge.src].kind == "stmt"


@given(_function_sources())
@settings(max_examples=40, deadline=None)
def test_ipostdom_is_a_postdominator_of_every_branch(source: str):
    cfg = _cfg(source)
    postdoms = cfg.postdominators()
    for node in cfg.nodes:
        ipd = cfg.ipostdom(node.index)
        if ipd is None:
            continue
        assert ipd in postdoms.get(node.index, frozenset()) - {node.index}
