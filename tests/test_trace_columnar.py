"""Property tests: the columnar ``IoTrace`` vs a reference list implementation.

The columnar trace promises to be *query-for-query identical* to the
straightforward list-of-:class:`IoEvent` log it replaced: same events in
the same order, same query results element for element, including the
``between()`` boundary cases.  These tests hold it to that promise on
random traces (both time-ordered, as the device produces, and shuffled,
as hand-built traces may be).
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.trace import OP_READ, OP_WRITE, IoEvent, IoTrace


class ReferenceTrace:
    """The pre-columnar list-of-events implementation, kept as the oracle."""

    def __init__(self, events=None):
        self.events = list(events) if events is not None else []

    def record(self, op, index, time_ms, stream="default"):
        self.events.append(IoEvent(op=op, index=index, time_ms=time_ms, stream=stream))

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def reads(self):
        return [e for e in self.events if e.op == "read"]

    def writes(self):
        return [e for e in self.events if e.op == "write"]

    def indices(self, op=None):
        return [e.index for e in self.events if op is None or e.op == op]

    def index_histogram(self, op=None):
        return Counter(self.indices(op))

    def touched_blocks(self, op=None):
        return set(self.indices(op))

    def slice_by_stream(self, stream):
        return ReferenceTrace([e for e in self.events if e.stream == stream])

    def between(self, start_ms, end_ms):
        return ReferenceTrace([e for e in self.events if start_ms <= e.time_ms < end_ms])


events_strategy = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(0, 40),
        st.floats(0.0, 1000.0, allow_nan=False),
        st.sampled_from(["default", "alice", "bob", "shuffle-sort"]),
    ),
    max_size=120,
)


def _build(raw_events, time_ordered: bool):
    if time_ordered:
        raw_events = sorted(raw_events, key=lambda e: e[2])
    reference = ReferenceTrace()
    columnar = IoTrace()
    for op, index, time_ms, stream in raw_events:
        reference.record(op, index, time_ms, stream)
        columnar.record(op, index, time_ms, stream)
    return reference, columnar


def _assert_equivalent(reference: ReferenceTrace, columnar: IoTrace) -> None:
    assert len(columnar) == len(reference)
    assert list(columnar) == reference.events
    assert columnar.events == reference.events
    assert columnar.reads() == reference.reads()
    assert columnar.writes() == reference.writes()
    for op in (None, "read", "write"):
        assert columnar.indices(op) == reference.indices(op)
        assert columnar.index_histogram(op) == reference.index_histogram(op)
        assert columnar.touched_blocks(op) == reference.touched_blocks(op)


class TestColumnarEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(raw=events_strategy, time_ordered=st.booleans())
    def test_all_queries_match_reference(self, raw, time_ordered):
        reference, columnar = _build(raw, time_ordered)
        _assert_equivalent(reference, columnar)

    @settings(max_examples=60, deadline=None)
    @given(raw=events_strategy, time_ordered=st.booleans())
    def test_slice_by_stream_matches(self, raw, time_ordered):
        reference, columnar = _build(raw, time_ordered)
        for stream in ["default", "alice", "bob", "shuffle-sort", "never-seen"]:
            assert list(columnar.slice_by_stream(stream)) == (
                reference.slice_by_stream(stream).events
            )

    @settings(max_examples=80, deadline=None)
    @given(
        raw=events_strategy,
        time_ordered=st.booleans(),
        start=st.floats(-100.0, 1100.0, allow_nan=False),
        width=st.floats(0.0, 600.0, allow_nan=False),
    )
    def test_between_matches_reference(self, raw, time_ordered, start, width):
        reference, columnar = _build(raw, time_ordered)
        end = start + width
        assert list(columnar.between(start, end)) == reference.between(start, end).events

    @settings(max_examples=40, deadline=None)
    @given(raw=events_strategy, time_ordered=st.booleans())
    def test_between_boundary_cases(self, raw, time_ordered):
        reference, columnar = _build(raw, time_ordered)
        times = [e.time_ms for e in reference.events]
        probes = [0.0] + times[:5]
        for t in probes:
            # Empty window: start == end never matches (half-open interval).
            assert list(columnar.between(t, t)) == []
            # Inverted window is empty too.
            assert list(columnar.between(t + 1.0, t)) == []
        # Fully out-of-range windows on either side.
        assert list(columnar.between(-1e9, -1e8)) == []
        assert list(columnar.between(1e8, 1e9)) == []
        # The full window returns everything, in order.
        assert list(columnar.between(-1e9, 1e9)) == reference.events

    @settings(max_examples=40, deadline=None)
    @given(raw=events_strategy)
    def test_record_many_matches_record_loop(self, raw):
        loop = IoTrace()
        batched = IoTrace()
        for op, index, time_ms, _ in raw:
            loop.record(op, index, time_ms, "s")
        ops = [op for op, _, _, _ in raw]
        batched.record_many(
            ops, [i for _, i, _, _ in raw], [t for _, _, t, _ in raw], "s"
        )
        assert batched == loop
        assert list(batched) == list(loop)

    @settings(max_examples=40, deadline=None)
    @given(raw=events_strategy, chunk=st.integers(1, 16))
    def test_chunked_record_many_matches(self, raw, chunk):
        """Batched appends arriving in chunks (as the device paths issue
        them) accumulate the same trace as one per-event loop."""
        loop, batched = IoTrace(), IoTrace()
        for op, index, time_ms, stream in raw:
            loop.record(op, index, time_ms, stream)
        for lo in range(0, len(raw), chunk):
            part = raw[lo : lo + chunk]
            streams = {s for _, _, _, s in part}
            if len(streams) == 1:
                batched.record_many(
                    [op for op, _, _, _ in part],
                    [i for _, i, _, _ in part],
                    [t for _, _, t, _ in part],
                    streams.pop(),
                )
            else:
                for op, index, time_ms, stream in part:
                    batched.record(op, index, time_ms, stream)
        assert batched == loop


class TestColumnarApi:
    def test_constructor_from_events_and_extend(self):
        events = [IoEvent("read", 1, 0.5, "a"), IoEvent("write", 2, 1.5, "b")]
        trace = IoTrace(events)
        assert list(trace) == events
        other = IoTrace()
        other.record("read", 9, 9.0, "c")
        trace.extend(other)
        assert trace.indices() == [1, 2, 9]
        assert [e.stream for e in trace] == ["a", "b", "c"]
        trace.extend([IoEvent("write", 7, 10.0)])
        assert trace.indices() == [1, 2, 9, 7]
        trace.clear()
        assert len(trace) == 0
        assert trace.indices() == []

    def test_events_view_indexing(self):
        trace = IoTrace()
        for i in range(10):
            trace.record("read", i, float(i))
        assert trace.events[0].index == 0
        assert trace.events[-1].index == 9
        assert [e.index for e in trace.events[3:6]] == [3, 4, 5]
        with pytest.raises(IndexError):
            trace.events[10]

    def test_record_many_code_array_and_validation(self):
        trace = IoTrace()
        codes = np.array([OP_READ, OP_WRITE, OP_READ], dtype=np.uint8)
        trace.record_many(codes, [5, 5, 6], [1.0, 2.0, 3.0], "s")
        assert [e.op for e in trace] == ["read", "write", "read"]
        with pytest.raises(ValueError):
            trace.record_many("read", [1, 2], [0.0])
        with pytest.raises(ValueError):
            trace.record_many(["read"], [1, 2], [0.0, 1.0])
        with pytest.raises(ValueError):
            # Invalid op codes must fail at append time, not on later reads.
            trace.record_many(np.array([0, 2], dtype=np.uint8), [1, 2], [0.0, 1.0])
        with pytest.raises(ValueError):
            # Float codes would silently truncate on uint8 assignment.
            trace.record_many(np.array([0.5, 0.7]), [1, 2], [0.0, 1.0])
        assert len(trace) == 3

    def test_index_histogram_handles_sparse_and_negative_indices(self):
        trace = IoTrace()
        trace.record("read", 10**12, 0.0)
        trace.record("read", 10**12, 1.0)
        trace.record("write", -5, 2.0)
        # Must not allocate a 10**12-slot bincount array.
        histogram = trace.index_histogram()
        assert histogram == Counter({10**12: 2, -5: 1})
        assert trace.index_histogram("read") == Counter({10**12: 2})

    def test_clear_freezes_previously_returned_columns(self):
        trace = IoTrace()
        trace.record("read", 7, 1.0)
        trace.record("read", 8, 2.0)
        held = trace.index_column()
        trace.clear()
        trace.record("write", 99, 0.5)
        assert held.tolist() == [7, 8]  # the old view must not mutate
        assert trace.index_column().tolist() == [99]

    def test_columns_are_readonly_views(self):
        trace = IoTrace()
        trace.record("read", 3, 1.0, "a")
        trace.record("write", 4, 2.0, "b")
        assert trace.index_column().tolist() == [3, 4]
        assert trace.index_column("write").tolist() == [4]
        assert trace.time_column().tolist() == [1.0, 2.0]
        assert trace.op_column().tolist() == [OP_READ, OP_WRITE]
        assert [trace.stream_names[c] for c in trace.stream_codes()] == ["a", "b"]
        with pytest.raises(ValueError):
            trace.index_column()[0] = 99

    def test_growth_beyond_initial_capacity(self):
        trace = IoTrace()
        for i in range(5000):
            trace.record("read", i % 17, float(i))
        assert len(trace) == 5000
        assert trace.indices()[:3] == [0, 1, 2]
        assert trace.index_histogram()[0] == len([i for i in range(5000) if i % 17 == 0])

    def test_instance_level_latency_override_honoured_by_batched_paths(self):
        """Monkeypatching cost_ms on a latency *instance* must affect the
        batched paths exactly like the single-block path."""
        from conftest import make_storage

        single = make_storage(num_blocks=16, timed=True)
        batched = make_storage(num_blocks=16, timed=True)
        for storage in (single, batched):
            storage.latency.cost_ms = lambda previous, index: 100.0
        for i in [3, 4, 9]:
            single.read_block(i)
        batched.read_blocks([3, 4, 9])
        assert single.clock_ms == batched.clock_ms == 300.0
        assert single.trace == batched.trace

    def test_since_returns_window(self):
        trace = IoTrace()
        for i in range(6):
            trace.record("read", i, float(i))
        window = trace.since(4)
        assert [e.index for e in window] == [4, 5]
        assert list(trace.since(0)) == list(trace)
        assert list(trace.since(99)) == []
