"""Unit tests for workloads, the round-robin simulator, builders and analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis.models import (
    expected_iterations,
    expected_update_overhead,
    steghide_expected_update_ios,
    update_overhead_curve,
)
from repro.analysis.series import SeriesTable, SweepResult
from repro.analysis.tables import format_markdown_table, format_table
from repro.baselines.cleandisk import CleanDiskFileSystem
from repro.crypto.prng import Sha256Prng
from repro.sim.builders import SYSTEM_LABELS, build_system
from repro.sim.engine import ClientJob, RoundRobinSimulator
from repro.storage.latency import ZeroLatencyModel
from repro.workloads.filegen import FileSpec, generate_content, generate_file_specs
from repro.workloads.retrieval import file_read_job, measure_file_read
from repro.workloads.tableupdate import SalaryTable, TableUpdateWorkload
from repro.workloads.update import (
    measure_block_update,
    measure_range_update,
    random_update_requests,
)

from conftest import make_storage


class TestFileGeneration:
    def test_content_deterministic(self):
        assert generate_content(1000, seed=3) == generate_content(1000, seed=3)
        assert generate_content(1000, seed=3) != generate_content(1000, seed=4)

    def test_content_length(self):
        assert len(generate_content(12345)) == 12345
        assert generate_content(0) == b""

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            generate_content(-1)

    def test_specs_in_paper_range(self):
        specs = generate_file_specs(20, Sha256Prng(1))
        assert len(specs) == 20
        assert all(4 * 1024 * 1024 <= s.size_bytes <= 8 * 1024 * 1024 for s in specs)
        assert len({s.name for s in specs}) == 20

    def test_specs_validation(self):
        with pytest.raises(ValueError):
            generate_file_specs(-1, Sha256Prng(1))
        with pytest.raises(ValueError):
            generate_file_specs(1, Sha256Prng(1), min_size_bytes=10, max_size_bytes=5)


class TestWorkloadMeasurements:
    def test_measure_file_read_returns_positive_time(self):
        storage = make_storage(timed=True)
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", b"x" * fs.payload_bytes * 20)
        assert measure_file_read(fs, handle) > 0.0

    def test_measure_block_update(self):
        storage = make_storage(timed=True)
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", b"x" * fs.payload_bytes * 20)
        elapsed = measure_block_update(fs, handle, 5)
        assert elapsed > 0.0
        assert fs.read_block(handle, 5) != b"x" * fs.payload_bytes

    def test_measure_range_update_scales_with_range(self):
        storage = make_storage(timed=True)
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", b"x" * fs.payload_bytes * 40)
        one = measure_range_update(fs, handle, 0, 1)
        five = measure_range_update(fs, handle, 10, 5)
        assert five >= one

    def test_random_update_requests_in_bounds(self):
        storage = make_storage()
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", b"x" * fs.payload_bytes * 10)
        starts = random_update_requests(handle, 50, Sha256Prng(2), range_blocks=3)
        assert all(0 <= s <= 7 for s in starts)

    def test_random_update_requests_too_small_file(self):
        storage = make_storage()
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", b"x" * fs.payload_bytes * 2)
        with pytest.raises(ValueError):
            random_update_requests(handle, 1, Sha256Prng(2), range_blocks=3)


class TestSalaryTable:
    def test_serialise_roundtrip(self):
        table = SalaryTable(rows=[("Alice", 200_000), ("Bob", 810_000)])
        assert SalaryTable.deserialise(table.serialise()).rows == table.rows

    def test_generate(self):
        table = SalaryTable.generate(100, Sha256Prng(5))
        assert len(table.rows) == 100
        assert all(salary >= 30_000 for _, salary in table.rows)

    def test_set_salary_and_offset(self):
        table = SalaryTable(rows=[("Alice", 1), ("Bob", 2)])
        table.set_salary("Bob", 910_000)
        assert table.rows[1] == ("Bob", 910_000)
        assert table.row_offset("Bob") == 64
        with pytest.raises(KeyError):
            table.row_offset("Carol")

    def test_workload_updates_through_adapter(self):
        storage = make_storage()
        fs = CleanDiskFileSystem(storage)
        table = SalaryTable.generate(200, Sha256Prng(6))
        workload = TableUpdateWorkload(fs, table)
        workload.update_salary("employee-00007", 999_999)
        read_back = workload.read_back()
        assert ("employee-00007", 999_999) in read_back.rows

    def test_run_random_updates(self):
        storage = make_storage()
        fs = CleanDiskFileSystem(storage)
        workload = TableUpdateWorkload(fs, SalaryTable.generate(50, Sha256Prng(7)))
        touched = workload.run_random_updates(10, Sha256Prng(8))
        # Each of the 10 row updates touches one block, or two when it straddles.
        assert 10 <= len(touched) <= 20


class TestRoundRobinSimulator:
    def test_single_job_runs_to_completion(self):
        storage = make_storage(timed=True)
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", b"x" * fs.payload_bytes * 10)
        job = ClientJob("u1", file_read_job(fs, handle, "u1"))
        result = RoundRobinSimulator(storage).run([job])
        assert job.operations == 10
        assert result.total_elapsed_ms > 0
        assert result.mean_elapsed_ms == pytest.approx(job.elapsed_ms)

    def test_concurrent_jobs_interleave_and_slow_down(self):
        """Two concurrent sequential readers cost far more than twice one reader."""
        single = make_storage(num_blocks=2048, timed=True)
        fs_single = CleanDiskFileSystem(single)
        handle = fs_single.create_file("/a", b"x" * fs_single.payload_bytes * 100)
        single_time = measure_file_read(fs_single, handle)

        shared = make_storage(num_blocks=2048, timed=True)
        fs_shared = CleanDiskFileSystem(shared)
        handles = [
            fs_shared.create_file(f"/f{i}", b"x" * fs_shared.payload_bytes * 100) for i in range(2)
        ]
        jobs = [
            ClientJob(f"u{i}", file_read_job(fs_shared, h, f"u{i}")) for i, h in enumerate(handles)
        ]
        result = RoundRobinSimulator(shared).run(jobs)
        assert result.mean_elapsed_ms > 4 * single_time

    def test_empty_job_list(self):
        storage = make_storage()
        result = RoundRobinSimulator(storage).run([])
        assert result.jobs == []
        assert result.total_elapsed_ms == 0.0

    def test_zero_operation_job_completes_with_zero_elapsed(self):
        """A job whose generator yields nothing must still start, finish and
        report a zero elapsed time without stalling the round-robin loop."""
        storage = make_storage(timed=True)
        fs = CleanDiskFileSystem(storage)
        handle = fs.create_file("/a", b"x" * fs.payload_bytes * 3)

        def no_steps():
            return iter(())

        empty = ClientJob("idle", no_steps())
        busy = ClientJob("busy", file_read_job(fs, handle, "busy"))
        result = RoundRobinSimulator(storage).run([empty, busy])
        assert empty.operations == 0
        assert empty.finished and busy.finished
        assert empty.elapsed_ms == 0.0
        assert busy.operations == 3
        assert result.total_elapsed_ms == pytest.approx(busy.elapsed_ms)

    def test_all_zero_operation_jobs(self):
        storage = make_storage(timed=True)
        jobs = [ClientJob(f"u{i}", iter(())) for i in range(4)]
        result = RoundRobinSimulator(storage).run(jobs)
        assert all(job.finished and job.elapsed_ms == 0.0 for job in jobs)
        assert result.total_elapsed_ms == 0.0

    def test_per_job_elapsed_mapping(self):
        storage = make_storage(timed=True)
        fs = CleanDiskFileSystem(storage)
        h1 = fs.create_file("/a", b"x" * fs.payload_bytes * 5)
        h2 = fs.create_file("/b", b"x" * fs.payload_bytes * 5)
        jobs = [
            ClientJob("alice", file_read_job(fs, h1, "alice")),
            ClientJob("bob", file_read_job(fs, h2, "bob")),
        ]
        result = RoundRobinSimulator(storage).run(jobs)
        assert set(result.per_job_elapsed_ms) == {"alice", "bob"}
        assert result.max_elapsed_ms >= result.mean_elapsed_ms


class TestBuilders:
    @pytest.mark.parametrize("label", SYSTEM_LABELS)
    def test_build_every_system_and_read_back(self, label):
        specs = [FileSpec("/f0", 64 * 1024)]
        sut = build_system(label, volume_mib=2, file_specs=specs, seed=3,
                           latency=ZeroLatencyModel())
        assert sut.label == label
        content = sut.adapter.read_file(sut.handle("/f0"))
        assert content == generate_content(64 * 1024, 3)

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            build_system("NotASystem")

    def test_target_utilisation_reached_for_steg_systems(self):
        sut = build_system(
            "StegHide*",
            volume_mib=2,
            file_specs=[FileSpec("/f0", 32 * 1024)],
            target_utilisation=0.4,
            seed=1,
            latency=ZeroLatencyModel(),
        )
        assert sut.volume is not None
        assert 0.38 <= sut.volume.utilisation <= 0.45

    def test_too_high_initial_utilisation_rejected(self):
        with pytest.raises(ValueError):
            build_system(
                "StegFS",
                volume_mib=2,
                file_specs=[FileSpec("/f0", 1536 * 1024)],
                target_utilisation=0.10,
                latency=ZeroLatencyModel(),
            )

    def test_steghide_builder_discloses_dummy_space(self):
        sut = build_system(
            "StegHide",
            volume_mib=2,
            file_specs=[FileSpec("/f0", 64 * 1024)],
            target_utilisation=0.25,
            seed=2,
            latency=ZeroLatencyModel(),
        )
        assert sut.keyring is not None
        assert len(sut.keyring.dummy) > 0
        assert sut.agent is not None
        # The agent can run dummy updates because dummy space was disclosed.
        sut.agent.dummy_update()


class TestAnalysisHelpers:
    def test_expected_update_overhead(self):
        assert expected_update_overhead(100, 50) == 2.0
        assert expected_update_overhead(100, 100) == 1.0
        assert expected_update_overhead(100, 0) == float("inf")
        with pytest.raises(ValueError):
            expected_update_overhead(0, 0)
        with pytest.raises(ValueError):
            expected_update_overhead(10, 20)

    def test_expected_iterations(self):
        assert expected_iterations(0.0) == 1.0
        assert expected_iterations(0.5) == 2.0
        with pytest.raises(ValueError):
            expected_iterations(1.0)

    def test_update_overhead_curve(self):
        curve = update_overhead_curve([0.1, 0.25, 0.5])
        assert curve == pytest.approx([1 / 0.9, 1 / 0.75, 2.0])

    def test_expected_ios(self):
        assert steghide_expected_update_ios(0.5) == pytest.approx(4.0)

    def test_sweep_result_rendering_and_ratio(self):
        sweep = SweepResult(name="fig", x_label="x", y_label="ms", x_values=[1, 2])
        sweep.add_point("A", 10.0)
        sweep.add_point("A", 20.0)
        sweep.add_point("B", 5.0)
        sweep.add_point("B", 10.0)
        rendered = sweep.render()
        assert "fig" in rendered and "A" in rendered and "B" in rendered
        assert sweep.ratio("A", "B") == [2.0, 2.0]
        assert sweep.series_for("A") == [10.0, 20.0]

    def test_series_table(self):
        table = SeriesTable(name="Table 4", columns=["buffer", "height"])
        table.add_row("8M", 7)
        table.add_row("16M", 6)
        assert table.column("height") == [7, 6]
        assert "Table 4" in table.render()
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_markdown_table(self):
        text = format_markdown_table(["a", "b"], [["1", "2"]])
        assert text.splitlines()[0] == "| a | b |"
        assert "---" in text.splitlines()[1]
