"""The seized-disk guarantee, now on a real file.

The paper's threat model: an attacker who seizes the physical storage
must see nothing but random-looking bytes — no plaintext, no metadata,
no statistical signature distinguishing a hidden volume from a wiped
disk.  With ``MmapFileBackend`` the volume *is* a file we can hand to
the attacker, so these tests do exactly that: byte-histogram chi-square
tests against the uniform distribution over a freshly created image and
over a heavily-updated one, plus plaintext scans.

Chi-square over 256 byte values has 255 degrees of freedom; for a
uniform source the statistic concentrates around 255 with standard
deviation ~22.6.  The acceptance threshold of 340 sits past the
p = 0.001 quantile (~310.5) — far enough that a deterministic seeded
run never flaps, close enough that any real bias (plaintext, zeroed
regions, structured metadata) fails by orders of magnitude.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import HiddenVolumeService, KeyRing

CHI_SQUARE_THRESHOLD = 340.0  # dof=255, beyond the p=0.001 quantile
SECRET_SENTENCE = b"The hidden payload: codeword BLUEBIRD, meet at the old mill.\n"


def chi_square_vs_uniform(image: bytes) -> float:
    """Pearson chi-square statistic of the byte histogram against uniform."""
    counts = np.bincount(np.frombuffer(image, dtype=np.uint8), minlength=256)
    expected = len(image) / 256
    return float(((counts - expected) ** 2 / expected).sum())


def test_chi_square_rejects_obviously_structured_images():
    """Sanity-check the statistic itself before trusting it below."""
    assert chi_square_vs_uniform(bytes(1 << 20)) > 1e6  # all zeros
    assert chi_square_vs_uniform(SECRET_SENTENCE * 10000) > 1e5  # plaintext


def test_fresh_volume_file_is_indistinguishable_from_random(tmp_path):
    path = tmp_path / "fresh.img"
    service = HiddenVolumeService.create("volatile", volume_mib=1, seed=99, path=path)
    service.close()
    image = path.read_bytes()
    assert len(image) == 1 << 20
    assert chi_square_vs_uniform(image) < CHI_SQUARE_THRESHOLD


@pytest.mark.parametrize("construction", ["volatile", "nonvolatile"])
def test_heavily_updated_volume_file_stays_random(tmp_path, construction):
    path = tmp_path / "worked.img"
    service = HiddenVolumeService.create(construction, volume_mib=1, seed=5, path=path)
    alice = service.login(service.new_keyring("alice"))
    alice.create("/alice/secret.txt", SECRET_SENTENCE * 100)
    alice.create_decoy("/alice/decoy.bin", size_bytes=16384)
    bob = service.login(service.new_keyring("bob"))
    bob.create("/bob/notes.txt", b"bob's equally secret notes\n" * 200)

    # Churn the volume: byte-granular overwrites through the Figure-6
    # path, appends, dummy-update bursts, a delete and a re-create.
    for round_number in range(8):
        alice.write("/alice/secret.txt", f"round {round_number:04d}".encode(), at=64)
        bob.append("/bob/notes.txt", b"appended line\n")
        service.idle(num_dummy_updates=10)
    bob.delete("/bob/notes.txt")
    bob.create("/bob/second.txt", b"replacement content " * 50)
    ring = alice.keyring.to_json()
    service.close()

    image = path.read_bytes()
    assert chi_square_vs_uniform(image) < CHI_SQUARE_THRESHOLD

    # No plaintext leaks into the image: not the contents, not the paths,
    # not the owners' names.
    for needle in (SECRET_SENTENCE, b"/alice/secret.txt", b"alice", b"bob", b"BLUEBIRD"):
        assert needle not in image

    # And the statistical cleanliness is not because the data is gone:
    # the keyring still recovers the secret bit-exactly.
    reopened = HiddenVolumeService.open(path, construction, seed=5, session_nonce="audit")
    recovered = reopened.login(KeyRing.from_json(ring))
    content = recovered.read("/alice/secret.txt")
    assert content.startswith(SECRET_SENTENCE[:64])
    assert SECRET_SENTENCE in content
    reopened.close()


def test_fresh_and_updated_images_diverge_but_both_look_random(tmp_path):
    """Updates change the image (the work really hit the file) without
    ever introducing a statistical tell."""
    path = tmp_path / "vol.img"
    service = HiddenVolumeService.create("volatile", volume_mib=1, seed=31, path=path)
    service.flush()
    fresh = path.read_bytes()
    session = service.login(service.new_keyring("u"))
    session.create("/f", b"\x00" * 30000)  # pathological all-zero plaintext
    service.close()
    updated = path.read_bytes()
    assert fresh != updated
    assert chi_square_vs_uniform(fresh) < CHI_SQUARE_THRESHOLD
    # Even an all-zeros plaintext is invisible after encryption.
    assert chi_square_vs_uniform(updated) < CHI_SQUARE_THRESHOLD


def test_journal_sidecar_is_indistinguishable_from_random(tmp_path):
    """The durable intent log is part of the seized disk: sealed records,
    constant size, no plaintext labels or step structure."""
    path = tmp_path / "vol.img"
    service = HiddenVolumeService.create("nonvolatile", volume_mib=1, seed=17, path=path)
    session = service.login(service.new_keyring("alice"))
    session.create("/alice/secret.txt", SECRET_SENTENCE * 40)
    for round_number in range(6):
        session.write("/alice/secret.txt", SECRET_SENTENCE, at=round_number * 13)
        service.idle(num_dummy_updates=3)
    service.flush()
    service.close()

    sidecar = path.with_name(path.name + ".journal")
    image = sidecar.read_bytes()
    assert len(image) == 256 * 4096  # fixed-size ring: size leaks nothing
    assert chi_square_vs_uniform(image) < CHI_SQUARE_THRESHOLD
    # No plaintext leaks: not contents, paths, owners, or plan labels.
    for needle in (
        SECRET_SENTENCE,
        b"/alice/secret.txt",
        b"alice",
        b"BLUEBIRD",
        b"update_range",
        b"dummy_update",
        b"session_write",
    ):
        assert needle not in image


def test_journal_sidecar_stays_random_across_a_crash_and_recovery(tmp_path):
    """Uncommitted entries, the crash, and the recovery checkpoint all
    leave the sidecar and the volume statistically clean."""
    from repro import FaultInjectingBackend, TornWrite
    from repro.errors import InjectedCrashError

    path = tmp_path / "vol.img"
    service = HiddenVolumeService.create("nonvolatile", volume_mib=1, seed=19, path=path)
    session = service.login(service.new_keyring("alice"))
    session.create("/alice/secret.txt", SECRET_SENTENCE * 40)
    ring = session.keyring.to_json()
    service.flush()
    service.close()

    injector = None

    def wrap(backend):
        nonlocal injector
        injector = FaultInjectingBackend(backend)
        return injector

    crashed = HiddenVolumeService.open(
        path, "nonvolatile", seed=19, session_nonce="doomed", wrap_backend=wrap
    )
    doomed = crashed.login(KeyRing.from_json(ring))
    injector.arm(1, TornWrite())  # the op is one batched read + one batched write
    with pytest.raises(InjectedCrashError):
        doomed.write("/alice/secret.txt", SECRET_SENTENCE, at=7)
    crashed.storage.close()
    crashed.journal.close()

    sidecar = path.with_name(path.name + ".journal")
    for stage in ("crashed", "recovered"):
        for image in (path.read_bytes(), sidecar.read_bytes()):
            assert chi_square_vs_uniform(image) < CHI_SQUARE_THRESHOLD
            assert SECRET_SENTENCE not in image
            assert b"alice" not in image
        if stage == "crashed":
            recovered = HiddenVolumeService.open(
                path, "nonvolatile", seed=19, session_nonce="after"
            )
            again = recovered.login(KeyRing.from_json(ring))
            assert again.read("/alice/secret.txt") == SECRET_SENTENCE * 40
            recovered.close()
