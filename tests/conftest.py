"""Shared fixtures for the test suite.

Tests run against deliberately tiny volumes (hundreds of blocks, small
block sizes) so that the full suite stays fast; the benchmarks are the
place where paper-scale parameters are used.
"""

from __future__ import annotations

import pytest

from repro.core.nonvolatile import NonVolatileAgent
from repro.core.volatile import VolatileAgent
from repro.crypto.keys import FileAccessKey
from repro.crypto.prng import Sha256Prng
from repro.stegfs.filesystem import StegFsVolume
from repro.storage.device import RawDevice
from repro.storage.disk import RawStorage, StorageGeometry
from repro.storage.latency import ZeroLatencyModel

TEST_BLOCK_SIZE = 512
TEST_NUM_BLOCKS = 512


@pytest.fixture
def prng() -> Sha256Prng:
    """A deterministic PRNG seeded per-test."""
    return Sha256Prng("test-seed")


@pytest.fixture
def storage() -> RawStorage:
    """A small zero-latency raw storage volume, pre-filled with random bytes."""
    geometry = StorageGeometry(block_size=TEST_BLOCK_SIZE, num_blocks=TEST_NUM_BLOCKS)
    store = RawStorage(geometry, latency=ZeroLatencyModel())
    store.fill_random(seed=42)
    return store


@pytest.fixture
def timed_storage() -> RawStorage:
    """Like ``storage`` but with the default (ATA-like) latency model."""
    geometry = StorageGeometry(block_size=TEST_BLOCK_SIZE, num_blocks=TEST_NUM_BLOCKS)
    store = RawStorage(geometry)
    store.fill_random(seed=42)
    return store


@pytest.fixture
def volume(storage: RawStorage, prng: Sha256Prng) -> StegFsVolume:
    """A StegFS volume over the small test storage."""
    return StegFsVolume(RawDevice(storage), prng.spawn("volume"))


@pytest.fixture
def nonvolatile_agent(volume: StegFsVolume, prng: Sha256Prng) -> NonVolatileAgent:
    """A Construction-1 agent over the test volume."""
    return NonVolatileAgent(volume, prng.spawn("nv-agent"))


@pytest.fixture
def volatile_agent(volume: StegFsVolume, prng: Sha256Prng) -> VolatileAgent:
    """A Construction-2 agent over the test volume."""
    return VolatileAgent(volume, prng.spawn("v-agent"))


@pytest.fixture
def fak(prng: Sha256Prng) -> FileAccessKey:
    """A fresh file access key."""
    return FileAccessKey.generate(prng.spawn("fak"))


def make_storage(num_blocks: int = TEST_NUM_BLOCKS, block_size: int = TEST_BLOCK_SIZE,
                 timed: bool = False, seed: int = 42) -> RawStorage:
    """Helper for tests that need a custom-sized volume."""
    geometry = StorageGeometry(block_size=block_size, num_blocks=num_blocks)
    store = RawStorage(geometry, latency=None if timed else ZeroLatencyModel())
    store.fill_random(seed=seed)
    return store
