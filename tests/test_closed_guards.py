"""Every public entrypoint fails loudly — and typed — after close().

A closed service must never half-work: block access raises
``BackendClosedError`` at the storage layer, service methods raise
``ServiceClosedError`` before touching anything, and the sessions a
``close()`` logged out raise ``SessionClosedError``.  These sweeps walk
the public surface method by method so a newly added entrypoint that
forgets its guard shows up as a missing-exception failure here.
"""

from __future__ import annotations

import pytest

from repro import HiddenVolumeService, JournalBackend, MemoryBackend
from repro.core.plan import IoPlan
from repro.errors import (
    BackendClosedError,
    JournalError,
    ServiceClosedError,
    SessionClosedError,
)


@pytest.fixture(params=["volatile", "nonvolatile"])
def closed_setup(request, tmp_path):
    """A closed file-backed service plus the session it logged out."""
    service = HiddenVolumeService.create(
        request.param, volume_mib=1, seed=5, block_size=512, path=tmp_path / "vol.img"
    )
    session = service.login(service.new_keyring("alice"))
    session.create("/alice/file", b"contents before close")
    service.close()
    return service, session


SERVICE_CALLS = {
    "login": lambda service: service.login(service.new_keyring("bob")),
    "idle": lambda service: service.idle(1),
    "flush": lambda service: service.flush(),
    "concurrent": lambda service: service.concurrent(),
}

SESSION_CALLS = {
    "stat": lambda session: session.stat("/alice/file"),
    "create": lambda session: session.create("/alice/new", b"x"),
    "create_decoy": lambda session: session.create_decoy("/alice/decoy", 512),
    "delete": lambda session: session.delete("/alice/file"),
    "logout": lambda session: session.logout(),
    "read": lambda session: session.read("/alice/file"),
    "write": lambda session: session.write("/alice/file", b"x"),
    "append": lambda session: session.append("/alice/file", b"x"),
    "plan_read": lambda session: session.plan_read("/alice/file"),
    "plan_write": lambda session: session.plan_write("/alice/file", b"x"),
    "plan_append": lambda session: session.plan_append("/alice/file", b"x"),
    "deniable_view": lambda session: session.deniable_view(),
}


@pytest.mark.parametrize("method", sorted(SERVICE_CALLS))
def test_closed_service_method_raises(closed_setup, method):
    service, _ = closed_setup
    with pytest.raises(ServiceClosedError):
        SERVICE_CALLS[method](service)


@pytest.mark.parametrize("method", sorted(SESSION_CALLS))
def test_logged_out_session_method_raises(closed_setup, method):
    _, session = closed_setup
    with pytest.raises(SessionClosedError):
        SESSION_CALLS[method](session)


def test_closed_service_storage_raises_backend_closed(closed_setup):
    service, _ = closed_setup
    with pytest.raises(BackendClosedError):
        service.storage.read_block(0)
    with pytest.raises(BackendClosedError):
        service.storage.write_block(0, bytes(512))


def test_closed_service_keeps_forensic_surface(closed_setup):
    service, _ = closed_setup
    assert service.closed
    assert service.logged_in_users == []
    assert service.storage.counters.reads >= 0  # counters stay readable
    service.close()  # idempotent


def test_closed_journal_refuses_every_operation(tmp_path):
    journal = JournalBackend.create(tmp_path / "j", bytes(32))
    backend = MemoryBackend(64, 8)
    backend.fill_random(1)
    journal.bind(backend)
    journal.close()
    assert journal.closed
    for operation in (
        lambda: journal.record(IoPlan([], label="x")),
        lambda: journal.mark_committed(),
        lambda: journal.checkpoint(),
        lambda: journal.flush(),
        lambda: journal.recover(backend),
    ):
        with pytest.raises(JournalError):
            operation()
