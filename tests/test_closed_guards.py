"""Every public entrypoint fails loudly — and typed — after close().

A closed service must never half-work: block access raises
``BackendClosedError`` at the storage layer, service methods raise
``ServiceClosedError`` before touching anything, and the sessions a
``close()`` logged out raise ``SessionClosedError``.  These sweeps walk
the public surface method by method so a newly added entrypoint that
forgets its guard shows up as a missing-exception failure here.

The sweep tables below are additionally asserted equal to the *static*
inventory computed by the CLS001 lint rule
(:func:`repro.lint.rules.closedguards.static_inventory`), so the two
enforcement layers pin each other: a new public method must both call a
guard (or the linter fails) and be exercised here (or the cross-check
fails).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import HiddenVolumeService, JournalBackend, MemoryBackend, MmapFileBackend
from repro.core.plan import IoPlan
from repro.errors import (
    BackendClosedError,
    JournalError,
    ServiceClosedError,
    SessionClosedError,
)
from repro.lint.rules.closedguards import static_inventory

SERVICE_CALLS = {
    "login": lambda service: service.login(service.new_keyring("bob")),
    "idle": lambda service: service.idle(1),
    "flush": lambda service: service.flush(),
    "concurrent": lambda service: service.concurrent(),
    "dummy_oblivious_read": lambda service: service.dummy_oblivious_read(),
}

SESSION_CALLS = {
    "stat": lambda session: session.stat("/alice/file"),
    "create": lambda session: session.create("/alice/new", b"x"),
    "create_decoy": lambda session: session.create_decoy("/alice/decoy", 512),
    "delete": lambda session: session.delete("/alice/file"),
    "logout": lambda session: session.logout(),
    "read": lambda session: session.read("/alice/file"),
    "write": lambda session: session.write("/alice/file", b"x"),
    "append": lambda session: session.append("/alice/file", b"x"),
    "plan_read": lambda session: session.plan_read("/alice/file"),
    "plan_write": lambda session: session.plan_write("/alice/file", b"x"),
    "plan_append": lambda session: session.plan_append("/alice/file", b"x"),
    "deniable_view": lambda session: session.deniable_view(),
}

STORAGE_CALLS = {
    "read_block": lambda storage: storage.read_block(0),
    "write_block": lambda storage: storage.write_block(0, bytes(512)),
    "read_blocks": lambda storage: storage.read_blocks([0, 1]),
    "write_blocks": lambda storage: storage.write_blocks([0, 1], [bytes(512)] * 2),
    "read_write_blocks": lambda storage: storage.read_write_blocks([0, 1]),
    "peek_block": lambda storage: storage.peek_block(0),
    "raw_bytes": lambda storage: storage.raw_bytes(),
    "fill_random": lambda storage: storage.fill_random(1),
    "flush": lambda storage: storage.flush(),
}

BACKEND_CALLS = {
    "read": lambda backend: backend.read(0),
    "write": lambda backend: backend.write(0, bytes(64)),
    "read_many": lambda backend: backend.read_many(np.array([0, 1], dtype=np.int64)),
    "write_many": lambda backend: backend.write_many(
        np.array([0, 1], dtype=np.int64), [bytes(64)] * 2
    ),
    "fill_random": lambda backend: backend.fill_random(1),
    "raw_bytes": lambda backend: backend.raw_bytes(),
    "flush": lambda backend: backend.flush(),
}

JOURNAL_CALLS = {
    "record": lambda journal: journal.record(IoPlan([], label="x")),
    "mark_committed": lambda journal: journal.mark_committed(),
    "checkpoint": lambda journal: journal.checkpoint(),
    "flush": lambda journal: journal.flush(),
    "recover": lambda journal: journal.recover(MemoryBackend(64, 8)),
}

ENGINE_CALLS = {
    "login": lambda engine, service: engine.login(service.new_keyring("carol")),
    "idle": lambda engine, service: engine.idle(1),
    "flush": lambda engine, service: engine.flush(),
}


@pytest.fixture(params=["volatile", "nonvolatile"])
def closed_setup(request, tmp_path):
    """A closed file-backed service plus the session it logged out."""
    service = HiddenVolumeService.create(
        request.param, volume_mib=1, seed=5, block_size=512, path=tmp_path / "vol.img"
    )
    session = service.login(service.new_keyring("alice"))
    session.create("/alice/file", b"contents before close")
    service.close()
    return service, session


@pytest.mark.parametrize("method", sorted(SERVICE_CALLS))
def test_closed_service_method_raises(closed_setup, method):
    service, _ = closed_setup
    with pytest.raises(ServiceClosedError):
        SERVICE_CALLS[method](service)


@pytest.mark.parametrize("method", sorted(SESSION_CALLS))
def test_logged_out_session_method_raises(closed_setup, method):
    _, session = closed_setup
    with pytest.raises(SessionClosedError):
        SESSION_CALLS[method](session)


@pytest.mark.parametrize("method", sorted(STORAGE_CALLS))
def test_closed_storage_method_raises(closed_setup, method):
    service, _ = closed_setup
    with pytest.raises(BackendClosedError):
        STORAGE_CALLS[method](service.storage)


def test_closed_storage_leaves_no_phantom_accounting(closed_setup):
    """A refused request must not bump counters, clock, or trace."""
    service, _ = closed_setup
    storage = service.storage
    counters = storage.counters.snapshot()
    clock, events = storage.clock_ms, len(storage.trace)
    for method in sorted(STORAGE_CALLS):
        with pytest.raises(BackendClosedError):
            STORAGE_CALLS[method](storage)
    assert storage.counters.total_ops == counters.total_ops
    assert storage.clock_ms == clock
    assert len(storage.trace) == events


@pytest.mark.parametrize("method", sorted(BACKEND_CALLS))
def test_closed_mmap_backend_method_raises(tmp_path, method):
    backend = MmapFileBackend.create(tmp_path / "b.img", 64, 8)
    backend.close()
    assert backend.closed
    with pytest.raises(BackendClosedError):
        BACKEND_CALLS[method](backend)


@pytest.mark.parametrize("method", sorted(JOURNAL_CALLS))
def test_closed_journal_method_raises(tmp_path, method):
    journal = JournalBackend.create(tmp_path / "j", bytes(32))
    backend = MemoryBackend(64, 8)
    backend.fill_random(1)
    journal.bind(backend)
    journal.close()
    assert journal.closed
    with pytest.raises(JournalError):
        JOURNAL_CALLS[method](journal)


@pytest.mark.parametrize("method", sorted(ENGINE_CALLS))
def test_closed_engine_method_raises(method):
    service = HiddenVolumeService.create("volatile", volume_mib=1, seed=9, block_size=512)
    engine = service.concurrent()
    engine.close()
    assert engine.closed
    with pytest.raises(ServiceClosedError):
        ENGINE_CALLS[method](engine, service)
    service.close()


def test_closed_service_keeps_forensic_surface(closed_setup):
    service, _ = closed_setup
    assert service.closed
    assert service.logged_in_users == []
    assert service.storage.counters.reads >= 0  # counters stay readable
    service.close()  # idempotent


def test_dynamic_sweep_matches_static_inventory():
    """The sweep tables equal CLS001's guarded-method inventory.

    If a guarded public method is added, the linter keeps the tree
    honest and this assertion fails until the sweep exercises it; if a
    sweep entry is removed, the mismatch shows up just the same.
    """
    inventory = static_inventory("src")
    dynamic = {
        "HiddenVolumeService": tuple(sorted(SERVICE_CALLS)),
        "Session": tuple(sorted(SESSION_CALLS)),
        "RawStorage": tuple(sorted(STORAGE_CALLS)),
        "MmapFileBackend": tuple(sorted(BACKEND_CALLS)),
        "JournalBackend": tuple(sorted(JOURNAL_CALLS)),
        "ConcurrentVolumeService": tuple(sorted(ENGINE_CALLS)),
    }
    assert dynamic == inventory
