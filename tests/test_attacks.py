"""Unit tests for the attacker implementations."""

from __future__ import annotations

from repro.attacks.observer import SnapshotObserver, TraceObserver
from repro.attacks.traffic_analysis import TrafficAnalysisAttacker
from repro.attacks.update_analysis import UpdateAnalysisAttacker
from repro.crypto.prng import Sha256Prng
from repro.storage.trace import IoTrace


class TestSnapshotObserver:
    def test_observe_and_diff(self, storage):
        observer = SnapshotObserver(storage)
        observer.observe("t0")
        storage.write_block(5, b"\x01" * 512)
        observer.observe("t1")
        storage.write_block(6, b"\x02" * 512)
        storage.write_block(7, b"\x03" * 512)
        observer.observe("t2")
        diffs = observer.diffs()
        assert [d.change_count for d in diffs] == [1, 2]
        assert observer.changed_blocks_per_interval() == [{5}, {6, 7}]


class TestTraceObserver:
    def test_capture_window(self, storage):
        observer = TraceObserver(storage)
        storage.read_block(1)
        observer.start()
        storage.read_block(2)
        storage.write_block(3, b"\x00" * 512)
        captured = observer.capture()
        assert [e.index for e in captured] == [2, 3]


class TestUpdateAnalysisAttacker:
    def test_repeated_in_place_updates_are_detected(self):
        attacker = UpdateAnalysisAttacker(num_blocks=1000)
        # The same small working set changes in every interval: the
        # signature of a conventional system updating a hidden table.
        changed_sets = [{10, 11, 12} for _ in range(20)]
        verdict = attacker.analyse(changed_sets)
        assert verdict.suspects_hidden_activity
        assert verdict.repeated_change_fraction == 1.0

    def test_uniform_dummy_like_changes_pass(self):
        prng = Sha256Prng("updates")
        attacker = UpdateAnalysisAttacker(num_blocks=4096)
        changed_sets = [
            {prng.randrange(4096) for _ in range(8)} for _ in range(20)
        ]
        verdict = attacker.analyse(changed_sets)
        assert not verdict.suspects_hidden_activity

    def test_skewed_positions_detected_even_without_repeats(self):
        attacker = UpdateAnalysisAttacker(num_blocks=8192)
        # Changes never repeat but all land in one small region.
        changed_sets = [{i * 3, i * 3 + 1} for i in range(100)]
        verdict = attacker.analyse(changed_sets)
        assert verdict.uniformity_p_value < 0.01
        assert verdict.suspects_hidden_activity

    def test_activity_correlation(self):
        attacker = UpdateAnalysisAttacker(num_blocks=100)
        assert attacker.activity_correlation([100, 120], [2, 1]) > 0.9
        assert attacker.activity_correlation([50, 52], [49, 51]) < 0.05
        assert attacker.activity_correlation([], []) == 0.0

    def test_empty_history(self):
        attacker = UpdateAnalysisAttacker(num_blocks=100)
        verdict = attacker.analyse([])
        assert not verdict.suspects_hidden_activity
        assert verdict.changed_blocks_total == 0


class TestTrafficAnalysisAttacker:
    def _uniform_trace(self, prng, num_blocks, count) -> IoTrace:
        trace = IoTrace()
        for step in range(count):
            trace.record("read", prng.randrange(num_blocks), float(step))
        return trace

    def test_sequential_scan_detected(self):
        attacker = TrafficAnalysisAttacker(num_blocks=4096)
        trace = IoTrace()
        for step in range(512):
            trace.record("read", 1000 + step, float(step))
        verdict = attacker.analyse(trace)
        assert verdict.sequential_run_fraction > 0.9
        assert verdict.suspects_hidden_activity

    def test_hot_block_detected(self):
        attacker = TrafficAnalysisAttacker(num_blocks=4096)
        prng = Sha256Prng("hot")
        trace = self._uniform_trace(prng, 4096, 200)
        for step in range(10):
            trace.record("write", 77, 1000.0 + step)
        verdict = attacker.analyse(trace)
        assert verdict.max_repeat_count >= 10
        assert verdict.suspects_hidden_activity

    def test_uniform_traffic_passes(self):
        attacker = TrafficAnalysisAttacker(num_blocks=4096)
        prng = Sha256Prng("uniform-traffic")
        observed = self._uniform_trace(prng.spawn("a"), 4096, 3000)
        reference = self._uniform_trace(prng.spawn("b"), 4096, 3000)
        verdict = attacker.analyse(observed, reference)
        assert not verdict.suspects_hidden_activity
        assert verdict.advantage_vs_reference < 0.25

    def test_skewed_traffic_distinguished_from_reference(self):
        attacker = TrafficAnalysisAttacker(num_blocks=4096)
        prng = Sha256Prng("skew")
        reference = self._uniform_trace(prng, 4096, 2000)
        skewed = IoTrace()
        for step in range(2000):
            skewed.record("read", prng.randrange(128), float(step))
        verdict = attacker.analyse(skewed, reference)
        assert verdict.advantage_vs_reference > 0.5
        assert verdict.suspects_hidden_activity

    def test_empty_trace(self):
        attacker = TrafficAnalysisAttacker(num_blocks=100)
        verdict = attacker.analyse(IoTrace())
        assert not verdict.suspects_hidden_activity

    def test_out_of_range_indices_still_produce_a_verdict(self):
        """Hand-built traces may carry indices outside the volume; the
        statistics clip them into the edge bins instead of crashing."""
        attacker = TrafficAnalysisAttacker(num_blocks=16)
        trace = IoTrace()
        trace.record("read", -5, 0.0)
        trace.record("read", 3, 1.0)
        trace.record("read", 40, 2.0)
        verdict = attacker.analyse(trace)
        assert 0.0 <= verdict.uniformity_p_value <= 1.0
