"""Unit tests for snapshots, snapshot diffs and I/O traces."""

from __future__ import annotations

import pytest

from repro.errors import SnapshotMismatchError
from repro.storage.snapshot import diff_snapshots, take_snapshot
from repro.storage.trace import IoEvent, IoTrace

from conftest import make_storage


class TestSnapshots:
    def test_snapshot_captures_contents(self, storage):
        snapshot = take_snapshot(storage, label="t0")
        assert snapshot.block(5) == storage.peek_block(5)
        assert snapshot.num_blocks == storage.geometry.num_blocks
        assert snapshot.label == "t0"

    def test_snapshot_does_not_generate_io(self, storage):
        take_snapshot(storage)
        assert storage.counters.total_ops == 0
        assert len(storage.trace) == 0

    def test_diff_detects_changed_blocks(self, storage):
        before = take_snapshot(storage)
        storage.write_block(3, b"\x01" * 512)
        storage.write_block(9, b"\x02" * 512)
        after = take_snapshot(storage)
        diff = diff_snapshots(before, after)
        assert diff.changed_blocks == (3, 9)
        assert diff.change_count == 2
        assert 0 < diff.change_fraction < 1

    def test_identical_snapshots_have_empty_diff(self, storage):
        before = take_snapshot(storage)
        after = take_snapshot(storage)
        assert diff_snapshots(before, after).change_count == 0

    def test_rewriting_same_bytes_is_not_a_change(self, storage):
        original = storage.peek_block(4)
        before = take_snapshot(storage)
        storage.write_block(4, original)
        after = take_snapshot(storage)
        assert diff_snapshots(before, after).change_count == 0

    def test_mismatched_geometry_rejected(self, storage):
        other = make_storage(num_blocks=128)
        with pytest.raises(SnapshotMismatchError):
            diff_snapshots(take_snapshot(storage), take_snapshot(other))

    def test_block_digest_differs_after_change(self, storage):
        before = take_snapshot(storage)
        storage.write_block(2, b"\x07" * 512)
        after = take_snapshot(storage)
        assert before.block_digest(2) != after.block_digest(2)
        assert before.block_digest(1) == after.block_digest(1)


class TestIoTrace:
    def test_record_and_query(self):
        trace = IoTrace()
        trace.record("read", 10, 1.0, "a")
        trace.record("write", 11, 2.0, "b")
        trace.record("read", 10, 3.0, "a")
        assert len(trace) == 3
        assert [e.index for e in trace.reads()] == [10, 10]
        assert [e.index for e in trace.writes()] == [11]
        assert trace.indices() == [10, 11, 10]
        assert trace.indices("read") == [10, 10]
        assert trace.touched_blocks() == {10, 11}
        assert trace.index_histogram()[10] == 2

    def test_slice_by_stream(self):
        trace = IoTrace()
        trace.record("read", 1, 0.0, "alice")
        trace.record("read", 2, 1.0, "bob")
        assert [e.index for e in trace.slice_by_stream("alice")] == [1]

    def test_between(self):
        trace = IoTrace()
        for t in range(10):
            trace.record("read", t, float(t))
        window = trace.between(2.0, 5.0)
        assert [e.index for e in window] == [2, 3, 4]

    def test_clear_and_extend(self):
        trace = IoTrace()
        trace.record("read", 1, 0.0)
        other = IoTrace([IoEvent("write", 2, 1.0)])
        trace.extend(other)
        assert len(trace) == 2
        trace.clear()
        assert len(trace) == 0
